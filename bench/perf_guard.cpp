// Throughput regression guard over the committed BENCH_*.json baselines.
//
//   perf_guard <current.json> <baseline.json> <field> [<field>...]
//
// Every <field> is a higher-is-better rate (requests/sec, samples/sec).
// The guard passes iff, for each field,
//
//   current >= baseline / PRIVLOCAD_PERF_TOLERANCE
//
// with a deliberately generous default tolerance (5x): CI boxes, shared
// runners, and sanitizer builds jitter wildly, so the guard only catches
// collapses (an accidentally serialized pool, a sampler falling off its
// fast path), not percent-level noise. Tighten the tolerance locally when
// hunting a specific regression. Exits non-zero on a miss, an unreadable
// file, or a missing field, printing each comparison either way.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace {

/// Extracts the numeric value of `"field": <number>` from a flat one-level
/// JSON object (the obs::JsonWriter schema). Not a general JSON parser:
/// the records the benches emit have no nesting and no string values that
/// could shadow a key.
std::optional<double> extract_field(const std::string& json,
                                    const std::string& field) {
  const std::string needle = "\"" + field + "\"";
  std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = json.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(json.c_str() + pos + 1, &end);
  if (end == json.c_str() + pos + 1) return std::nullopt;
  return value;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

double tolerance_from_env() {
  constexpr double kDefault = 5.0;
  const char* env = std::getenv("PRIVLOCAD_PERF_TOLERANCE");
  if (env == nullptr) return kDefault;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || parsed < 1.0) {
    std::fprintf(stderr,
                 "perf_guard: ignoring invalid PRIVLOCAD_PERF_TOLERANCE "
                 "\"%s\" (need a number >= 1)\n",
                 env);
    return kDefault;
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: perf_guard <current.json> <baseline.json> "
                 "<field> [<field>...]\n");
    return 2;
  }
  const auto current = read_file(argv[1]);
  const auto baseline = read_file(argv[2]);
  if (!current) {
    std::fprintf(stderr, "perf_guard: cannot read %s\n", argv[1]);
    return 2;
  }
  if (!baseline) {
    std::fprintf(stderr, "perf_guard: cannot read %s\n", argv[2]);
    return 2;
  }

  const double tolerance = tolerance_from_env();
  std::printf("perf_guard: %s vs baseline %s (tolerance %.2fx)\n", argv[1],
              argv[2], tolerance);

  int failures = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string field = argv[i];
    const auto now = extract_field(*current, field);
    const auto base = extract_field(*baseline, field);
    if (!now || !base) {
      std::fprintf(stderr, "perf_guard: field \"%s\" missing from %s\n",
                   field.c_str(), !now ? argv[1] : argv[2]);
      ++failures;
      continue;
    }
    const double floor = *base / tolerance;
    const bool ok = *now >= floor;
    std::printf("  %-34s %14.1f vs baseline %14.1f (floor %14.1f) %s\n",
                field.c_str(), *now, *base, floor, ok ? "OK" : "REGRESSED");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}
