// Open-loop server SLO bench: the maximum sustainable load of one
// edge_serverd box, and its behavior past saturation.
//
// Protocol:
//   1. Boot an EdgeServer (in-process: same threads + sockets as the
//      daemon, minus process management) with a Zipf-popular synthetic
//      population.
//   2. Climb a geometric rps ladder (x2 per rung). Each rung drives a
//      Poisson open-loop plan and records client-observed latency
//      measured from the SCHEDULED arrival instant -- the offered load
//      never slows down to match the server, so there is no coordinated
//      omission hiding queueing delay.
//   3. The highest rung whose p99 meets the SLO with shed fraction
//      <= 1% is the reported max_sustainable_rps.
//   4. One final BURSTY overload phase at ~4x the sustainable rate
//      verifies the saturation contract: bounded queues shed
//      deterministically (degraded_dropped), every request is accounted
//      for, and no raw coordinate crosses the wire.
//
// Emits BENCH_server_slo.json (per-rung + summary + the server's
// queue-delay/service-time split) for the perf_guard trajectory.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/load_model.hpp"
#include "net/server.hpp"

namespace privlocad {
namespace {

struct StepOutcome {
  double target_rps = 0.0;
  net::OpenLoopStats stats;
  bool sustainable = false;
};

StepOutcome run_step(std::uint16_t port, double target_rps,
                     double duration_s, std::size_t users,
                     std::size_t connections, std::uint64_t seed,
                     net::ArrivalProcess process, double slo_p99_us,
                     double max_shed_fraction) {
  net::LoadPlanConfig plan_config;
  plan_config.target_rps = target_rps;
  plan_config.duration_s = duration_s;
  plan_config.process = process;
  plan_config.users = users;
  plan_config.seed = seed;
  const std::vector<net::TimedRequest> plan =
      net::build_open_loop_plan(plan_config);

  net::OpenLoopConfig loop_config;
  loop_config.port = port;
  loop_config.connections = connections;

  StepOutcome outcome;
  outcome.target_rps = target_rps;
  util::Result<net::OpenLoopStats> run =
      net::run_open_loop(loop_config, plan);
  if (!run.ok()) {
    std::fprintf(stderr, "open loop failed at %.0f rps: %s\n", target_rps,
                 run.status().to_string().c_str());
    return outcome;
  }
  outcome.stats = run.value();
  outcome.sustainable = outcome.stats.responses > 0 &&
                        outcome.stats.missing == 0 &&
                        outcome.stats.latency_p99_us <= slo_p99_us &&
                        outcome.stats.shed_fraction() <= max_shed_fraction;
  return outcome;
}

}  // namespace
}  // namespace privlocad

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t users = bench::flag_or(argc, argv, "users", 2000);
  const std::uint64_t workers = bench::flag_or(argc, argv, "workers", 2);
  const std::uint64_t queue_capacity =
      bench::flag_or(argc, argv, "queue-capacity", 256);
  const std::uint64_t connections =
      bench::flag_or(argc, argv, "connections", 4);
  const std::uint64_t min_rps = bench::flag_or(argc, argv, "min-rps", 500);
  const std::uint64_t max_rps =
      bench::flag_or(argc, argv, "max-rps", 64000);
  const std::uint64_t step_ms = bench::flag_or(argc, argv, "step-ms", 1000);
  const std::uint64_t slo_p99_us =
      bench::flag_or(argc, argv, "slo-p99-us", 20000);
  const std::uint64_t overload_factor =
      bench::flag_or(argc, argv, "overload-factor", 4);
  const std::uint64_t seed = bench::flag_or(argc, argv, "seed", 1);
  const double max_shed_fraction = 0.01;

  bench::print_header(
      "Open-loop server SLO: max sustainable load of one edge box");
  std::printf("users=%llu workers=%llu queue=%llu conns=%llu "
              "SLO p99 <= %llu us, shed <= %.0f%%\n",
              static_cast<unsigned long long>(users),
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(queue_capacity),
              static_cast<unsigned long long>(connections),
              static_cast<unsigned long long>(slo_p99_us),
              max_shed_fraction * 100.0);

  core::EdgeConfig edge_config;
  edge_config.seed = seed;
  edge_config.shards = 4;

  net::ServerConfig server_config;
  server_config.workers = static_cast<std::size_t>(workers);
  server_config.queue_capacity = static_cast<std::size_t>(queue_capacity);

  net::EdgeServer server(edge_config, server_config);
  if (util::Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }

  const double duration_s = static_cast<double>(step_ms) / 1000.0;
  bench::JsonMetrics metrics;
  metrics.add_string("bench", "server_slo");
  metrics.add("users", users);
  metrics.add("workers", workers);
  metrics.add("queue_capacity", queue_capacity);
  metrics.add("slo_p99_us", slo_p99_us);

  std::printf("\n%10s %10s %10s %10s %10s %8s %6s\n", "target", "achieved",
              "p50_us", "p99_us", "shed", "missing", "ok");

  double sustainable_rps = 0.0;
  double sustainable_p99 = 0.0;
  std::uint64_t steps = 0;
  double first_achieved = 0.0;
  for (double rps = static_cast<double>(min_rps);
       rps <= static_cast<double>(max_rps); rps *= 2.0) {
    const StepOutcome step = run_step(
        server.port(), rps, duration_s, static_cast<std::size_t>(users),
        static_cast<std::size_t>(connections), seed + steps,
        net::ArrivalProcess::kPoisson, static_cast<double>(slo_p99_us),
        max_shed_fraction);
    ++steps;
    const std::string prefix = "step" + std::to_string(steps);
    metrics.add(prefix + "_target_rps", step.target_rps);
    metrics.add(prefix + "_achieved_rps", step.stats.achieved_rps);
    metrics.add(prefix + "_p99_us", step.stats.latency_p99_us);
    metrics.add(prefix + "_shed", step.stats.degraded_dropped);
    metrics.add(prefix + "_missing", step.stats.missing);
    std::printf("%10.0f %10.0f %10.0f %10.0f %10llu %8llu %6s\n",
                step.target_rps, step.stats.achieved_rps,
                step.stats.latency_p50_us, step.stats.latency_p99_us,
                static_cast<unsigned long long>(
                    step.stats.degraded_dropped),
                static_cast<unsigned long long>(step.stats.missing),
                step.sustainable ? "yes" : "NO");
    if (steps == 1) first_achieved = step.stats.achieved_rps;
    if (step.sustainable) {
      sustainable_rps = step.stats.achieved_rps;
      sustainable_p99 = step.stats.latency_p99_us;
    } else {
      break;  // the ladder has found the knee
    }
  }
  if (sustainable_rps == 0.0) {
    // Even the lowest rung missed the SLO (tiny CI boxes): report the
    // first rung's achieved rate so the guard still has a trajectory.
    sustainable_rps = first_achieved;
  }
  metrics.add("steps", steps);
  metrics.add("max_sustainable_rps", sustainable_rps);
  metrics.add("max_sustainable_p99_us", sustainable_p99);

  // Overload phase: bursty arrivals at overload_factor times the
  // sustainable rate. The contract under test: no crash, bounded queues
  // (sheds counted as degraded_dropped), full accounting, zero leaks.
  const double overload_rps =
      sustainable_rps * static_cast<double>(overload_factor);
  const StepOutcome overload = run_step(
      server.port(), overload_rps, duration_s,
      static_cast<std::size_t>(users),
      static_cast<std::size_t>(connections), seed + 1000,
      net::ArrivalProcess::kBursty, static_cast<double>(slo_p99_us),
      max_shed_fraction);
  std::printf("\noverload (bursty, %.0fx): offered %.0f rps, achieved "
              "%.0f rps, p99 %.0f us, shed %llu (%.1f%%), leaks %llu, "
              "missing %llu\n",
              static_cast<double>(overload_factor),
              overload.stats.offered_rps, overload.stats.achieved_rps,
              overload.stats.latency_p99_us,
              static_cast<unsigned long long>(
                  overload.stats.degraded_dropped),
              overload.stats.shed_fraction() * 100.0,
              static_cast<unsigned long long>(overload.stats.raw_leaks),
              static_cast<unsigned long long>(overload.stats.missing));
  metrics.add("overload_offered_rps", overload.stats.offered_rps);
  metrics.add("overload_achieved_rps", overload.stats.achieved_rps);
  metrics.add("overload_p99_us", overload.stats.latency_p99_us);
  metrics.add("overload_shed_fraction", overload.stats.shed_fraction());
  metrics.add("overload_degraded_dropped",
              overload.stats.degraded_dropped);
  metrics.add("overload_raw_leaks", overload.stats.raw_leaks);
  metrics.add("overload_responses", overload.stats.responses);
  metrics.add("overload_missing", overload.stats.missing);

  // The server-side latency split: time queued vs time serving.
  bench::add_latency_percentiles(
      metrics, "net_queue_delay_us",
      server.metrics().histogram(net::net_metrics::kQueueDelayUs));
  bench::add_latency_percentiles(
      metrics, "net_service_time_us",
      server.metrics().histogram(net::net_metrics::kServiceTimeUs));

  server.stop();

  if (overload.stats.raw_leaks != 0) {
    std::fprintf(stderr, "FAIL: raw coordinates leaked under overload\n");
    return 1;
  }
  if (overload.stats.responses + overload.stats.missing !=
      overload.stats.sent) {
    std::fprintf(stderr, "FAIL: requests unaccounted for\n");
    return 1;
  }
  return bench::emit_json("BENCH_server_slo.json", metrics) ? 0 : 1;
}
