// Open-loop server SLO bench: the maximum sustainable load of one
// edge_serverd box, and its behavior past saturation -- per IO backend
// and per admission policy.
//
// Protocol:
//   1. Boot an EdgeServer (in-process: same threads + sockets as the
//      daemon, minus process management) on the primary backend
//      (--backend=epoll|io_uring, default epoll so the committed
//      perf-guard baseline compares like against like) with a
//      Zipf-popular synthetic population.
//   2. Climb a geometric rps ladder (x2 per rung). Each rung drives a
//      Poisson open-loop plan and records client-observed latency
//      measured from the SCHEDULED arrival instant -- the offered load
//      never slows down to match the server, so there is no coordinated
//      omission hiding queueing delay.
//   3. The highest rung whose p99 meets the SLO with shed fraction
//      <= 1% is the reported max_sustainable_rps.
//   4. The SAME ladder runs against the other backend (when available)
//      so the record carries epoll_* and io_uring_* sustained rps + p99
//      side by side. io_uring_available says whether the io_uring
//      column is real or zero-filled.
//   5. A DIURNAL phase replays a time-of-day rate envelope (same mean
//      rate as the sustainable rung, sinusoidal peak/trough) against
//      the primary server: diurnal_* keys report the envelope the
//      server actually rode out.
//   6. One final BURSTY overload phase at ~4x the sustainable rate
//      verifies the saturation contract: bounded queues shed
//      deterministically (degraded_dropped), every request is accounted
//      for, and no raw coordinate crosses the wire. The same overload
//      plan then hits a fresh latency-budget server, so the record
//      compares both admission policies (admission_queue_capacity_* vs
//      admission_latency_budget_*) under identical pressure.
//
// Emits BENCH_server_slo.json (per-rung + summaries + the server's
// queue-delay/service-time split) for the perf_guard trajectory.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "net/client.hpp"
#include "net/io_backend.hpp"
#include "net/load_model.hpp"
#include "net/server.hpp"

namespace privlocad {
namespace {

struct StepOutcome {
  double target_rps = 0.0;
  net::OpenLoopStats stats;
  bool sustainable = false;
};

StepOutcome run_plan(std::uint16_t port, const net::LoadPlanConfig& plan_config,
                     std::size_t connections, double slo_p99_us,
                     double max_shed_fraction) {
  const std::vector<net::TimedRequest> plan =
      net::build_open_loop_plan(plan_config);

  net::OpenLoopConfig loop_config;
  loop_config.port = port;
  loop_config.connections = connections;

  StepOutcome outcome;
  outcome.target_rps = plan_config.target_rps;
  util::Result<net::OpenLoopStats> run =
      net::run_open_loop(loop_config, plan);
  if (!run.ok()) {
    std::fprintf(stderr, "open loop failed at %.0f rps: %s\n",
                 plan_config.target_rps, run.status().to_string().c_str());
    return outcome;
  }
  outcome.stats = run.value();
  outcome.sustainable = outcome.stats.responses > 0 &&
                        outcome.stats.missing == 0 &&
                        outcome.stats.latency_p99_us <= slo_p99_us &&
                        outcome.stats.shed_fraction() <= max_shed_fraction;
  return outcome;
}

StepOutcome run_step(std::uint16_t port, double target_rps,
                     double duration_s, std::size_t users,
                     std::size_t connections, std::uint64_t seed,
                     net::ArrivalProcess process, double slo_p99_us,
                     double max_shed_fraction) {
  net::LoadPlanConfig plan_config;
  plan_config.target_rps = target_rps;
  plan_config.duration_s = duration_s;
  plan_config.process = process;
  plan_config.users = users;
  plan_config.seed = seed;
  return run_plan(port, plan_config, connections, slo_p99_us,
                  max_shed_fraction);
}

struct LadderOutcome {
  double sustainable_rps = 0.0;
  double sustainable_p99_us = 0.0;
  std::uint64_t steps = 0;
};

/// Climbs the geometric rps ladder against `port` and prints one row per
/// rung. When `metrics` is non-null, per-rung step<N>_* keys are emitted
/// (the primary ladder only; the comparison ladder stays summary-only).
LadderOutcome run_ladder(std::uint16_t port, double min_rps, double max_rps,
                         double duration_s, std::size_t users,
                         std::size_t connections, std::uint64_t seed,
                         double slo_p99_us, double max_shed_fraction,
                         bench::JsonMetrics* metrics) {
  std::printf("\n%10s %10s %10s %10s %10s %8s %6s\n", "target", "achieved",
              "p50_us", "p99_us", "shed", "missing", "ok");
  LadderOutcome outcome;
  double first_achieved = 0.0;
  for (double rps = min_rps; rps <= max_rps; rps *= 2.0) {
    const StepOutcome step =
        run_step(port, rps, duration_s, users, connections,
                 seed + outcome.steps, net::ArrivalProcess::kPoisson,
                 slo_p99_us, max_shed_fraction);
    ++outcome.steps;
    if (metrics != nullptr) {
      const std::string prefix = "step" + std::to_string(outcome.steps);
      metrics->add(prefix + "_target_rps", step.target_rps);
      metrics->add(prefix + "_achieved_rps", step.stats.achieved_rps);
      metrics->add(prefix + "_p99_us", step.stats.latency_p99_us);
      metrics->add(prefix + "_shed", step.stats.degraded_dropped);
      metrics->add(prefix + "_missing", step.stats.missing);
    }
    std::printf("%10.0f %10.0f %10.0f %10.0f %10llu %8llu %6s\n",
                step.target_rps, step.stats.achieved_rps,
                step.stats.latency_p50_us, step.stats.latency_p99_us,
                static_cast<unsigned long long>(
                    step.stats.degraded_dropped),
                static_cast<unsigned long long>(step.stats.missing),
                step.sustainable ? "yes" : "NO");
    if (outcome.steps == 1) first_achieved = step.stats.achieved_rps;
    if (step.sustainable) {
      outcome.sustainable_rps = step.stats.achieved_rps;
      outcome.sustainable_p99_us = step.stats.latency_p99_us;
    } else {
      break;  // the ladder has found the knee
    }
  }
  if (outcome.sustainable_rps == 0.0) {
    // Even the lowest rung missed the SLO (tiny CI boxes): report the
    // first rung's achieved rate so the guard still has a trajectory.
    outcome.sustainable_rps = first_achieved;
  }
  return outcome;
}

std::unique_ptr<net::EdgeServer> make_server(
    const core::EdgeConfig& edge_config,
    const net::ServerConfig& server_config) {
  util::Result<std::unique_ptr<net::EdgeServer>> created =
      net::EdgeServer::create(edge_config, server_config);
  if (!created.ok()) {
    std::fprintf(stderr, "server create failed: %s\n",
                 created.status().to_string().c_str());
    return nullptr;
  }
  std::unique_ptr<net::EdgeServer> server = std::move(created.value());
  if (util::Status s = server->start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 s.to_string().c_str());
    return nullptr;
  }
  return server;
}

}  // namespace
}  // namespace privlocad

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t users = bench::flag_or(argc, argv, "users", 2000);
  const std::uint64_t workers = bench::flag_or(argc, argv, "workers", 2);
  const std::uint64_t queue_capacity =
      bench::flag_or(argc, argv, "queue-capacity", 256);
  const std::uint64_t connections =
      bench::flag_or(argc, argv, "connections", 4);
  const std::uint64_t min_rps = bench::flag_or(argc, argv, "min-rps", 500);
  const std::uint64_t max_rps =
      bench::flag_or(argc, argv, "max-rps", 64000);
  const std::uint64_t step_ms = bench::flag_or(argc, argv, "step-ms", 1000);
  const std::uint64_t slo_p99_us =
      bench::flag_or(argc, argv, "slo-p99-us", 20000);
  const std::uint64_t overload_factor =
      bench::flag_or(argc, argv, "overload-factor", 4);
  const std::uint64_t seed = bench::flag_or(argc, argv, "seed", 1);
  // The primary ladder defaults to epoll so the committed perf-guard
  // baseline (measured on epoll) keeps comparing like against like; the
  // io_uring column comes from the comparison ladder below.
  const std::string backend_name =
      bench::string_flag_or(argc, argv, "backend", "epoll");
  const double max_shed_fraction = 0.01;

  util::Result<net::IoBackendKind> backend =
      net::parse_io_backend_kind(backend_name.c_str());
  if (!backend.ok()) {
    std::fprintf(stderr, "bench_server_slo: %s\n",
                 backend.status().to_string().c_str());
    return 1;
  }

  bench::print_header(
      "Open-loop server SLO: max sustainable load of one edge box");
  std::printf("users=%llu workers=%llu queue=%llu conns=%llu "
              "backend=%s SLO p99 <= %llu us, shed <= %.0f%%\n",
              static_cast<unsigned long long>(users),
              static_cast<unsigned long long>(workers),
              static_cast<unsigned long long>(queue_capacity),
              static_cast<unsigned long long>(connections),
              backend_name.c_str(),
              static_cast<unsigned long long>(slo_p99_us),
              max_shed_fraction * 100.0);

  core::EdgeConfig edge_config;
  edge_config.seed = seed;
  edge_config.shards = 4;

  const net::ServerConfig base_config =
      net::ServerConfig{}
          .with_workers(static_cast<std::size_t>(workers))
          .with_queue_capacity(static_cast<std::size_t>(queue_capacity));

  std::unique_ptr<net::EdgeServer> server =
      make_server(edge_config, base_config.with_backend(backend.value()));
  if (server == nullptr) return 1;
  const net::IoBackendKind primary_kind = server->backend_kind();

  const double duration_s = static_cast<double>(step_ms) / 1000.0;
  bench::JsonMetrics metrics;
  metrics.add_string("bench", "server_slo");
  metrics.add("users", users);
  metrics.add("workers", workers);
  metrics.add("queue_capacity", queue_capacity);
  metrics.add("slo_p99_us", slo_p99_us);
  metrics.add_string("backend", net::io_backend_kind_name(primary_kind));

  std::printf("\n-- primary ladder (%s) --\n",
              net::io_backend_kind_name(primary_kind));
  const LadderOutcome primary = run_ladder(
      server->port(), static_cast<double>(min_rps),
      static_cast<double>(max_rps), duration_s,
      static_cast<std::size_t>(users), static_cast<std::size_t>(connections),
      seed, static_cast<double>(slo_p99_us), max_shed_fraction, &metrics);
  metrics.add("steps", primary.steps);
  metrics.add("max_sustainable_rps", primary.sustainable_rps);
  metrics.add("max_sustainable_p99_us", primary.sustainable_p99_us);

  // Per-backend comparison: rerun the identical ladder (same seeds, same
  // plans) on the OTHER backend so the record reports both columns. The
  // io_uring column zero-fills when the kernel rejects the ring, and
  // io_uring_available says which case this record is.
  const bool io_uring_ok =
      net::io_uring_compiled_in() && net::io_uring_available();
  metrics.add("io_uring_available",
              static_cast<std::uint64_t>(io_uring_ok ? 1 : 0));
  const net::IoBackendKind other_kind =
      primary_kind == net::IoBackendKind::kEpoll
          ? net::IoBackendKind::kIoUring
          : net::IoBackendKind::kEpoll;
  LadderOutcome other;
  bool ran_other = false;
  if (other_kind == net::IoBackendKind::kIoUring && !io_uring_ok) {
    std::printf("\n-- comparison ladder (io_uring): unavailable, "
                "zero-filled --\n");
  } else {
    std::printf("\n-- comparison ladder (%s) --\n",
                net::io_backend_kind_name(other_kind));
    std::unique_ptr<net::EdgeServer> other_server =
        make_server(edge_config, base_config.with_backend(other_kind));
    if (other_server == nullptr) return 1;
    other = run_ladder(other_server->port(), static_cast<double>(min_rps),
                       static_cast<double>(max_rps), duration_s,
                       static_cast<std::size_t>(users),
                       static_cast<std::size_t>(connections), seed,
                       static_cast<double>(slo_p99_us), max_shed_fraction,
                       nullptr);
    other_server->stop();
    ran_other = true;
  }
  const LadderOutcome& epoll_outcome =
      primary_kind == net::IoBackendKind::kEpoll ? primary : other;
  const LadderOutcome& uring_outcome =
      primary_kind == net::IoBackendKind::kIoUring ? primary : other;
  metrics.add("epoll_max_sustainable_rps", epoll_outcome.sustainable_rps);
  metrics.add("epoll_max_sustainable_p99_us",
              epoll_outcome.sustainable_p99_us);
  metrics.add("io_uring_max_sustainable_rps", uring_outcome.sustainable_rps);
  metrics.add("io_uring_max_sustainable_p99_us",
              uring_outcome.sustainable_p99_us);
  std::printf("\nbackends: epoll %.0f rps (p99 %.0f us) | io_uring %s%.0f "
              "rps (p99 %.0f us)\n",
              epoll_outcome.sustainable_rps,
              epoll_outcome.sustainable_p99_us,
              io_uring_ok || ran_other ? "" : "[unavailable] ",
              uring_outcome.sustainable_rps,
              uring_outcome.sustainable_p99_us);

  // Diurnal phase: a time-of-day envelope at the sustainable MEAN rate
  // (one full synthetic day over the phase). The server should ride the
  // peak without missing responses; the record keeps the envelope it was
  // actually offered.
  net::LoadPlanConfig diurnal_config;
  diurnal_config.target_rps =
      std::max(primary.sustainable_rps, static_cast<double>(min_rps));
  diurnal_config.duration_s = duration_s;
  diurnal_config.process = net::ArrivalProcess::kDiurnal;
  diurnal_config.diurnal_period_s = duration_s;
  diurnal_config.users = static_cast<std::size_t>(users);
  diurnal_config.seed = seed + 500;
  const double diurnal_peak_rps = net::diurnal_rate_rps(
      diurnal_config, 0.25 * diurnal_config.diurnal_period_s);
  const double diurnal_trough_rps = net::diurnal_rate_rps(
      diurnal_config, 0.75 * diurnal_config.diurnal_period_s);
  const StepOutcome diurnal = run_plan(
      server->port(), diurnal_config, static_cast<std::size_t>(connections),
      static_cast<double>(slo_p99_us), max_shed_fraction);
  std::printf("\ndiurnal (mean %.0f rps, peak %.0f, trough %.0f): achieved "
              "%.0f rps, p99 %.0f us, shed %.1f%%, missing %llu\n",
              diurnal_config.target_rps, diurnal_peak_rps,
              diurnal_trough_rps, diurnal.stats.achieved_rps,
              diurnal.stats.latency_p99_us,
              diurnal.stats.shed_fraction() * 100.0,
              static_cast<unsigned long long>(diurnal.stats.missing));
  metrics.add("diurnal_offered_rps", diurnal.stats.offered_rps);
  metrics.add("diurnal_achieved_rps", diurnal.stats.achieved_rps);
  metrics.add("diurnal_peak_rps", diurnal_peak_rps);
  metrics.add("diurnal_trough_rps", diurnal_trough_rps);
  metrics.add("diurnal_p99_us", diurnal.stats.latency_p99_us);
  metrics.add("diurnal_shed_fraction", diurnal.stats.shed_fraction());
  metrics.add("diurnal_missing", diurnal.stats.missing);

  // Overload phase: bursty arrivals at overload_factor times the
  // sustainable rate. The contract under test: no crash, bounded queues
  // (sheds counted as degraded_dropped), full accounting, zero leaks.
  const double overload_rps =
      primary.sustainable_rps * static_cast<double>(overload_factor);
  const StepOutcome overload = run_step(
      server->port(), overload_rps, duration_s,
      static_cast<std::size_t>(users),
      static_cast<std::size_t>(connections), seed + 1000,
      net::ArrivalProcess::kBursty, static_cast<double>(slo_p99_us),
      max_shed_fraction);
  std::printf("\noverload (bursty, %.0fx): offered %.0f rps, achieved "
              "%.0f rps, p99 %.0f us, shed %llu (%.1f%%), leaks %llu, "
              "missing %llu\n",
              static_cast<double>(overload_factor),
              overload.stats.offered_rps, overload.stats.achieved_rps,
              overload.stats.latency_p99_us,
              static_cast<unsigned long long>(
                  overload.stats.degraded_dropped),
              overload.stats.shed_fraction() * 100.0,
              static_cast<unsigned long long>(overload.stats.raw_leaks),
              static_cast<unsigned long long>(overload.stats.missing));
  metrics.add("overload_offered_rps", overload.stats.offered_rps);
  metrics.add("overload_achieved_rps", overload.stats.achieved_rps);
  metrics.add("overload_p99_us", overload.stats.latency_p99_us);
  metrics.add("overload_shed_fraction", overload.stats.shed_fraction());
  metrics.add("overload_degraded_dropped",
              overload.stats.degraded_dropped);
  metrics.add("overload_raw_leaks", overload.stats.raw_leaks);
  metrics.add("overload_responses", overload.stats.responses);
  metrics.add("overload_missing", overload.stats.missing);

  // Admission-policy comparison: the SAME bursty overload plan against a
  // fresh latency-budget server (budget = the SLO p99). The primary
  // server's overload above is the queue-capacity column; this is the
  // latency-budget one. Projected-delay shedding should hold queue delay
  // near the budget instead of letting the full queue depth build.
  metrics.add("admission_queue_capacity_achieved_rps",
              overload.stats.achieved_rps);
  metrics.add("admission_queue_capacity_p99_us",
              overload.stats.latency_p99_us);
  metrics.add("admission_queue_capacity_shed_fraction",
              overload.stats.shed_fraction());
  std::unique_ptr<net::EdgeServer> budget_server = make_server(
      edge_config,
      base_config.with_backend(primary_kind)
          .with_admission(net::AdmissionPolicy::kLatencyBudget)
          .with_latency_budget_us(static_cast<std::uint32_t>(slo_p99_us)));
  if (budget_server == nullptr) return 1;
  const StepOutcome budget_overload = run_step(
      budget_server->port(), overload_rps, duration_s,
      static_cast<std::size_t>(users),
      static_cast<std::size_t>(connections), seed + 1000,
      net::ArrivalProcess::kBursty, static_cast<double>(slo_p99_us),
      max_shed_fraction);
  budget_server->stop();
  std::printf("admission: queue_capacity p99 %.0f us shed %.1f%% | "
              "latency_budget p99 %.0f us shed %.1f%% (missing %llu)\n",
              overload.stats.latency_p99_us,
              overload.stats.shed_fraction() * 100.0,
              budget_overload.stats.latency_p99_us,
              budget_overload.stats.shed_fraction() * 100.0,
              static_cast<unsigned long long>(
                  budget_overload.stats.missing));
  metrics.add("admission_latency_budget_achieved_rps",
              budget_overload.stats.achieved_rps);
  metrics.add("admission_latency_budget_p99_us",
              budget_overload.stats.latency_p99_us);
  metrics.add("admission_latency_budget_shed_fraction",
              budget_overload.stats.shed_fraction());
  metrics.add("admission_latency_budget_missing",
              budget_overload.stats.missing);

  // The server-side latency split: time queued vs time serving.
  bench::add_latency_percentiles(
      metrics, "net_queue_delay_us",
      server->metrics().histogram(net::net_metrics::kQueueDelayUs));
  bench::add_latency_percentiles(
      metrics, "net_service_time_us",
      server->metrics().histogram(net::net_metrics::kServiceTimeUs));

  server->stop();

  if (overload.stats.raw_leaks != 0 ||
      budget_overload.stats.raw_leaks != 0) {
    std::fprintf(stderr, "FAIL: raw coordinates leaked under overload\n");
    return 1;
  }
  if (overload.stats.responses + overload.stats.missing !=
          overload.stats.sent ||
      budget_overload.stats.responses + budget_overload.stats.missing !=
          budget_overload.stats.sent) {
    std::fprintf(stderr, "FAIL: requests unaccounted for\n");
    return 1;
  }
  return bench::emit_json("BENCH_server_slo.json", metrics) ? 0 : 1;
}
