// Reproduces paper Fig. 2: a user's 7-day mobility pattern (2,414 raw
// spatiotemporal points) showing that top locations, their semantics
// (home/office), and the weekly rhythm are readable straight off the raw
// trace. We regenerate the figure as a text heat-map: visits per (hour x
// location class) over one week, plus the semantic labels the attack's
// labelling stage assigns.
#include <cstdio>

#include "attack/profile.hpp"
#include "attack/semantics.hpp"
#include "bench_common.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t seed = bench::flag_or(argc, argv, "seed", 2);

  bench::print_header("Figure 2 -- a user's 7-day mobility pattern");

  // Dense week: ~2,414 points as in the paper's illustration.
  trace::SyntheticConfig config;
  config.min_check_ins = 2414;
  config.max_check_ins = 2414;
  config.window_end = config.window_start + 7 * trace::kSecondsPerDay;
  const trace::SyntheticUser user =
      trace::generate_user(rng::Engine(seed), config, 0);

  const attack::LocationProfile profile = attack::build_profile(user.trace);
  std::printf("check-ins: %zu, distinct locations: %zu, entropy: %.2f nats\n\n",
              user.trace.check_ins.size(), profile.size(),
              profile.entropy());

  // Label the top locations semantically from the raw schedule.
  std::vector<attack::InferredLocation> tops;
  const std::size_t top_k = std::min<std::size_t>(3, profile.size());
  for (std::size_t i = 0; i < top_k; ++i) {
    tops.push_back({profile.top(i).location, profile.top(i).frequency});
  }
  attack::SemanticConfig sem;
  sem.attribution_radius_m = 100.0;
  const auto labels =
      attack::label_locations(tops, user.trace.check_ins, sem);

  std::printf("%5s %10s %8s %8s %8s  %s\n", "rank", "visits", "night%",
              "office%", "share%", "label");
  for (std::size_t i = 0; i < tops.size(); ++i) {
    std::printf("%5zu %10zu %7.0f%% %7.0f%% %7.1f%%  %s\n", i + 1,
                labels[i].visits, labels[i].night_fraction * 100.0,
                labels[i].workday_fraction * 100.0,
                100.0 * static_cast<double>(tops[i].support) /
                    static_cast<double>(user.trace.check_ins.size()),
                attack::to_string(labels[i].semantic).c_str());
  }

  // Hour-of-day occupancy heat line for the top-2 locations.
  std::printf("\nvisits by hour (0-23), top-1 then top-2:\n");
  for (std::size_t rank = 0; rank < std::min<std::size_t>(2, tops.size());
       ++rank) {
    std::size_t by_hour[24] = {};
    for (const trace::CheckIn& c : user.trace.check_ins) {
      if (geo::distance(c.position, tops[rank].location) <= 100.0) {
        ++by_hour[(c.time % trace::kSecondsPerDay) / 3600];
      }
    }
    std::printf("top-%zu:", rank + 1);
    for (int h = 0; h < 24; ++h) {
      std::printf(" %3zu", by_hour[h]);
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: home dominates nights, office dominates "
              "weekday days -- readable from raw data, which is the threat\n");
  return 0;
}
