// System-level end-to-end evaluation: the paper's Figure 6 defence row and
// Observation 1, measured through the REAL system path instead of the
// mechanism in isolation -- profile windows, eta-frequent sets, permanent
// obfuscation tables, posterior selection, nomadic fallback, ad matching,
// and edge-side filtering all engaged; the adversary reads the ad
// network's actual bid log.
#include <cstdio>

#include "bench_common.hpp"
#include "core/simulation.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::size_t users = bench::flag_or(argc, argv, "users", 150);

  bench::print_header(
      "System end-to-end -- Edge-PrivLocAd under the longitudinal attack (" +
      std::to_string(users) + " users, full request flow)");

  core::SimulationConfig config;
  config.user_count = users;
  config.edge.top_params.radius_m = 500.0;
  config.edge.top_params.epsilon = 1.0;
  config.edge.top_params.delta = 0.01;
  config.edge.top_params.n = 10;
  config.edge.management.window_seconds = 90 * trace::kSecondsPerDay;
  config.population.min_check_ins = 200;
  config.population.max_check_ins = 1500;
  config.advertiser_count = 2000;

  const core::SimulationResult result = core::run_simulation(config);

  std::printf("users                        : %zu\n", result.users);
  std::printf("live requests                : %zu\n", result.live_requests);
  std::printf("top-location report ratio    : %.1f%%\n",
              result.top_report_ratio * 100.0);
  std::printf("profile rebuilds             : %zu\n",
              result.telemetry.profile_rebuilds);
  std::printf("permanent tables generated   : %zu\n",
              result.telemetry.tables_generated);
  std::printf("ads matched per request      : %.2f\n",
              result.ads_matched_per_request);
  std::printf("ads delivered per request    : %.2f\n",
              result.ads_delivered_per_request);
  std::printf("edge filter drop ratio       : %.1f%%\n",
              result.telemetry.filter_drop_ratio() * 100.0);

  std::printf("\nlongitudinal attack on the real bid log:\n");
  std::printf("  top-1 within 200 m : %5.1f%%   (paper defence: < 1%%)\n",
              result.attack_rates.rate(0, 0) * 100.0);
  std::printf("  top-1 within 500 m : %5.1f%%   (paper defence: ~6.8%%)\n",
              result.attack_rates.rate(0, 1) * 100.0);
  std::printf("  top-2 within 200 m : %5.1f%%   (paper defence: < 1%%)\n",
              result.attack_rates.rate(1, 0) * 100.0);
  std::printf("  top-2 within 500 m : %5.1f%%   (paper defence: ~5%%)\n",
              result.attack_rates.rate(1, 1) * 100.0);
  return 0;
}
