// System-level end-to-end evaluation: the paper's Figure 6 defence row and
// Observation 1, measured through the REAL system path instead of the
// mechanism in isolation -- profile windows, eta-frequent sets, permanent
// obfuscation tables, posterior selection, nomadic fallback, ad matching,
// and edge-side filtering all engaged; the adversary reads the ad
// network's actual bid log.
// A second section drives the same population through one sharded
// ConcurrentEdge via serve_trace_batch on all available threads and
// reports requests/sec -- the system-level throughput number the paper's
// Tables II/III motivate.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/concurrent_edge.hpp"
#include "core/simulation.hpp"
#include "fault/fault.hpp"
#include "par/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::size_t users = bench::flag_or(argc, argv, "users", 150);
  // On single-core boxes hardware_threads() is 1, which makes the pool run
  // every batch task inline on the caller (tasks_executed stays 0) -- the
  // "batch phase" never actually exercised the pool. Default to at least
  // two threads so the throughput section always measures pooled serving;
  // --threads overrides for scaling sweeps.
  const std::size_t requested_threads = bench::flag_or(
      argc, argv, "threads",
      std::max<std::size_t>(2, par::hardware_threads()));

  bench::print_header(
      "System end-to-end -- Edge-PrivLocAd under the longitudinal attack (" +
      std::to_string(users) + " users, full request flow)");

  // PRIVLOCAD_FAULTS turns this bench into the fault-tolerance proof run:
  // every request must still end in a typed outcome (served / degraded),
  // never a leak or an uncaught exception.
  fault::FaultInjector& faults = fault::FaultInjector::global();
  if (faults.enabled()) {
    std::printf("%s\n\n", faults.plan().summary().c_str());
  }

  core::SimulationConfig config;
  config.user_count = users;
  config.edge.top_params.radius_m = 500.0;
  config.edge.top_params.epsilon = 1.0;
  config.edge.top_params.delta = 0.01;
  config.edge.top_params.n = 10;
  config.edge.management.window_seconds = 90 * trace::kSecondsPerDay;
  config.population.min_check_ins = 200;
  config.population.max_check_ins = 1500;
  config.advertiser_count = 2000;

  const core::SimulationResult result = core::run_simulation(config);

  std::printf("users                        : %zu\n", result.users);
  std::printf("live requests                : %zu\n", result.live_requests);
  std::printf("top-location report ratio    : %.1f%%\n",
              result.top_report_ratio * 100.0);
  std::printf("profile rebuilds             : %zu\n",
              result.telemetry.profile_rebuilds);
  std::printf("permanent tables generated   : %zu\n",
              result.telemetry.tables_generated);
  std::printf("ads matched per request      : %.2f\n",
              result.ads_matched_per_request);
  std::printf("ads delivered per request    : %.2f\n",
              result.ads_delivered_per_request);
  std::printf("edge filter drop ratio       : %.1f%%\n",
              result.telemetry.filter_drop_ratio() * 100.0);

  std::printf("\nlongitudinal attack on the real bid log:\n");
  std::printf("  top-1 within 200 m : %5.1f%%   (paper defence: < 1%%)\n",
              result.attack_rates.rate(0, 0) * 100.0);
  std::printf("  top-1 within 500 m : %5.1f%%   (paper defence: ~6.8%%)\n",
              result.attack_rates.rate(0, 1) * 100.0);
  std::printf("  top-2 within 200 m : %5.1f%%   (paper defence: < 1%%)\n",
              result.attack_rates.rate(1, 0) * 100.0);
  std::printf("  top-2 within 500 m : %5.1f%%   (paper defence: ~5%%)\n",
              result.attack_rates.rate(1, 1) * 100.0);

  // ---- batch serving throughput through one sharded edge box.
  const rng::Engine parent(31);
  const auto batch_population =
      trace::generate_population(parent, config.population, users);
  std::vector<trace::UserTrace> traces;
  traces.reserve(batch_population.size());
  for (const trace::SyntheticUser& user : batch_population) {
    traces.push_back(user.trace);
  }

  par::ThreadPool pool(requested_threads);
  // The pool may clamp the request; record what actually ran.
  const std::size_t threads = pool.thread_count();
  core::ConcurrentEdge edge(config.edge.with_shards(16).with_seed(31));
  const core::BatchServeStats batch = edge.serve_trace_batch(traces, pool);
  const obs::LatencyHistogram& serve_latency =
      edge.metrics().histogram(core::edge_metrics::kServeLatencyUs);
  const par::PoolStats pool_stats = pool.stats();
  std::printf("\nbatch serving (%zu threads, 16 shards):\n", threads);
  std::printf("  requests           : %zu\n", batch.requests);
  std::printf("  wall               : %.3fs\n", batch.wall_seconds);
  std::printf("  throughput         : %.0f req/s\n",
              batch.requests_per_second());
  std::printf("  serve latency      : p50 %.1fus  p95 %.1fus  p99 %.1fus\n",
              serve_latency.quantile(0.50), serve_latency.quantile(0.95),
              serve_latency.quantile(0.99));
  std::printf("  pool               : %llu tasks, %llu steals\n",
              static_cast<unsigned long long>(pool_stats.tasks_executed),
              static_cast<unsigned long long>(pool_stats.steals));

  // Fault-tolerance accounting for the batch (all zero with faults off).
  const core::EdgeTelemetry batch_telemetry = edge.telemetry();
  faults.publish(edge.metrics());
  std::printf("  outcomes           : %zu served (%zu after retry), "
              "%zu degraded-cached, %zu dropped, %zu failed\n",
              batch.served, batch.served_after_retry, batch.degraded_cached,
              batch.degraded_dropped, batch.failed);
  if (faults.enabled()) {
    std::printf("  faults injected    : %llu (retries %zu)\n",
                static_cast<unsigned long long>(faults.injected_total()),
                batch_telemetry.serve_retries);
  }

  bench::JsonMetrics record;
  record.add_string("bench", "system_e2e");
  record.add("threads", static_cast<std::uint64_t>(threads));
  record.add("users", static_cast<std::uint64_t>(result.users));
  record.add("live_requests",
             static_cast<std::uint64_t>(result.live_requests));
  record.add("top_report_ratio", result.top_report_ratio);
  record.add("attack_top1_200m", result.attack_rates.rate(0, 0));
  record.add("attack_top1_500m", result.attack_rates.rate(0, 1));
  record.add("batch_requests", static_cast<std::uint64_t>(batch.requests));
  record.add("batch_wall_seconds", batch.wall_seconds);
  record.add("batch_requests_per_second", batch.requests_per_second());
  record.add("batch_served", static_cast<std::uint64_t>(batch.served));
  record.add("batch_degraded_cached",
             static_cast<std::uint64_t>(batch.degraded_cached));
  record.add("batch_degraded_dropped",
             static_cast<std::uint64_t>(batch.degraded_dropped));
  record.add("batch_failed", static_cast<std::uint64_t>(batch.failed));
  record.add("serve_retries",
             static_cast<std::uint64_t>(batch_telemetry.serve_retries));
  record.add("serve_after_retry",
             static_cast<std::uint64_t>(batch_telemetry.served_after_retry));
  record.add("serve_degraded_cached",
             static_cast<std::uint64_t>(batch_telemetry.degraded_cached));
  record.add("serve_degraded_dropped",
             static_cast<std::uint64_t>(batch_telemetry.degraded_dropped));
  record.add("serve_failed",
             static_cast<std::uint64_t>(batch_telemetry.serve_failed));
  record.add("fault_injected_total", faults.injected_total());
  bench::add_latency_percentiles(record, "serve_latency_us", serve_latency);
  record.add("pool_tasks_executed", pool_stats.tasks_executed);
  record.add("pool_steals", pool_stats.steals);
  bench::emit_json("BENCH_system_e2e.json", record);
  return 0;
}
