// Ablation: noise magnitude under the sufficient-statistic calibration
// (Theorem 2, sigma ~ sqrt(n)) vs. the plain composition theorem
// (sigma ~ n for the same total budget). This is the analytic heart of the
// paper made visible as a table: the ratio is exactly why Fig. 7's
// composition baseline collapses.
#include <cstdio>

#include "bench_common.hpp"
#include "lppm/privacy_params.hpp"

int main() {
  using namespace privlocad;

  bench::print_header(
      "Ablation -- per-output sigma: Theorem 2 vs plain composition "
      "(r=500m, eps=1, delta=0.01)");

  std::printf("%3s %16s %18s %10s\n", "n", "thm2 sigma (m)",
              "composition (m)", "ratio");
  for (std::size_t n = 1; n <= 10; ++n) {
    lppm::BoundedGeoIndParams params;
    params.radius_m = 500.0;
    params.epsilon = 1.0;
    params.delta = 0.01;
    params.n = n;
    const double thm2 = lppm::n_fold_sigma(params);
    const double comp = lppm::composition_sigma(params);
    std::printf("%3zu %16.0f %18.0f %9.2fx\n", n, thm2, comp, comp / thm2);
  }
  std::printf("\nexpected: ratio 1.0x at n=1, growing roughly like "
              "sqrt(n) * sqrt(ln(n^2/delta^2)/ln(1/delta^2)) with n\n");
  return 0;
}
