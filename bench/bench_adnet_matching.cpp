// Ad-matching throughput: the spatial index vs. a brute-force scan.
//
// The paper's RTB context (100 ms end-to-end budgets, Section II-A) makes
// per-request matching latency a real constraint once campaign counts
// reach the tens of thousands. This bench measures both implementations
// at growing campaign counts; the index must win and both must agree
// (equivalence is separately pinned by adnet_test).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "adnet/ad_network.hpp"
#include "adnet/advertiser.hpp"
#include "rng/engine.hpp"

namespace {

using namespace privlocad;

std::vector<adnet::Advertiser> campaigns(std::size_t count) {
  rng::Engine e(5);
  return adnet::generate_campaigns(e, adnet::table1_presets()[3], count,
                                   40000.0, 25000.0);
}

void BM_IndexedMatch(benchmark::State& state) {
  const adnet::AdNetwork network(campaigns(state.range(0)));
  rng::Engine e(6);
  for (auto _ : state) {
    const geo::Point where{e.uniform_in(-40000, 40000),
                           e.uniform_in(-40000, 40000)};
    benchmark::DoNotOptimize(network.match(where));
  }
}

void BM_BruteForceMatch(benchmark::State& state) {
  // The full match() work -- collect Ad records, sort by bid, truncate --
  // minus the spatial index: the honest baseline.
  const auto advertisers = campaigns(state.range(0));
  rng::Engine e(6);
  for (auto _ : state) {
    const geo::Point where{e.uniform_in(-40000, 40000),
                           e.uniform_in(-40000, 40000)};
    std::vector<adnet::Ad> matched;
    for (const adnet::Advertiser& a : advertisers) {
      if (geo::distance_squared(a.business_location, where) <=
          a.targeting_radius_m * a.targeting_radius_m) {
        matched.push_back(
            {a.id, a.business_location, a.category, a.bid_cpm});
      }
    }
    std::sort(matched.begin(), matched.end(),
              [](const adnet::Ad& x, const adnet::Ad& y) {
                if (x.bid_cpm != y.bid_cpm) return x.bid_cpm > y.bid_cpm;
                return x.advertiser_id < y.advertiser_id;
              });
    if (matched.size() > 10) matched.resize(10);
    benchmark::DoNotOptimize(matched);
  }
}

BENCHMARK(BM_IndexedMatch)->Arg(1000)->Arg(8000)->Arg(32000);
BENCHMARK(BM_BruteForceMatch)->Arg(1000)->Arg(8000)->Arg(32000);

}  // namespace

BENCHMARK_MAIN();
