// Ablation: the LP-based optimal geo-IND mechanism (Bordenabe et al.,
// CCS 2014 -- the related-work comparator) vs. the planar Laplace, at
// equal epsilon on a discrete grid.
//
// Expected shape (from the related work): the optimal mechanism's
// expected quality loss is below the Laplace's 2/eps, and the gap widens
// with an informative prior -- the optimal channel specializes to where
// the user actually is, which calibrated noise cannot.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "lppm/optimal_mechanism.hpp"
#include "util/timer.hpp"

int main() {
  using namespace privlocad;

  bench::print_header(
      "Ablation -- optimal geo-IND mechanism vs planar Laplace "
      "(grid 4x4 @ 250 m)");

  std::printf("%10s %14s %16s %18s %12s\n", "level l", "laplace E[d]",
              "optimal uniform", "optimal informed", "LP time");
  for (const double level : {std::log(2.0), std::log(4.0), std::log(6.0)}) {
    const double eps = level / 200.0;

    lppm::OptimalMechanismConfig config;
    config.per_side = 4;
    config.cell_spacing_m = 250.0;
    config.epsilon = eps;

    util::Timer timer;
    const lppm::OptimalGeoIndMechanism uniform(config);

    // Informative prior: 70% of mass on one cell (a home-dominated user).
    config.prior.assign(16, 0.02);
    config.prior[5] = 0.70;
    const lppm::OptimalGeoIndMechanism informed(config);
    const double lp_seconds = timer.elapsed_seconds();

    std::printf("%10.3f %14.0f %16.0f %18.0f %10.2fs\n", level, 2.0 / eps,
                uniform.expected_quality_loss(),
                informed.expected_quality_loss(), lp_seconds);
  }
  std::printf("\nexpected: optimal <= laplace at every level; the informed "
              "prior cuts the loss further\n");
  return 0;
}
