// Ablation: the LP-based optimal geo-IND mechanism (Bordenabe et al.,
// CCS 2014 -- the related-work comparator) vs. the planar Laplace, at
// equal epsilon on a discrete grid -- plus the exact-vs-approximate
// construction trade and the approximate build's scaling curve.
//
// Expected shape (from the related work): the optimal mechanism's
// expected quality loss is below the Laplace's 2/eps, and the gap widens
// with an informative prior -- the optimal channel specializes to where
// the user actually is, which calibrated noise cannot. The approximate
// (spanner + decomposition) build trades at most its certified dilation
// factor of that utility for orders-of-magnitude larger grids.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "lppm/optimal_mechanism.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t max_approx_side =
      bench::flag_or(argc, argv, "max-approx-side", 32);

  bench::print_header(
      "Ablation -- optimal geo-IND mechanism vs planar Laplace "
      "(grid 4x4 @ 250 m)");

  std::printf("%10s %14s %16s %18s %12s\n", "level l", "laplace E[d]",
              "optimal uniform", "optimal informed", "LP time");
  for (const double level : {std::log(2.0), std::log(4.0), std::log(6.0)}) {
    const double eps = level / 200.0;

    lppm::OptimalMechanismConfig config;
    config.per_side = 4;
    config.cell_spacing_m = 250.0;
    config.epsilon = eps;

    util::Timer timer;
    const lppm::OptimalGeoIndMechanism uniform(config);

    // Informative prior: 70% of mass on one cell (a home-dominated user).
    config.prior.assign(16, 0.02);
    config.prior[5] = 0.70;
    const lppm::OptimalGeoIndMechanism informed(config);
    const double lp_seconds = timer.elapsed_seconds();

    std::printf("%10.3f %14.0f %16.0f %18.0f %10.2fs\n", level, 2.0 / eps,
                uniform.expected_quality_loss(),
                informed.expected_quality_loss(), lp_seconds);
  }
  std::printf("\nexpected: optimal <= laplace at every level; the informed "
              "prior cuts the loss further\n");

  // ------------------------- exact vs approximate ------------------------
  bench::print_header(
      "Exact vs approximate construction (eps = ln4/200, 250 m cells)");
  std::printf("%6s %14s %14s %10s %12s\n", "grid", "exact E[d]",
              "approx E[d]", "ratio", "cert. delta");
  for (const std::size_t side : {3u, 4u}) {
    lppm::OptimalMechanismConfig exact_config;
    exact_config.per_side = side;
    exact_config.cell_spacing_m = 250.0;
    exact_config.epsilon = std::log(4.0) / 200.0;
    const lppm::OptimalGeoIndMechanism exact(exact_config);

    lppm::ApproximateOptimalConfig approx_config;
    approx_config.per_side = side;
    approx_config.cell_spacing_m = 250.0;
    approx_config.epsilon = std::log(4.0) / 200.0;
    lppm::ApproximateBuildReport report;
    (void)lppm::OptimalGeoIndMechanism::build_approximate(approx_config,
                                                          &report);
    std::printf("%3zux%-2zu %14.1f %14.1f %10.3f %12.3f\n", side, side,
                exact.expected_quality_loss(), report.quality_loss,
                report.quality_loss / exact.expected_quality_loss(),
                report.dilation);
  }
  std::printf("\nthe ratio stays below the certified dilation: the spanner "
              "deflation costs at most delta of the exact utility\n");

  // --------------------------- scaling curve -----------------------------
  bench::print_header("Approximate build scaling (uniform prior)");
  std::printf("%8s %8s %10s %8s %8s %8s %10s %12s\n", "grid", "cells",
              "E[loss] m", "windows", "cold", "reused", "build s",
              "cells/s");
  for (std::size_t side = 8; side <= max_approx_side; side *= 2) {
    lppm::ApproximateOptimalConfig config;
    config.per_side = side;
    config.cell_spacing_m = 250.0;
    config.epsilon = std::log(4.0) / 200.0;
    lppm::ApproximateBuildReport report;
    (void)lppm::OptimalGeoIndMechanism::build_approximate(config, &report);
    std::printf("%4zux%-3zu %8zu %10.1f %8zu %8zu %8zu %9.2fs %12.0f\n",
                side, side, report.cells, report.quality_loss,
                report.windows, report.window_solves_cold,
                report.window_reuse_hits, report.construct_seconds,
                static_cast<double>(report.cells) / report.construct_seconds);
  }
  std::printf("\nsame-shape windows share one factorized solver, so the "
              "cold-solve count stays flat while the grid quadruples\n");
  return 0;
}
