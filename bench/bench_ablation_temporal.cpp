// Ablation: attack robustness to the temporal model. The paper's attack
// treats check-ins as a bag of points; real traces are bursty (dwell
// sessions). This bench runs the Fig.-6 protocol under both the iid and
// the Markov-dwell generators and shows the success rates barely move --
// the attack (and therefore the threat) is insensitive to temporal
// correlation, it only needs marginal frequencies.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "lppm/planar_laplace.hpp"

namespace {

using namespace privlocad;

double attack_success(const std::vector<trace::SyntheticUser>& population,
                      const lppm::PlanarLaplaceMechanism& mech) {
  const attack::DeobfuscationConfig config =
      bench::attack_config_for(mech, 1);
  attack::SuccessRateAccumulator rates(1, {200.0});
  rng::Engine parent(6);
  for (std::size_t i = 0; i < population.size(); ++i) {
    rng::Engine e = parent.split(i);
    std::vector<geo::Point> observed;
    observed.reserve(population[i].trace.check_ins.size());
    for (const trace::CheckIn& c : population[i].trace.check_ins) {
      observed.push_back(mech.obfuscate_one(e, c.position));
    }
    const auto inferred =
        attack::deobfuscate_top_locations(observed, config);
    rates.add(attack::evaluate_attack(inferred, population[i].truth, 1));
  }
  return rates.rate(0, 0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t users = bench::flag_or(argc, argv, "users", 400);

  bench::print_header(
      "Ablation -- attack vs temporal model (laplace l=ln4, r=200m, " +
      std::to_string(users) + " users)");

  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});

  trace::SyntheticConfig iid;
  iid.max_check_ins = 1500;
  trace::SyntheticConfig markov = iid;
  markov.temporal_model =
      trace::SyntheticConfig::TemporalModel::kMarkovDwell;
  markov.mean_dwell_check_ins = 10.0;

  const rng::Engine parent(66);
  const auto iid_pop = trace::generate_population(parent, iid, users);
  const auto markov_pop = trace::generate_population(parent, markov, users);

  std::printf("%16s %18s\n", "temporal model", "top1 succ@200m");
  std::printf("%16s %17.1f%%\n", "iid",
              attack_success(iid_pop, mech) * 100.0);
  std::printf("%16s %17.1f%%\n", "markov-dwell",
              attack_success(markov_pop, mech) * 100.0);
  std::printf("\nexpected: both high (dwell sessions shave a few points by "
              "reducing the number of effectively independent observations, "
              "but the longitudinal threat persists)\n");
  return 0;
}
