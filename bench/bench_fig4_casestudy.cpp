// Reproduces paper Fig. 4: the case-study de-obfuscation attack on one
// victim (1,969 check-ins/year, 1,628 at the top-1 location), evaluated at
// three observation windows -- one week, one month, one full year.
//
// Paper shape to reproduce: inference distance shrinks from ~200 m at one
// week to < 50 m at one year, under planar Laplace with l = ln 4,
// r = 200 m.
#include <cmath>
#include <cstdio>

#include "attack/deobfuscation.hpp"
#include "bench_common.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t repeats = bench::flag_or(argc, argv, "repeats", 20);

  bench::print_header(
      "Figure 4 -- case-study de-obfuscation at growing windows");

  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});
  const attack::DeobfuscationConfig attack_config =
      bench::attack_config_for(mech, 1);

  struct Window {
    const char* name;
    trace::Timestamp seconds;
  };
  const Window windows[] = {
      {"one week", 7 * trace::kSecondsPerDay},
      {"one month", 30 * trace::kSecondsPerDay},
      {"full year", 365 * trace::kSecondsPerDay},
  };

  std::printf("%-10s %10s %18s %14s\n", "window", "check-ins",
              "mean inference (m)", "paper target");
  const char* targets[] = {"~200 m", "<~100 m", "< 50 m"};

  int target_idx = 0;
  for (const Window& window : windows) {
    double error_sum = 0.0;
    std::size_t count_sum = 0;
    for (std::uint64_t rep = 0; rep < repeats; ++rep) {
      const rng::Engine parent(100 + rep);
      trace::SyntheticConfig config;
      const trace::SyntheticUser victim =
          trace::generate_case_study_user(parent, config);

      const trace::UserTrace sliced = trace::slice_by_time(
          victim.trace, trace::kStudyStart,
          trace::kStudyStart + window.seconds);

      rng::Engine noise(200 + rep);
      std::vector<geo::Point> observed;
      observed.reserve(sliced.check_ins.size());
      for (const trace::CheckIn& c : sliced.check_ins) {
        observed.push_back(mech.obfuscate_one(noise, c.position));
      }
      count_sum += observed.size();

      const auto inferred =
          attack::deobfuscate_top_locations(observed, attack_config);
      if (!inferred.empty()) {
        error_sum += geo::distance(inferred[0].location,
                                   victim.truth.top_locations.front());
      }
    }
    std::printf("%-10s %10zu %18.1f %14s\n", window.name,
                count_sum / repeats, error_sum / static_cast<double>(repeats),
                targets[target_idx++]);
  }
  return 0;
}
