// Reproduces paper Fig. 8: the minimal utilization rate -- the lower bound
// v with Pr(UR >= v) = alpha = 0.9 (Eq. 24) -- of the n-fold Gaussian
// mechanism for n in [1, 10], eps in {1, 1.5}, r in {500, 600, 700, 800} m.
//
// Paper shape to reproduce: the minimal UR rises with n (e.g. from ~0.6 at
// n = 1 to ~0.9 at n = 10 for eps = 1.5), and falls as r grows (more
// noise) or eps shrinks (stricter privacy).
#include <cstdio>

#include "bench_common.hpp"
#include "lppm/gaussian.hpp"
#include "stats/monte_carlo.hpp"
#include "stats/quantiles.hpp"
#include "utility/metrics.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t trials = bench::flag_or(argc, argv, "trials", 4000);
  const std::uint64_t ur_samples =
      bench::flag_or(argc, argv, "ur-samples", 256);
  constexpr double kTargetingRadius = 5000.0;
  constexpr double kAlpha = 0.9;

  bench::print_header(
      "Figure 8 -- minimal utilization rate at alpha=0.9 (" +
      std::to_string(trials) + " trials/point)");

  for (const double eps : {1.0, 1.5}) {
    std::printf("\n--- eps = %.1f ---\n", eps);
    std::printf("%3s %10s %10s %10s %10s\n", "n", "r=500m", "r=600m",
                "r=700m", "r=800m");
    for (std::size_t n = 1; n <= 10; ++n) {
      std::printf("%3zu", n);
      for (const double r : {500.0, 600.0, 700.0, 800.0}) {
        lppm::BoundedGeoIndParams params;
        params.radius_m = r;
        params.epsilon = eps;
        params.delta = 0.01;
        params.n = n;
        const lppm::NFoldGaussianMechanism mech(params);

        const rng::Engine parent(
            800 + n * 100 + static_cast<std::uint64_t>(r) +
            static_cast<std::uint64_t>(eps * 10));
        stats::MonteCarloOptions opts;
        opts.trials = trials;
        opts.keep_samples = true;
        const auto result = stats::run_monte_carlo(
            opts, [&](std::uint64_t t) {
              rng::Engine e = parent.split(t);
              const auto candidates = mech.obfuscate(e, {0, 0});
              return utility::utilization_rate(e, {0, 0}, candidates,
                                               kTargetingRadius, ur_samples);
            });
        std::printf(" %10.3f",
                    stats::lower_bound_at_confidence(result.samples, kAlpha));
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper shape: rises with n (~0.6 -> ~0.9 for eps=1.5, "
              "r=500m), falls with larger r / smaller eps\n");
  return 0;
}
