// Reproduces paper Fig. 3: location entropy vs. number of check-ins, and
// the headline "88.8% of users have location entropy < 2".
//
// The paper computes the entropy of each of the 37,262 users' location
// profiles (connectivity clustering at 50 m) and observes that entropy
// declines as the check-in count grows. We regenerate the same series on
// the synthetic population: mean/percentile entropy per check-in-count
// bucket plus the fraction of users below 2 nats.
#include <cstdio>

#include "attack/profile.hpp"
#include "bench_common.hpp"
#include "stats/quantiles.hpp"
#include "stats/running_stats.hpp"

namespace {

using namespace privlocad;

struct Bucket {
  std::uint64_t lo;
  std::uint64_t hi;
  stats::RunningStats entropy;
};

}  // namespace

int main(int argc, char** argv) {
  // The paper profiles 37,262 users; the default here is a 5,000-user
  // sample (statistically identical buckets, single-core friendly). Run
  // with --users=37262 for the full-scale reproduction.
  const std::size_t users = bench::flag_or(argc, argv, "users", 5000);
  const std::uint64_t max_check_ins =
      bench::flag_or(argc, argv, "max-check-ins", 11435);

  bench::print_header(
      "Figure 3 -- location entropy vs. check-in count (" +
      std::to_string(users) + " synthetic users)");

  const auto population = bench::bench_population(3, users, max_check_ins);

  std::vector<Bucket> buckets;
  for (std::uint64_t lo = 20; lo < max_check_ins; lo *= 2) {
    buckets.push_back({lo, lo * 2, {}});
  }

  std::size_t below_two = 0;
  std::vector<double> all_entropy;
  all_entropy.reserve(population.size());
  for (const trace::SyntheticUser& user : population) {
    const attack::LocationProfile profile =
        attack::build_profile(user.trace);
    if (profile.empty()) continue;
    const double h = profile.entropy();
    all_entropy.push_back(h);
    if (h < 2.0) ++below_two;
    const std::uint64_t count = user.trace.check_ins.size();
    for (Bucket& b : buckets) {
      if (count >= b.lo && count < b.hi) {
        b.entropy.add(h);
        break;
      }
    }
  }

  std::printf("%-18s %8s %12s %12s\n", "check-ins", "users", "mean-entropy",
              "max-entropy");
  for (const Bucket& b : buckets) {
    if (b.entropy.count() == 0) continue;
    std::printf("[%6llu, %6llu) %8zu %12.3f %12.3f\n",
                static_cast<unsigned long long>(b.lo),
                static_cast<unsigned long long>(b.hi), b.entropy.count(),
                b.entropy.mean(), b.entropy.max());
  }

  const double fraction =
      static_cast<double>(below_two) / static_cast<double>(all_entropy.size());
  std::printf("\nusers with entropy < 2 nats : %.1f%%   (paper: 88.8%%)\n",
              fraction * 100.0);
  std::printf("median entropy              : %.3f\n",
              stats::quantile(all_entropy, 0.5));
  return 0;
}
