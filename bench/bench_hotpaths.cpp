// Hot-path microbenches for the sampling + attack kernels: the two inner
// loops population-scale runs actually spend their time in.
//
//   1. Standard-normal sampling. fill_standard_normal throughput for the
//      ziggurat path vs the legacy inverse-CDF path (PRIVLOCAD_SAMPLER
//      switch), plus the paired 2-D noise fill the mechanisms use. The
//      emitted record pins the ziggurat/inverse-CDF speedup so a sampler
//      regression shows up as a number, not a feeling.
//   2. De-obfuscation. Repeated Algorithm-1 clusterings of one fixed
//      observation stream through a reused DeobfuscationWorkspace
//      (clusterings/sec), then a full evaluate_population pass whose
//      per-user latency histogram ("attack.deobfuscation_latency_us")
//      yields the p50/p95/p99 the workspace refactor is accountable to.
//
// Emits BENCH_hotpaths.json; the perf_guard ctest compares the committed
// repo-root baseline against a fresh run.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "lppm/gaussian.hpp"
#include "rng/samplers.hpp"
#include "rng/ziggurat.hpp"
#include "util/timer.hpp"

namespace {

using namespace privlocad;

/// Samples/sec of fill_standard_normal under `sampler`, drawn through the
/// same chunked-buffer pattern the mechanisms use (so the number reflects
/// the real call shape, not one giant resident buffer).
double sampler_rate(rng::NormalSampler sampler, std::uint64_t total) {
  constexpr std::size_t kChunk = 16384;
  std::vector<double> buffer(kChunk);
  rng::Engine engine(97);
  double sink = 0.0;  // defeat dead-code elimination
  const util::Timer timer;
  std::uint64_t remaining = total;
  while (remaining > 0) {
    const std::size_t n =
        remaining < kChunk ? static_cast<std::size_t>(remaining) : kChunk;
    rng::fill_standard_normal(engine, {buffer.data(), n}, sampler);
    sink += buffer[0] + buffer[n - 1];
    remaining -= n;
  }
  const double seconds = timer.elapsed_seconds();
  if (sink == 12345.6789) std::printf("(unlikely) sink=%f\n", sink);
  return static_cast<double>(total) / seconds;
}

/// 2-D noise pairs/sec through fill_gaussian_noise_2d (the n-fold release
/// hot path) under the process-default sampler.
double noise2d_rate(std::uint64_t total_pairs) {
  constexpr std::size_t kChunk = 8192;
  std::vector<geo::Point> buffer(kChunk);
  rng::Engine engine(101);
  double sink = 0.0;
  const util::Timer timer;
  std::uint64_t remaining = total_pairs;
  while (remaining > 0) {
    const std::size_t n =
        remaining < kChunk ? static_cast<std::size_t>(remaining) : kChunk;
    rng::fill_gaussian_noise_2d(engine, 250.0, {buffer.data(), n});
    sink += buffer[0].x + buffer[n - 1].y;
    remaining -= n;
  }
  const double seconds = timer.elapsed_seconds();
  if (sink == 12345.6789) std::printf("(unlikely) sink=%f\n", sink);
  return static_cast<double>(total_pairs) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t samples =
      bench::flag_or(argc, argv, "samples", 4'000'000);
  const std::uint64_t clusterings =
      bench::flag_or(argc, argv, "clusterings", 300);
  const std::size_t users = bench::flag_or(argc, argv, "users", 120);
  const std::uint64_t max_check_ins =
      bench::flag_or(argc, argv, "max-check-ins", 600);

  bench::print_header("Hot paths -- batched sampling + attack workspace");

  // ---- 1. sampler throughput, both paths.
  const double zig_rate =
      sampler_rate(rng::NormalSampler::kZiggurat, samples);
  const double icdf_rate =
      sampler_rate(rng::NormalSampler::kInverseCdf, samples);
  const double speedup = zig_rate / icdf_rate;
  const double pair_rate = noise2d_rate(samples / 2);
  std::printf("standard normal (%llu samples, 16k chunks):\n",
              static_cast<unsigned long long>(samples));
  std::printf("  ziggurat     : %12.0f samples/s\n", zig_rate);
  std::printf("  inverse CDF  : %12.0f samples/s\n", icdf_rate);
  std::printf("  speedup      : %12.2fx\n", speedup);
  std::printf("  2-D noise    : %12.0f pairs/s\n", pair_rate);

  // ---- 2. repeated clusterings of one observation stream, workspace
  // reused across calls exactly as evaluate_population reuses it.
  lppm::BoundedGeoIndParams params;
  params.radius_m = 500.0;
  params.epsilon = 1.0;
  params.delta = 0.01;
  params.n = 10;
  const lppm::NFoldGaussianMechanism mechanism(params);
  const attack::DeobfuscationConfig attack_config =
      bench::attack_config_for(mechanism, 2);

  const auto population = bench::bench_population(7, users, max_check_ins);
  // Cluster the longest trace: the clusterings/sec number should reflect
  // a heavy user, not whichever happens to come first.
  const trace::SyntheticUser& heaviest = *std::max_element(
      population.begin(), population.end(),
      [](const trace::SyntheticUser& a, const trace::SyntheticUser& b) {
        return a.trace.check_ins.size() < b.trace.check_ins.size();
      });
  rng::Engine observe_engine(13);
  std::vector<geo::Point> observed;
  observed.reserve(heaviest.trace.check_ins.size());
  for (const trace::CheckIn& c : heaviest.trace.check_ins) {
    observed.push_back(c.position +
                       rng::gaussian_noise(observe_engine, mechanism.sigma()));
  }

  attack::DeobfuscationWorkspace workspace;
  std::size_t inferred_total = 0;
  util::Timer cluster_timer;
  for (std::uint64_t i = 0; i < clusterings; ++i) {
    inferred_total +=
        attack::deobfuscate_top_locations(observed, attack_config, workspace)
            .size();
  }
  const double cluster_seconds = cluster_timer.elapsed_seconds();
  const double cluster_rate =
      static_cast<double>(clusterings) / cluster_seconds;
  std::printf("\nAlgorithm 1, reused workspace (%zu check-ins):\n",
              observed.size());
  std::printf("  clusterings  : %llu (%zu locations inferred)\n",
              static_cast<unsigned long long>(clusterings), inferred_total);
  std::printf("  rate         : %12.1f clusterings/s\n", cluster_rate);

  // ---- 3. population pass; the per-user latency histogram is the
  // workspace refactor's accountability metric.
  attack::PopulationAttackProtocol protocol;
  protocol.deobfuscation = attack_config;
  const double sigma = mechanism.sigma();
  util::Timer population_timer;
  const attack::SuccessRateAccumulator rates = attack::evaluate_population(
      population, protocol,
      [sigma](rng::Engine& engine, const trace::SyntheticUser& user) {
        std::vector<geo::Point> stream;
        stream.reserve(user.trace.check_ins.size());
        for (const trace::CheckIn& c : user.trace.check_ins) {
          stream.push_back(c.position + rng::gaussian_noise(engine, sigma));
        }
        return stream;
      });
  const double population_seconds = population_timer.elapsed_seconds();
  const obs::LatencyHistogram& latency =
      obs::MetricsRegistry::global().histogram(
          "attack.deobfuscation_latency_us");
  std::printf("\nevaluate_population (%zu users):\n", rates.users());
  std::printf("  wall         : %.3fs\n", population_seconds);
  std::printf("  per-user deobfuscation: p50 %.1fus  p95 %.1fus  p99 %.1fus\n",
              latency.quantile(0.50), latency.quantile(0.95),
              latency.quantile(0.99));

  bench::JsonMetrics record;
  record.add_string("bench", "hotpaths");
  record.add("samples", samples);
  record.add("ziggurat_samples_per_second", zig_rate);
  record.add("inverse_cdf_samples_per_second", icdf_rate);
  record.add("sampler_speedup", speedup);
  record.add("noise2d_pairs_per_second", pair_rate);
  record.add("clusterings", clusterings);
  record.add("clusterings_per_second", cluster_rate);
  record.add("users", static_cast<std::uint64_t>(rates.users()));
  record.add("population_wall_seconds", population_seconds);
  bench::add_latency_percentiles(record, "deobfuscation_latency_us", latency);
  bench::emit_json("BENCH_hotpaths.json", record);
  return 0;
}
