// Hot-path microbenches for the sampling + attack kernels: the two inner
// loops population-scale runs actually spend their time in.
//
//   1. Standard-normal sampling. fill_standard_normal throughput for the
//      ziggurat path vs the legacy inverse-CDF path (PRIVLOCAD_SAMPLER
//      switch), plus the paired 2-D noise fill the mechanisms use. The
//      emitted record pins the ziggurat/inverse-CDF speedup so a sampler
//      regression shows up as a number, not a feeling.
//   2. De-obfuscation. Repeated Algorithm-1 clusterings of one fixed
//      observation stream through a reused DeobfuscationWorkspace
//      (clusterings/sec), then a full evaluate_population pass whose
//      per-user latency histogram ("attack.deobfuscation_latency_us")
//      yields the p50/p95/p99 the workspace refactor is accountable to.
//
//   3. SIMD kernel layer. Each vectorized hot kernel (grid distance scan,
//      connectivity clustering, posterior selection scoring, 2-D noise
//      apply) timed under forced-scalar and forced-AVX2 dispatch on the
//      same workload. Because the dispatch contract guarantees
//      bit-identical results, the scalar/SIMD pairs measure pure
//      throughput; the recorded per-kernel speedups are the SIMD layer's
//      accountability numbers.
//
// Emits BENCH_hotpaths.json; the perf_guard ctest compares the committed
// repo-root baseline against a fresh run.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "attack/clustering.hpp"
#include "bench_common.hpp"
#include "lppm/gaussian.hpp"
#include "rng/samplers.hpp"
#include "rng/ziggurat.hpp"
#include "simd/dispatch.hpp"
#include "simd/kernels.hpp"
#include "util/timer.hpp"

namespace {

using namespace privlocad;

/// Samples/sec of fill_standard_normal under `sampler`, drawn through the
/// same chunked-buffer pattern the mechanisms use (so the number reflects
/// the real call shape, not one giant resident buffer).
double sampler_rate(rng::NormalSampler sampler, std::uint64_t total) {
  constexpr std::size_t kChunk = 16384;
  std::vector<double> buffer(kChunk);
  rng::Engine engine(97);
  double sink = 0.0;  // defeat dead-code elimination
  const util::Timer timer;
  std::uint64_t remaining = total;
  while (remaining > 0) {
    const std::size_t n =
        remaining < kChunk ? static_cast<std::size_t>(remaining) : kChunk;
    rng::fill_standard_normal(engine, {buffer.data(), n}, sampler);
    sink += buffer[0] + buffer[n - 1];
    remaining -= n;
  }
  const double seconds = timer.elapsed_seconds();
  if (sink == 12345.6789) std::printf("(unlikely) sink=%f\n", sink);
  return static_cast<double>(total) / seconds;
}

/// 2-D noise pairs/sec through fill_gaussian_noise_2d (the n-fold release
/// hot path) under the process-default sampler.
double noise2d_rate(std::uint64_t total_pairs) {
  constexpr std::size_t kChunk = 8192;
  std::vector<geo::Point> buffer(kChunk);
  rng::Engine engine(101);
  double sink = 0.0;
  const util::Timer timer;
  std::uint64_t remaining = total_pairs;
  while (remaining > 0) {
    const std::size_t n =
        remaining < kChunk ? static_cast<std::size_t>(remaining) : kChunk;
    rng::fill_gaussian_noise_2d(engine, 250.0, {buffer.data(), n});
    sink += buffer[0].x + buffer[n - 1].y;
    remaining -= n;
  }
  const double seconds = timer.elapsed_seconds();
  if (sink == 12345.6789) std::printf("(unlikely) sink=%f\n", sink);
  return static_cast<double>(total_pairs) / seconds;
}

/// Runs `fn` with the dispatch level forced to `level` and restores the
/// process default afterwards. When AVX2 is unavailable the "simd" leg
/// falls back to scalar so every record key still exists; the speedup
/// then reads ~1.0 and the record's cpu_features field explains why.
double rate_under(simd::DispatchLevel level,
                  const std::function<double()>& fn) {
  const simd::DispatchLevel previous = simd::active_dispatch_level();
  if (level == simd::DispatchLevel::kAvx2 && !simd::avx2_available()) {
    level = simd::DispatchLevel::kScalar;
  }
  simd::set_dispatch_level(level);
  const double rate = fn();
  simd::set_dispatch_level(previous);
  return rate;
}

/// Uniform cloud + Gaussian hot spots for the scan/clustering kernels:
/// dense enough that grid cells hold full SIMD lanes, sparse enough that
/// clustering does not collapse into one component.
std::vector<geo::Point> kernel_cloud(std::uint64_t seed, std::size_t n,
                                     double extent_m) {
  rng::Engine engine(seed);
  std::vector<geo::Point> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(
        {engine.uniform() * extent_m, engine.uniform() * extent_m});
  }
  return points;
}

/// Points scanned/sec through the raw distance-scan kernel
/// (simd::scan_slots_within) over a resident SoA span with ~10%
/// tombstones and a radius that accepts roughly a third of the live
/// points -- the cell-scan shape GridIndex::for_each_within drives.
double distance_scan_rate(std::uint64_t total_slots) {
  constexpr std::size_t kSlots = 32768;
  constexpr std::uint32_t kChunk = 256;
  rng::Engine engine(31);
  std::vector<double> xs(kSlots), ys(kSlots);
  std::vector<std::uint8_t> alive(kSlots);
  for (std::size_t i = 0; i < kSlots; ++i) {
    xs[i] = engine.uniform() * 1000.0;
    ys[i] = engine.uniform() * 1000.0;
    alive[i] = engine.uniform() < 0.9 ? 1 : 0;
  }
  const double r2 = 326.0 * 326.0;  // pi*326^2 / 1000^2 ~ 1/3 hit rate
  std::uint32_t hit_slots[kChunk];
  double hit_d2[kChunk];
  std::uint64_t scanned = 0;
  std::size_t hits = 0;
  const util::Timer timer;
  while (scanned < total_slots) {
    for (std::uint32_t begin = 0; begin < kSlots; begin += kChunk) {
      hits += simd::scan_slots_within(xs.data(), ys.data(), alive.data(),
                                      begin, begin + kChunk, 500.0, 500.0,
                                      r2, hit_slots, hit_d2);
    }
    scanned += kSlots;
  }
  const double seconds = timer.elapsed_seconds();
  if (hits == 0) std::printf("(unlikely) zero scan hits\n");
  return static_cast<double>(scanned) / seconds;
}

/// Candidates/sec through the raw posterior log-density kernel
/// (simd::posterior_log_densities) at Algorithm-4 candidate-set shape.
double posterior_kernel_rate(std::uint64_t total_candidates) {
  constexpr std::size_t kCandidates = 4096;
  rng::Engine engine(33);
  std::vector<double> xs(kCandidates), ys(kCandidates), out(kCandidates);
  for (std::size_t i = 0; i < kCandidates; ++i) {
    xs[i] = engine.uniform() * 1000.0;
    ys[i] = engine.uniform() * 1000.0;
  }
  const double denom = 2.0 * 250.0 * 250.0;
  double sink = 0.0;
  std::uint64_t done = 0;
  const util::Timer timer;
  while (done < total_candidates) {
    sink += simd::posterior_log_densities(xs.data(), ys.data(), kCandidates,
                                          512.0, 481.0, denom, out.data());
    done += kCandidates;
  }
  const double seconds = timer.elapsed_seconds();
  if (sink == 12345.6789) std::printf("(unlikely) sink=%f\n", sink);
  return static_cast<double>(done) / seconds;
}

/// Pairs/sec through the raw noise-apply kernel (simd::apply_noise_pairs)
/// on a resident pre-sampled buffer: isolates the scale-and-offset stage
/// the 2-D noise fill runs after ziggurat sampling.
double noise_apply_rate(std::uint64_t total_pairs) {
  constexpr std::size_t kPairs = 8192;
  rng::Engine engine(35);
  std::vector<double> samples(2 * kPairs), out(2 * kPairs);
  rng::fill_standard_normal(engine, {samples.data(), samples.size()},
                            rng::NormalSampler::kZiggurat);
  std::uint64_t done = 0;
  const util::Timer timer;
  while (done < total_pairs) {
    simd::apply_noise_pairs(samples.data(), kPairs, 250.0, 3021.5, -118.25,
                            out.data());
    done += kPairs;
  }
  const double seconds = timer.elapsed_seconds();
  if (out[0] == 12345.6789) std::printf("(unlikely) out=%f\n", out[0]);
  return static_cast<double>(done) / seconds;
}

/// Points/sec through full connectivity clustering (index build +
/// BFS expansion through the scan kernel), repeated `repeats` times.
double clustering_rate(const std::vector<geo::Point>& points,
                       double threshold_m, std::uint64_t repeats) {
  std::size_t total_clusters = 0;
  const util::Timer timer;
  for (std::uint64_t r = 0; r < repeats; ++r) {
    total_clusters +=
        attack::connectivity_clusters(points, threshold_m).size();
  }
  const double seconds = timer.elapsed_seconds();
  if (total_clusters == 0) std::printf("(unlikely) zero clusters\n");
  return static_cast<double>(points.size()) *
         static_cast<double>(repeats) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t samples =
      bench::flag_or(argc, argv, "samples", 4'000'000);
  const std::uint64_t clusterings =
      bench::flag_or(argc, argv, "clusterings", 300);
  const std::size_t users = bench::flag_or(argc, argv, "users", 120);
  const std::uint64_t max_check_ins =
      bench::flag_or(argc, argv, "max-check-ins", 600);

  bench::print_header("Hot paths -- batched sampling + attack workspace");

  // ---- 1. sampler throughput, both paths.
  const double zig_rate =
      sampler_rate(rng::NormalSampler::kZiggurat, samples);
  const double icdf_rate =
      sampler_rate(rng::NormalSampler::kInverseCdf, samples);
  const double speedup = zig_rate / icdf_rate;
  const double pair_rate = noise2d_rate(samples / 2);
  std::printf("standard normal (%llu samples, 16k chunks):\n",
              static_cast<unsigned long long>(samples));
  std::printf("  ziggurat     : %12.0f samples/s\n", zig_rate);
  std::printf("  inverse CDF  : %12.0f samples/s\n", icdf_rate);
  std::printf("  speedup      : %12.2fx\n", speedup);
  std::printf("  2-D noise    : %12.0f pairs/s\n", pair_rate);

  // ---- 1b. SIMD kernel layer: identical workload under forced-scalar
  // and forced-AVX2 dispatch. Bit-identical outputs by contract, so each
  // scalar/simd pair is a pure kernel-throughput ratio. Scan, posterior
  // and noise-apply time the raw kernels at their production call shapes;
  // clustering times the full Algorithm-1 connectivity expansion (grid
  // build + BFS) so the record also shows the end-to-end effect.
  const std::uint64_t kernel_ops = std::max<std::uint64_t>(samples, 65536);
  const double scan_scalar = rate_under(simd::DispatchLevel::kScalar, [&] {
    return distance_scan_rate(kernel_ops * 4);
  });
  const double scan_simd = rate_under(simd::DispatchLevel::kAvx2, [&] {
    return distance_scan_rate(kernel_ops * 4);
  });

  const std::vector<geo::Point> cluster_cloud = kernel_cloud(41, 4000, 1500.0);
  const double cluster_threshold = 120.0;
  const double clustering_scalar =
      rate_under(simd::DispatchLevel::kScalar, [&] {
        return clustering_rate(cluster_cloud, cluster_threshold, clusterings);
      });
  const double clustering_simd = rate_under(simd::DispatchLevel::kAvx2, [&] {
    return clustering_rate(cluster_cloud, cluster_threshold, clusterings);
  });

  const double noise_scalar = rate_under(simd::DispatchLevel::kScalar, [&] {
    return noise_apply_rate(kernel_ops * 2);
  });
  const double noise_simd = rate_under(simd::DispatchLevel::kAvx2, [&] {
    return noise_apply_rate(kernel_ops * 2);
  });

  const double selection_scalar =
      rate_under(simd::DispatchLevel::kScalar, [&] {
        return posterior_kernel_rate(kernel_ops * 2);
      });
  const double selection_simd = rate_under(simd::DispatchLevel::kAvx2, [&] {
    return posterior_kernel_rate(kernel_ops * 2);
  });

  std::printf("\nSIMD kernels, scalar vs %s dispatch:\n",
              simd::avx2_available() ? "avx2" : "scalar (AVX2 unavailable)");
  std::printf("  distance scan: %12.0f -> %12.0f points/s (%5.2fx)\n",
              scan_scalar, scan_simd, scan_simd / scan_scalar);
  std::printf("  clustering   : %12.0f -> %12.0f points/s (%5.2fx)\n",
              clustering_scalar, clustering_simd,
              clustering_simd / clustering_scalar);
  std::printf("  noise apply  : %12.0f -> %12.0f pairs/s  (%5.2fx)\n",
              noise_scalar, noise_simd, noise_simd / noise_scalar);
  std::printf("  posterior    : %12.0f -> %12.0f cands/s  (%5.2fx)\n",
              selection_scalar, selection_simd,
              selection_simd / selection_scalar);

  // ---- 2. repeated clusterings of one observation stream, workspace
  // reused across calls exactly as evaluate_population reuses it.
  lppm::BoundedGeoIndParams params;
  params.radius_m = 500.0;
  params.epsilon = 1.0;
  params.delta = 0.01;
  params.n = 10;
  const lppm::NFoldGaussianMechanism mechanism(params);
  const attack::DeobfuscationConfig attack_config =
      bench::attack_config_for(mechanism, 2);

  const auto population = bench::bench_population(7, users, max_check_ins);
  // Cluster the longest trace: the clusterings/sec number should reflect
  // a heavy user, not whichever happens to come first.
  const trace::SyntheticUser& heaviest = *std::max_element(
      population.begin(), population.end(),
      [](const trace::SyntheticUser& a, const trace::SyntheticUser& b) {
        return a.trace.check_ins.size() < b.trace.check_ins.size();
      });
  rng::Engine observe_engine(13);
  std::vector<geo::Point> observed;
  observed.reserve(heaviest.trace.check_ins.size());
  for (const trace::CheckIn& c : heaviest.trace.check_ins) {
    observed.push_back(c.position +
                       rng::gaussian_noise(observe_engine, mechanism.sigma()));
  }

  attack::DeobfuscationWorkspace workspace;
  std::size_t inferred_total = 0;
  util::Timer cluster_timer;
  for (std::uint64_t i = 0; i < clusterings; ++i) {
    inferred_total +=
        attack::deobfuscate_top_locations(observed, attack_config, workspace)
            .size();
  }
  const double cluster_seconds = cluster_timer.elapsed_seconds();
  const double cluster_rate =
      static_cast<double>(clusterings) / cluster_seconds;
  std::printf("\nAlgorithm 1, reused workspace (%zu check-ins):\n",
              observed.size());
  std::printf("  clusterings  : %llu (%zu locations inferred)\n",
              static_cast<unsigned long long>(clusterings), inferred_total);
  std::printf("  rate         : %12.1f clusterings/s\n", cluster_rate);

  // ---- 3. population pass; the per-user latency histogram is the
  // workspace refactor's accountability metric.
  attack::PopulationAttackProtocol protocol;
  protocol.deobfuscation = attack_config;
  const double sigma = mechanism.sigma();
  util::Timer population_timer;
  const attack::SuccessRateAccumulator rates = attack::evaluate_population(
      population, protocol,
      [sigma](rng::Engine& engine, const trace::SyntheticUser& user) {
        std::vector<geo::Point> stream;
        stream.reserve(user.trace.check_ins.size());
        for (const trace::CheckIn& c : user.trace.check_ins) {
          stream.push_back(c.position + rng::gaussian_noise(engine, sigma));
        }
        return stream;
      });
  const double population_seconds = population_timer.elapsed_seconds();
  const obs::LatencyHistogram& latency =
      obs::MetricsRegistry::global().histogram(
          "attack.deobfuscation_latency_us");
  std::printf("\nevaluate_population (%zu users):\n", rates.users());
  std::printf("  wall         : %.3fs\n", population_seconds);
  std::printf("  per-user deobfuscation: p50 %.1fus  p95 %.1fus  p99 %.1fus\n",
              latency.quantile(0.50), latency.quantile(0.95),
              latency.quantile(0.99));

  bench::JsonMetrics record;
  record.add_string("bench", "hotpaths");
  record.add("samples", samples);
  record.add("ziggurat_samples_per_second", zig_rate);
  record.add("inverse_cdf_samples_per_second", icdf_rate);
  record.add("sampler_speedup", speedup);
  record.add("noise2d_pairs_per_second", pair_rate);
  record.add("distance_scan_points_per_second_scalar", scan_scalar);
  record.add("distance_scan_points_per_second_simd", scan_simd);
  record.add("distance_scan_simd_speedup", scan_simd / scan_scalar);
  record.add("clustering_points_per_second_scalar", clustering_scalar);
  record.add("clustering_points_per_second_simd", clustering_simd);
  record.add("clustering_simd_speedup", clustering_simd / clustering_scalar);
  record.add("noise_apply_pairs_per_second_scalar", noise_scalar);
  record.add("noise_apply_pairs_per_second_simd", noise_simd);
  record.add("noise_apply_simd_speedup", noise_simd / noise_scalar);
  record.add("selection_candidates_per_second_scalar", selection_scalar);
  record.add("selection_candidates_per_second_simd", selection_simd);
  record.add("selection_simd_speedup", selection_simd / selection_scalar);
  record.add("clusterings", clusterings);
  record.add("clusterings_per_second", cluster_rate);
  record.add("users", static_cast<std::uint64_t>(rates.users()));
  record.add("population_wall_seconds", population_seconds);
  bench::add_latency_percentiles(record, "deobfuscation_latency_us", latency);
  bench::emit_json("BENCH_hotpaths.json", record);
  return 0;
}
