# Runs one bench with smoke-scale parameters, then compares the rate
# fields of the JSON it emits against the committed repo-root baseline
# through the perf_guard tool. Invoked by ctest as
#
#   cmake -DBENCH_EXE=<bench binary> -DBENCH_ARGS="--users=12"
#         -DBENCH_JSON=BENCH_foo.json -DGUARD_EXE=<perf_guard binary>
#         -DBASELINE=<repo>/BENCH_foo.json -DGUARD_FIELDS="rate_a;rate_b"
#         -P perf_guard.cmake
#
# The guard's pass floor is baseline / PRIVLOCAD_PERF_TOLERANCE (default
# 5x, see perf_guard.cpp) -- it catches order-of-magnitude collapses at
# smoke scale, not noise.
foreach(required BENCH_EXE BENCH_JSON GUARD_EXE BASELINE GUARD_FIELDS)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "perf_guard: ${required} must be defined")
  endif()
endforeach()

if(NOT EXISTS "${BASELINE}")
  message(FATAL_ERROR "perf_guard: committed baseline ${BASELINE} not found")
endif()

execute_process(
  COMMAND "${BENCH_EXE}" ${BENCH_ARGS}
  RESULT_VARIABLE bench_status
  OUTPUT_VARIABLE bench_stdout
  ERROR_VARIABLE bench_stderr)
if(NOT bench_status EQUAL 0)
  message(FATAL_ERROR
    "perf_guard: ${BENCH_EXE} exited with ${bench_status}\n"
    "stdout:\n${bench_stdout}\nstderr:\n${bench_stderr}")
endif()
if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR "perf_guard: ${BENCH_EXE} did not write ${BENCH_JSON}")
endif()

execute_process(
  COMMAND "${GUARD_EXE}" "${BENCH_JSON}" "${BASELINE}" ${GUARD_FIELDS}
  RESULT_VARIABLE guard_status
  OUTPUT_VARIABLE guard_stdout
  ERROR_VARIABLE guard_stderr)
message(STATUS "${guard_stdout}")
if(NOT guard_status EQUAL 0)
  message(FATAL_ERROR
    "perf_guard: regression detected (exit ${guard_status})\n"
    "stdout:\n${guard_stdout}\nstderr:\n${guard_stderr}")
endif()
