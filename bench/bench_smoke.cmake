# Smoke-runs one bench binary with tiny parameters and validates the
# BENCH_<name>.json perf record it emits: the run must exit 0, the file
# must exist, and every expected key must be present. Invoked by ctest as
#
#   cmake -DBENCH_EXE=<path> -DBENCH_ARGS="--users=12;--trials=200"
#         -DBENCH_JSON=BENCH_foo.json -DBENCH_KEYS="bench;wall_seconds"
#         -P bench_smoke.cmake
#
# BENCH_ARGS and BENCH_KEYS are semicolon-separated lists. The script runs
# in the test's working directory, which is where the bench drops its JSON.
foreach(required BENCH_EXE BENCH_JSON BENCH_KEYS)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "bench_smoke: ${required} must be defined")
  endif()
endforeach()

execute_process(
  COMMAND "${BENCH_EXE}" ${BENCH_ARGS}
  RESULT_VARIABLE bench_status
  OUTPUT_VARIABLE bench_stdout
  ERROR_VARIABLE bench_stderr)
if(NOT bench_status EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: ${BENCH_EXE} exited with ${bench_status}\n"
    "stdout:\n${bench_stdout}\nstderr:\n${bench_stderr}")
endif()

if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR "bench_smoke: ${BENCH_EXE} did not write ${BENCH_JSON}")
endif()
file(READ "${BENCH_JSON}" bench_record)

foreach(key ${BENCH_KEYS})
  if(NOT bench_record MATCHES "\"${key}\"")
    message(FATAL_ERROR
      "bench_smoke: ${BENCH_JSON} is missing key \"${key}\"\n"
      "record:\n${bench_record}")
  endif()
endforeach()

message(STATUS "bench_smoke: ${BENCH_JSON} OK")
