// Edge-cluster load distribution and batch-serving throughput.
//
// Part 1 (paper Section V-A: devices serve nearby users): how a metro-area
// deployment spreads request load across cell-sharded edge devices when
// users follow the synthetic mobility model. Prints requests-per-device
// statistics -- capacity planners read the max/mean ratio. The load map
// comes from EdgeCluster::cell_loads(), so devices are counted wherever
// the population wandered (no fixed scan window to silently fall outside).
//
// Part 2 (paper Tables II/III: one edge platform, tens of thousands of
// users): ConcurrentEdge::serve_trace_batch drives the same population
// through one sharded edge box from 1 worker thread and then from N
// (PRIVLOCAD_THREADS or hardware), reporting requests/sec for both and
// checking that telemetry totals agree -- the parallel run must be a
// faster version of the same computation, not a different one.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/concurrent_edge.hpp"
#include "core/edge_cluster.hpp"
#include "par/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::size_t users = bench::flag_or(argc, argv, "users", 300);
  const double cell_km = static_cast<double>(
      bench::flag_or(argc, argv, "cell-km", 20));
  const std::size_t threads = par::hardware_threads();

  bench::print_header(
      "Edge cluster -- request load across cell devices (" +
      std::to_string(users) + " users, " +
      std::to_string(static_cast<int>(cell_km)) + " km cells)");

  core::EdgeClusterConfig config;
  config.edge.top_params.radius_m = 500.0;
  config.edge.top_params.epsilon = 1.0;
  config.edge.top_params.delta = 0.01;
  config.edge.top_params.n = 10;
  config.cell_size_m = cell_km * 1000.0;
  core::EdgeCluster cluster(config.with_seed(9));

  trace::SyntheticConfig synth;
  synth.min_check_ins = 100;
  synth.max_check_ins = 600;
  const rng::Engine parent(12);
  const auto population = trace::generate_population(parent, synth, users);

  std::size_t total_requests = 0;
  for (const trace::SyntheticUser& user : population) {
    for (const trace::CheckIn& c : user.trace.check_ins) {
      cluster.report_location(user.trace.user_id, c.position, c.time);
      ++total_requests;
    }
  }

  // The complete per-cell load map, wherever the population roamed.
  std::vector<std::size_t> loads;
  for (const core::EdgeCluster::CellLoad& cell : cluster.cell_loads()) {
    loads.push_back(cell.requests);
  }
  std::sort(loads.rbegin(), loads.rend());

  const double mean = static_cast<double>(total_requests) /
                      static_cast<double>(loads.size());
  std::printf("total requests    : %zu\n", total_requests);
  std::printf("active devices    : %zu\n", cluster.active_devices());
  std::printf("busiest device    : %zu requests (%.1fx the mean)\n",
              loads.front(), static_cast<double>(loads.front()) / mean);
  std::printf("quietest device   : %zu requests\n", loads.back());

  // ---- Part 2: one sharded edge box under batch load, 1 vs N threads.
  constexpr std::size_t kShards = 16;
  std::printf("\nbatch serving through ConcurrentEdge (%zu shards):\n",
              kShards);
  std::vector<trace::UserTrace> traces;
  traces.reserve(population.size());
  for (const trace::SyntheticUser& user : population) {
    traces.push_back(user.trace);
  }

  par::ThreadPool serial_pool(1);
  core::ConcurrentEdge serial_edge(config.edge.with_shards(kShards).with_seed(9));
  const core::BatchServeStats serial =
      serial_edge.serve_trace_batch(traces, serial_pool);
  const core::EdgeTelemetry serial_telemetry = serial_edge.telemetry();

  par::ThreadPool parallel_pool(threads);
  core::ConcurrentEdge parallel_edge(config.edge.with_shards(kShards).with_seed(9));
  const core::BatchServeStats parallel =
      parallel_edge.serve_trace_batch(traces, parallel_pool);
  const core::EdgeTelemetry parallel_telemetry = parallel_edge.telemetry();

  const bool counters_match =
      serial_telemetry.requests == parallel_telemetry.requests &&
      serial_telemetry.top_reports == parallel_telemetry.top_reports &&
      serial_telemetry.nomadic_reports == parallel_telemetry.nomadic_reports;
  const double speedup = parallel.wall_seconds > 0.0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 0.0;

  std::printf("  1 thread          : %8.0f req/s (%.3fs)\n",
              serial.requests_per_second(), serial.wall_seconds);
  std::printf("  %zu thread(s)       : %8.0f req/s (%.3fs)  %.2fx\n",
              threads, parallel.requests_per_second(),
              parallel.wall_seconds, speedup);
  std::printf("  telemetry totals  : %s\n",
              counters_match ? "identical" : "MISMATCH");

  bench::JsonMetrics record;
  record.add_string("bench", "cluster_load");
  record.add("threads", static_cast<std::uint64_t>(threads));
  record.add("users", static_cast<std::uint64_t>(users));
  record.add("total_requests", static_cast<std::uint64_t>(total_requests));
  record.add("active_devices",
             static_cast<std::uint64_t>(cluster.active_devices()));
  record.add("busiest_over_mean",
             static_cast<double>(loads.front()) / mean);
  record.add("serial_seconds", serial.wall_seconds);
  record.add("parallel_seconds", parallel.wall_seconds);
  record.add("serial_requests_per_second", serial.requests_per_second());
  record.add("parallel_requests_per_second",
             parallel.requests_per_second());
  record.add("speedup", speedup);
  record.add("telemetry_match",
             static_cast<std::uint64_t>(counters_match ? 1 : 0));
  bench::add_latency_percentiles(
      record, "serve_latency_us",
      parallel_edge.metrics().histogram(core::edge_metrics::kServeLatencyUs));
  const par::PoolStats pool_stats = parallel_pool.stats();
  record.add("pool_tasks_executed", pool_stats.tasks_executed);
  record.add("pool_steals", pool_stats.steals);
  bench::emit_json("BENCH_cluster_load.json", record);

  std::printf("\nexpected: load roughly follows population density; top "
              "locations pin most of a user's requests to one device, "
              "which is exactly why per-device state (tables, profiles) "
              "shards cleanly\n");
  return counters_match ? 0 : 1;
}
