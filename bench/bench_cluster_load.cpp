// Edge-cluster load distribution and batch-serving throughput.
//
// Part 1 (paper Section V-A: devices serve nearby users): how a metro-area
// deployment spreads request load across cell-sharded edge devices when
// users follow the synthetic mobility model. Prints requests-per-device
// statistics -- capacity planners read the max/mean ratio. The load map
// comes from EdgeCluster::cell_loads(), so devices are counted wherever
// the population wandered (no fixed scan window to silently fall outside).
//
// Part 2 (paper Tables II/III: one edge platform, tens of thousands of
// users): ConcurrentEdge::serve_trace_batch drives the same population
// through one sharded edge box from 1 worker thread and then from N
// (PRIVLOCAD_THREADS or hardware), reporting requests/sec for both and
// checking that telemetry totals agree -- the parallel run must be a
// faster version of the same computation, not a different one.
//
// Part 3 (mega-scale data plane, --mega-users, default 1M): streams a
// million-user synthetic population into one sharded edge box (per-user
// generation -> import, no whole-population buffer), saves the columnar
// snapshot, reopens it in a second box via mmap, and probes both boxes
// with identical request streams. Reports serve throughput, snapshot
// size, save/load seconds (load must be O(seconds): the open is a map +
// directory rebuild, not a parse), resident-set bytes, and a bit-identity
// check between the in-memory and snapshot-mapped serving paths.
#include <sys/stat.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/concurrent_edge.hpp"
#include "core/edge_cluster.hpp"
#include "core/snapshot.hpp"
#include "par/thread_pool.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::size_t users = bench::flag_or(argc, argv, "users", 300);
  const double cell_km = static_cast<double>(
      bench::flag_or(argc, argv, "cell-km", 20));
  const std::size_t threads = par::hardware_threads();

  bench::print_header(
      "Edge cluster -- request load across cell devices (" +
      std::to_string(users) + " users, " +
      std::to_string(static_cast<int>(cell_km)) + " km cells)");

  core::EdgeClusterConfig config;
  config.edge.top_params.radius_m = 500.0;
  config.edge.top_params.epsilon = 1.0;
  config.edge.top_params.delta = 0.01;
  config.edge.top_params.n = 10;
  config.cell_size_m = cell_km * 1000.0;
  core::EdgeCluster cluster(config.with_seed(9));

  trace::SyntheticConfig synth;
  synth.min_check_ins = 100;
  synth.max_check_ins = 600;
  const rng::Engine parent(12);
  const auto population = trace::generate_population(parent, synth, users);

  std::size_t total_requests = 0;
  for (const trace::SyntheticUser& user : population) {
    for (const trace::CheckIn& c : user.trace.check_ins) {
      cluster.report_location(user.trace.user_id, c.position, c.time);
      ++total_requests;
    }
  }

  // The complete per-cell load map, wherever the population roamed.
  std::vector<std::size_t> loads;
  for (const core::EdgeCluster::CellLoad& cell : cluster.cell_loads()) {
    loads.push_back(cell.requests);
  }
  std::sort(loads.rbegin(), loads.rend());

  const double mean = static_cast<double>(total_requests) /
                      static_cast<double>(loads.size());
  std::printf("total requests    : %zu\n", total_requests);
  std::printf("active devices    : %zu\n", cluster.active_devices());
  std::printf("busiest device    : %zu requests (%.1fx the mean)\n",
              loads.front(), static_cast<double>(loads.front()) / mean);
  std::printf("quietest device   : %zu requests\n", loads.back());

  // ---- Part 2: one sharded edge box under batch load, 1 vs N threads.
  constexpr std::size_t kShards = 16;
  std::printf("\nbatch serving through ConcurrentEdge (%zu shards):\n",
              kShards);
  std::vector<trace::UserTrace> traces;
  traces.reserve(population.size());
  for (const trace::SyntheticUser& user : population) {
    traces.push_back(user.trace);
  }

  par::ThreadPool serial_pool(1);
  core::ConcurrentEdge serial_edge(config.edge.with_shards(kShards).with_seed(9));
  const core::BatchServeStats serial =
      serial_edge.serve_trace_batch(traces, serial_pool);
  const core::EdgeTelemetry serial_telemetry = serial_edge.telemetry();

  par::ThreadPool parallel_pool(threads);
  core::ConcurrentEdge parallel_edge(config.edge.with_shards(kShards).with_seed(9));
  const core::BatchServeStats parallel =
      parallel_edge.serve_trace_batch(traces, parallel_pool);
  const core::EdgeTelemetry parallel_telemetry = parallel_edge.telemetry();

  const bool counters_match =
      serial_telemetry.requests == parallel_telemetry.requests &&
      serial_telemetry.top_reports == parallel_telemetry.top_reports &&
      serial_telemetry.nomadic_reports == parallel_telemetry.nomadic_reports;
  const double speedup = parallel.wall_seconds > 0.0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 0.0;

  std::printf("  1 thread          : %8.0f req/s (%.3fs)\n",
              serial.requests_per_second(), serial.wall_seconds);
  std::printf("  %zu thread(s)       : %8.0f req/s (%.3fs)  %.2fx\n",
              threads, parallel.requests_per_second(),
              parallel.wall_seconds, speedup);
  std::printf("  telemetry totals  : %s\n",
              counters_match ? "identical" : "MISMATCH");

  // ---- Part 3: mega-scale columnar data plane (1M users by default).
  const std::size_t mega_users =
      bench::flag_or(argc, argv, "mega-users", 1000000);
  const std::size_t mega_shards =
      bench::flag_or(argc, argv, "mega-shards", 8);

  std::uint64_t mega_requests = 0;
  double mega_requests_per_second = 0.0;
  double snapshot_save_seconds = 0.0;
  double snapshot_load_seconds = 0.0;
  double snapshot_load_users_per_second = 0.0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t mega_resident_bytes = 0;
  bool mega_serve_match = true;

  if (mega_users > 0) {
    std::printf("\nmega data plane (%zu users, %zu shards):\n", mega_users,
                mega_shards);

    trace::SyntheticConfig mega_synth;
    mega_synth.min_check_ins = 20;
    mega_synth.max_check_ins = 60;
    const rng::Engine mega_parent(4242);

    const core::EdgeConfig mega_config =
        config.edge.with_shards(mega_shards).with_seed(77);
    core::ConcurrentEdge live_edge(mega_config);

    // Streamed generation -> import: one user materialized at a time, so
    // the only O(users) state is the store itself plus the probe columns.
    std::vector<double> probe_xs(mega_users), probe_ys(mega_users);
    std::vector<trace::Timestamp> probe_ts(mega_users);
    util::Timer timer;
    std::uint64_t imported_check_ins = 0;
    for (std::size_t uid = 0; uid < mega_users; ++uid) {
      const trace::SyntheticUser user =
          trace::generate_user(mega_parent, mega_synth, uid);
      live_edge.import_history(user.trace.user_id, user.trace);
      imported_check_ins += user.trace.check_ins.size();
      probe_xs[uid] = user.trace.check_ins.front().position.x;
      probe_ys[uid] = user.trace.check_ins.front().position.y;
      probe_ts[uid] = user.trace.check_ins.back().time + 600;
    }
    const double import_seconds = timer.elapsed_seconds();
    std::printf("  import            : %zu users / %llu check-ins in %.1fs "
                "(%.0f users/s)\n",
                mega_users,
                static_cast<unsigned long long>(imported_check_ins),
                import_seconds,
                static_cast<double>(mega_users) / import_seconds);

    // Snapshot the post-import state BEFORE serving: the live box and the
    // snapshot-mapped box must start from identical state so their probe
    // streams can be compared bit-for-bit.
    const std::string snapshot_path = "BENCH_cluster_load.snap";
    timer.reset();
    const util::Status save_status = live_edge.save_snapshot(snapshot_path);
    snapshot_save_seconds = timer.elapsed_seconds();
    if (!save_status.ok()) {
      std::printf("  snapshot save FAILED: %s\n",
                  save_status.message().c_str());
      return 1;
    }
    struct stat snapshot_stat{};
    if (::stat(snapshot_path.c_str(), &snapshot_stat) == 0) {
      snapshot_bytes = static_cast<std::uint64_t>(snapshot_stat.st_size);
    }
    std::printf("  snapshot save     : %.2fs (%.1f MB, %.1f bytes/user)\n",
                snapshot_save_seconds,
                static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0),
                static_cast<double>(snapshot_bytes) /
                    static_cast<double>(mega_users));

    // Each user gets one likely-top probe (their first anchor) and one
    // far-away nomadic probe; the serve-result stream is FNV-hashed so the
    // live and mapped boxes can be compared without buffering 2M results.
    const auto probe_edge = [&](core::ConcurrentEdge& edge) {
      std::uint64_t hash = core::snapshot::kFnvOffsetBasis;
      for (std::size_t uid = 0; uid < mega_users; ++uid) {
        const geo::Point top_probe{probe_xs[uid], probe_ys[uid]};
        const geo::Point nomadic_probe{probe_xs[uid] + 50000.0,
                                       probe_ys[uid] - 50000.0};
        for (const geo::Point& probe : {top_probe, nomadic_probe}) {
          const core::ServeResult r = edge.serve(uid, probe, probe_ts[uid]);
          const std::uint64_t words[4] = {
              static_cast<std::uint64_t>(r.outcome),
              r.released() ? static_cast<std::uint64_t>(r.reported.kind)
                           : ~0ULL,
              r.released() ? std::bit_cast<std::uint64_t>(r.reported.location.x)
                           : 0ULL,
              r.released() ? std::bit_cast<std::uint64_t>(r.reported.location.y)
                           : 0ULL,
          };
          hash = core::snapshot::fnv1a64(words, sizeof(words), hash);
        }
      }
      return hash;
    };

    timer.reset();
    const std::uint64_t live_hash = probe_edge(live_edge);
    const double live_serve_seconds = timer.elapsed_seconds();
    mega_requests = 2 * static_cast<std::uint64_t>(mega_users);
    mega_requests_per_second =
        static_cast<double>(mega_requests) / live_serve_seconds;
    std::printf("  live serving      : %8.0f req/s (%zu reqs, %.1fs)\n",
                mega_requests_per_second, static_cast<std::size_t>(mega_requests),
                live_serve_seconds);

    // Reopen the snapshot in a second box: the load is a header check, an
    // mmap, and a directory rebuild -- not a parse of the payload.
    core::ConcurrentEdge mapped_edge(mega_config);
    timer.reset();
    const util::Status open_status = mapped_edge.open_snapshot(snapshot_path);
    snapshot_load_seconds = timer.elapsed_seconds();
    if (!open_status.ok()) {
      std::printf("  snapshot open FAILED: %s\n",
                  open_status.message().c_str());
      return 1;
    }
    snapshot_load_users_per_second =
        static_cast<double>(mega_users) / snapshot_load_seconds;
    std::printf("  snapshot load     : %.3fs (%.0f users/s)\n",
                snapshot_load_seconds, snapshot_load_users_per_second);

    const std::uint64_t mapped_hash = probe_edge(mapped_edge);
    mega_serve_match = mapped_hash == live_hash;
    std::printf("  serve bit-identity: %s\n",
                mega_serve_match ? "identical" : "MISMATCH");
    mega_resident_bytes = bench::resident_set_bytes();
    std::printf("  resident set      : %.1f MB (both boxes + probes)\n",
                static_cast<double>(mega_resident_bytes) / (1024.0 * 1024.0));
    std::remove(snapshot_path.c_str());
  }

  bench::JsonMetrics record;
  record.add_string("bench", "cluster_load");
  record.add("threads", static_cast<std::uint64_t>(threads));
  record.add("users", static_cast<std::uint64_t>(users));
  record.add("total_requests", static_cast<std::uint64_t>(total_requests));
  record.add("active_devices",
             static_cast<std::uint64_t>(cluster.active_devices()));
  record.add("busiest_over_mean",
             static_cast<double>(loads.front()) / mean);
  record.add("serial_seconds", serial.wall_seconds);
  record.add("parallel_seconds", parallel.wall_seconds);
  record.add("serial_requests_per_second", serial.requests_per_second());
  record.add("parallel_requests_per_second",
             parallel.requests_per_second());
  record.add("speedup", speedup);
  record.add("telemetry_match",
             static_cast<std::uint64_t>(counters_match ? 1 : 0));
  bench::add_latency_percentiles(
      record, "serve_latency_us",
      parallel_edge.metrics().histogram(core::edge_metrics::kServeLatencyUs));
  const par::PoolStats pool_stats = parallel_pool.stats();
  record.add("pool_tasks_executed", pool_stats.tasks_executed);
  record.add("pool_steals", pool_stats.steals);
  record.add("mega_users", static_cast<std::uint64_t>(mega_users));
  record.add("mega_requests", mega_requests);
  record.add("mega_requests_per_second", mega_requests_per_second);
  record.add("snapshot_bytes", snapshot_bytes);
  record.add("snapshot_save_seconds", snapshot_save_seconds);
  record.add("snapshot_load_seconds", snapshot_load_seconds);
  record.add("snapshot_load_users_per_second", snapshot_load_users_per_second);
  record.add("resident_bytes", mega_resident_bytes);
  record.add("mega_serve_match",
             static_cast<std::uint64_t>(mega_serve_match ? 1 : 0));
  bench::emit_json("BENCH_cluster_load.json", record);

  std::printf("\nexpected: load roughly follows population density; top "
              "locations pin most of a user's requests to one device, "
              "which is exactly why per-device state (tables, profiles) "
              "shards cleanly\n");
  return (counters_match && mega_serve_match) ? 0 : 1;
}
