// Edge-cluster load distribution: how a metro-area deployment (paper
// Section V-A: devices serve nearby users) spreads request load across
// cell-sharded edge devices when users follow the synthetic mobility
// model. Prints requests-per-device statistics -- capacity planners read
// the max/mean ratio.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/edge_cluster.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::size_t users = bench::flag_or(argc, argv, "users", 300);
  const double cell_km = static_cast<double>(
      bench::flag_or(argc, argv, "cell-km", 20));

  bench::print_header(
      "Edge cluster -- request load across cell devices (" +
      std::to_string(users) + " users, " +
      std::to_string(static_cast<int>(cell_km)) + " km cells)");

  core::EdgeClusterConfig config;
  config.edge.top_params.radius_m = 500.0;
  config.edge.top_params.epsilon = 1.0;
  config.edge.top_params.delta = 0.01;
  config.edge.top_params.n = 10;
  config.cell_size_m = cell_km * 1000.0;
  core::EdgeCluster cluster(config, 9);

  trace::SyntheticConfig synth;
  synth.min_check_ins = 100;
  synth.max_check_ins = 600;
  const rng::Engine parent(12);
  const auto population = trace::generate_population(parent, synth, users);

  std::size_t total_requests = 0;
  for (const trace::SyntheticUser& user : population) {
    for (const trace::CheckIn& c : user.trace.check_ins) {
      cluster.report_location(user.trace.user_id, c.position, c.time);
      ++total_requests;
    }
  }

  // Collect per-cell request counts over the study grid.
  std::vector<std::size_t> loads;
  for (std::int32_t cx = -4; cx <= 4; ++cx) {
    for (std::int32_t cy = -4; cy <= 4; ++cy) {
      const std::size_t served = cluster.requests_served(cx, cy);
      if (served > 0) loads.push_back(served);
    }
  }
  std::sort(loads.rbegin(), loads.rend());

  const double mean = static_cast<double>(total_requests) /
                      static_cast<double>(loads.size());
  std::printf("total requests    : %zu\n", total_requests);
  std::printf("active devices    : %zu\n", cluster.active_devices());
  std::printf("busiest device    : %zu requests (%.1fx the mean)\n",
              loads.front(), static_cast<double>(loads.front()) / mean);
  std::printf("quietest device   : %zu requests\n", loads.back());
  std::printf("\nexpected: load roughly follows population density; top "
              "locations pin most of a user's requests to one device, "
              "which is exactly why per-device state (tables, profiles) "
              "shards cleanly\n");
  return 0;
}
