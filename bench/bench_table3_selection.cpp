// Reproduces paper Table III: output-selection time as the user count
// scales 2,000 -> 32,000.
//
// Timed work per user: one LBA request's output-selection step -- compute
// the posterior probabilities over the user's 10 frozen candidates and
// sample the one to report (Algorithm 4).
//
// Paper numbers (Raspberry Pi 3): 90 ms @ 2k users up to 1,377 ms @ 32k --
// linear scaling with sub-millisecond per-user latency. The linear shape
// and the per-user latency class are the reproduction targets.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "rng/engine.hpp"

namespace {

using namespace privlocad;

void BM_OutputSelection(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));

  lppm::BoundedGeoIndParams params;
  params.radius_m = 500.0;
  params.epsilon = 1.0;
  params.delta = 0.01;
  params.n = 10;
  const lppm::NFoldGaussianMechanism mech(params);

  // Every user's frozen candidate set, generated outside the timed region.
  rng::Engine setup(11);
  std::vector<std::vector<geo::Point>> candidate_sets;
  candidate_sets.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    candidate_sets.push_back(
        mech.obfuscate(setup, {setup.uniform_in(-40000, 40000),
                               setup.uniform_in(-40000, 40000)}));
  }

  for (auto _ : state) {
    rng::Engine e(13);
    std::size_t sum = 0;
    for (const auto& candidates : candidate_sets) {
      sum += core::select_candidate(e, candidates, mech.posterior_sigma());
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["users"] = static_cast<double>(users);
}

BENCHMARK(BM_OutputSelection)
    ->Unit(benchmark::kMillisecond)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000)
    ->Arg(32000);

}  // namespace

BENCHMARK_MAIN();
