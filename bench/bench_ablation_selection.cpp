// Ablation: posterior output selection (Algorithm 4) vs. uniform candidate
// choice. Quantifies how much advertising efficacy the posterior weighting
// buys across n and r -- the design-choice justification for the output
// selection module (paper Observation 4 rests on it).
#include <cstdio>

#include "bench_common.hpp"
#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "stats/monte_carlo.hpp"
#include "utility/metrics.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t trials = bench::flag_or(argc, argv, "trials", 20000);
  constexpr double kTargetingRadius = 5000.0;

  bench::print_header(
      "Ablation -- posterior vs uniform output selection (eps=1, r=500m)");

  std::printf("%3s %12s %12s %12s\n", "n", "posterior", "uniform", "gain");
  for (std::size_t n = 1; n <= 10; ++n) {
    lppm::BoundedGeoIndParams params;
    params.radius_m = 500.0;
    params.epsilon = 1.0;
    params.delta = 0.01;
    params.n = n;
    const lppm::NFoldGaussianMechanism mech(params);

    const rng::Engine parent(1300 + n);
    stats::MonteCarloOptions opts;
    opts.trials = trials;

    double posterior_mean = 0.0, uniform_mean = 0.0;
    {
      const auto result = stats::run_monte_carlo(opts, [&](std::uint64_t t) {
        rng::Engine e = parent.split(t);
        const auto candidates = mech.obfuscate(e, {0, 0});
        const auto probs =
            core::selection_probabilities(candidates, mech.posterior_sigma());
        return utility::efficacy_weighted({0, 0}, candidates, probs,
                                          kTargetingRadius);
      });
      posterior_mean = result.summary.mean();
    }
    {
      const auto result = stats::run_monte_carlo(opts, [&](std::uint64_t t) {
        rng::Engine e = parent.split(t + trials);
        const auto candidates = mech.obfuscate(e, {0, 0});
        const std::vector<double> uniform(
            candidates.size(), 1.0 / static_cast<double>(candidates.size()));
        return utility::efficacy_weighted({0, 0}, candidates, uniform,
                                          kTargetingRadius);
      });
      uniform_mean = result.summary.mean();
    }
    std::printf("%3zu %12.3f %12.3f %+11.1f%%\n", n, posterior_mean,
                uniform_mean,
                (posterior_mean / uniform_mean - 1.0) * 100.0);
  }
  std::printf("\nexpected: gain grows with n (more candidates for the "
              "posterior to discriminate); zero at n=1 by construction\n");
  return 0;
}
