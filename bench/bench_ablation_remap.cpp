// Ablation: Bayesian posterior remapping on the nomadic one-time path.
// Quantifies the free (privacy-cost-zero) accuracy gain of remapping a
// planar-Laplace report onto an informative public prior, across privacy
// levels -- the utility-improvement line of related work ([21] in the
// paper) integrated into Edge-PrivLocAd's nomadic path.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "lppm/planar_laplace.hpp"
#include "lppm/remapping.hpp"
#include "stats/running_stats.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t trials = bench::flag_or(argc, argv, "trials", 3000);

  bench::print_header(
      "Ablation -- Bayesian remapping of nomadic reports (grid prior, "
      "500 m cells)");

  // A POI-style prior: the user is always at one of the grid's cells.
  const geo::BoundingBox box({-5000, -5000}, {5000, 5000});
  const auto prior = lppm::uniform_grid_prior(box, 21);  // 500 m pitch
  const lppm::BayesianRemapper remapper(prior);

  std::printf("%10s %16s %18s %10s\n", "level l", "raw error (m)",
              "remapped error (m)", "gain");
  for (const double level : {std::log(2.0), std::log(4.0), std::log(6.0)}) {
    const lppm::PlanarLaplaceMechanism mech({level, 200.0});
    const double eps = level / 200.0;

    rng::Engine parent(1700 + static_cast<std::uint64_t>(level * 100));
    stats::RunningStats raw, remapped;
    for (std::uint64_t t = 0; t < trials; ++t) {
      rng::Engine e = parent.split(t);
      // Truth on the prior's support (a known POI).
      const geo::Point truth =
          prior[e.uniform_index(prior.size())].location;
      const geo::Point reported = mech.obfuscate_one(e, truth);
      raw.add(geo::distance(reported, truth));
      remapped.add(
          geo::distance(remapper.remap_laplace(reported, eps), truth));
    }
    std::printf("%10.3f %16.1f %18.1f %+9.1f%%\n", level, raw.mean(),
                remapped.mean(),
                (remapped.mean() / raw.mean() - 1.0) * 100.0);
  }
  std::printf("\nexpected: remapping reduces error at every level; with a "
              "fixed-pitch grid prior the relative gain grows as the noise "
              "scale approaches the prior pitch\n");
  return 0;
}
