// Ablation: Algorithm 1's stage-2 trimming on vs. off. Measures the
// attack's top-1 recovery error with and without the iterative trimming
// refinement, across observation counts -- the justification for the
// two-stage design of the de-obfuscation attack.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "lppm/planar_laplace.hpp"
#include "stats/running_stats.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t users = bench::flag_or(argc, argv, "users", 400);

  bench::print_header(
      "Ablation -- attack trimming stage on/off (laplace l=ln4, r=200m)");

  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});

  std::printf("%12s %18s %18s %14s\n", "check-ins", "error w/ trim (m)",
              "error w/o trim (m)", "success@200m");
  for (const std::size_t observations : {50u, 100u, 250u, 500u, 1000u}) {
    stats::RunningStats with_trim, without_trim;
    std::size_t success = 0;

    for (std::uint64_t u = 0; u < users; ++u) {
      rng::Engine e(rng::Engine(1500).split(u * 7 + observations));
      const geo::Point home{e.uniform_in(-40000, 40000),
                            e.uniform_in(-40000, 40000)};
      std::vector<geo::Point> observed;
      observed.reserve(observations);
      for (std::size_t i = 0; i < observations; ++i) {
        observed.push_back(mech.obfuscate_one(e, home));
      }

      attack::DeobfuscationConfig config = bench::attack_config_for(mech, 1);
      const auto trimmed =
          attack::deobfuscate_top_locations(observed, config);
      config.enable_trimming = false;
      const auto untrimmed =
          attack::deobfuscate_top_locations(observed, config);

      const double err_trim =
          geo::distance(trimmed.at(0).location, home);
      with_trim.add(err_trim);
      without_trim.add(geo::distance(untrimmed.at(0).location, home));
      if (err_trim <= 200.0) ++success;
    }
    std::printf("%12zu %18.1f %18.1f %13.1f%%\n", observations,
                with_trim.mean(), without_trim.mean(),
                100.0 * static_cast<double>(success) /
                    static_cast<double>(users));
  }
  std::printf("\nexpected: trimming never hurts and helps most at low "
              "observation counts where stray clusters contaminate\n");
  return 0;
}
