// Shared helpers for the reproduction benches.
//
// Every bench prints a paper-style table to stdout. Workload sizes default
// to paper scale where feasible on one core and are overridable through
// argv ("--users=N", "--trials=N") so CI can run quick smoke passes.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "attack/deobfuscation.hpp"
#include "attack/evaluation.hpp"
#include "lppm/mechanism.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "trace/synthetic.hpp"

namespace privlocad::bench {

/// Parses "--name=value" integer flags; returns `fallback` when absent.
inline std::uint64_t flag_or(int argc, char** argv, const std::string& name,
                             std::uint64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoull(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

/// Parses "--name=value" string flags; returns `fallback` when absent.
inline std::string string_flag_or(int argc, char** argv,
                                  const std::string& name,
                                  const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

/// Prints a separator + header line for a paper artifact.
inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Runs the longitudinal attack against `mechanism`-obfuscated check-ins of
/// every user and accumulates top-1/top-2 success rates at 200 m and 500 m
/// (the Fig. 6 protocol). Every check-in is obfuscated independently for
/// one-time mechanisms; for permanent mechanisms the caller should pass
/// already-obfuscated observations instead (see bench_fig6).
struct AttackProtocolResult {
  attack::SuccessRateAccumulator rates{2, {200.0, 500.0}};
};

/// The de-obfuscation configuration the paper's attack uses: r_alpha at
/// alpha = 0.05 from the mechanism's tail, connectivity threshold scaled
/// to the noise magnitude.
inline attack::DeobfuscationConfig attack_config_for(
    const lppm::Mechanism& mechanism, std::size_t top_n) {
  attack::DeobfuscationConfig config;
  config.trim_radius_m = mechanism.tail_radius(0.05);
  config.connectivity_threshold_m = config.trim_radius_m / 4.0;
  config.top_n = top_n;
  return config;
}

/// The perf-baseline records every bench writes (BENCH_<name>.json) are
/// built with the shared obs::JsonWriter: same flat one-key-per-line
/// schema the metrics registry exports, so registry dumps and bench
/// records diff with the same tooling.
using JsonMetrics = obs::JsonWriter;

/// Appends histogram percentiles to `metrics` under `prefix` using the
/// same `<prefix>_count/_p50/_p95/_p99` key family the registry export
/// emits, so bench records stay schema-compatible with registry dumps.
inline void add_latency_percentiles(JsonMetrics& metrics,
                                    const std::string& prefix,
                                    const obs::LatencyHistogram& histogram) {
  metrics.add(prefix + "_count", histogram.count());
  metrics.add(prefix + "_p50", histogram.quantile(0.50));
  metrics.add(prefix + "_p95", histogram.quantile(0.95));
  metrics.add(prefix + "_p99", histogram.quantile(0.99));
}

/// Writes `metrics` as one flat JSON object to `path` (typically
/// "BENCH_<name>.json" in the working directory). These records are the
/// perf trajectory future changes regress against: wall time, throughput,
/// thread count, and whatever accuracy numbers prove the speedup did not
/// change the result. Every record also carries build provenance --
/// compiler, flags, detected CPU features, and the active SIMD dispatch
/// level -- so two baselines that disagree can be told apart by how they
/// were built, not just when. Also dumps the process-global metrics
/// registry to $PRIVLOCAD_METRICS when that variable is set, so one run
/// can leave both the bench record and the full registry behind. Returns
/// false (and warns on stderr) on IO failure.
inline bool emit_json(const std::string& path, const JsonMetrics& metrics) {
  JsonMetrics stamped = metrics;
  stamped.add_string("build_compiler", __VERSION__);
#ifdef PRIVLOCAD_BUILD_FLAGS
  stamped.add_string("build_flags", PRIVLOCAD_BUILD_FLAGS);
#else
  stamped.add_string("build_flags", "unknown");
#endif
  stamped.add_string("cpu_features", simd::cpu_features_string());
  stamped.add_string("simd_dispatch", simd::dispatch_level_name(
                                          simd::active_dispatch_level()));
  const bool ok = stamped.write_file(path);
  if (ok) std::printf("perf record -> %s\n", path.c_str());
  obs::MetricsRegistry::global().export_to_env_path();
  return ok;
}

/// Current resident-set size of this process in bytes (VmRSS from
/// /proc/self/status), or 0 where procfs is unavailable. Memory-footprint
/// ground truth for the mega-scale benches: heap counters miss allocator
/// slack and mmap'd snapshot pages, the RSS does not.
inline std::uint64_t resident_set_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kib)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

/// Synthetic population matching the paper's dataset shape, at a
/// configurable scale (users / max check-ins) so benches stay tractable on
/// one core. Statistical shape is preserved; see DESIGN.md section 2.
inline std::vector<trace::SyntheticUser> bench_population(
    std::uint64_t seed, std::size_t users, std::uint64_t max_check_ins) {
  trace::SyntheticConfig config;
  config.max_check_ins = max_check_ins;
  const rng::Engine parent(seed);
  return trace::generate_population(parent, config, users);
}

}  // namespace privlocad::bench
