// Shared helpers for the reproduction benches.
//
// Every bench prints a paper-style table to stdout. Workload sizes default
// to paper scale where feasible on one core and are overridable through
// argv ("--users=N", "--trials=N") so CI can run quick smoke passes.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "attack/deobfuscation.hpp"
#include "attack/evaluation.hpp"
#include "lppm/mechanism.hpp"
#include "trace/synthetic.hpp"

namespace privlocad::bench {

/// Parses "--name=value" integer flags; returns `fallback` when absent.
inline std::uint64_t flag_or(int argc, char** argv, const std::string& name,
                             std::uint64_t fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::stoull(arg.substr(prefix.size()));
    }
  }
  return fallback;
}

/// Prints a separator + header line for a paper artifact.
inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Runs the longitudinal attack against `mechanism`-obfuscated check-ins of
/// every user and accumulates top-1/top-2 success rates at 200 m and 500 m
/// (the Fig. 6 protocol). Every check-in is obfuscated independently for
/// one-time mechanisms; for permanent mechanisms the caller should pass
/// already-obfuscated observations instead (see bench_fig6).
struct AttackProtocolResult {
  attack::SuccessRateAccumulator rates{2, {200.0, 500.0}};
};

/// The de-obfuscation configuration the paper's attack uses: r_alpha at
/// alpha = 0.05 from the mechanism's tail, connectivity threshold scaled
/// to the noise magnitude.
inline attack::DeobfuscationConfig attack_config_for(
    const lppm::Mechanism& mechanism, std::size_t top_n) {
  attack::DeobfuscationConfig config;
  config.trim_radius_m = mechanism.tail_radius(0.05);
  config.connectivity_threshold_m = config.trim_radius_m / 4.0;
  config.top_n = top_n;
  return config;
}

/// Ordered key -> JSON-literal metric set for the perf-baseline records
/// every bench writes (BENCH_<name>.json). Values are rendered at add()
/// time so the writer needs no variant machinery; insertion order is the
/// file order, which keeps diffs between runs line-stable.
class JsonMetrics {
 public:
  JsonMetrics& add(const std::string& key, double value) {
    char buffer[64];
    if (std::isfinite(value)) {
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    } else {
      std::snprintf(buffer, sizeof(buffer), "null");
    }
    entries_.emplace_back(key, buffer);
    return *this;
  }

  JsonMetrics& add(const std::string& key, std::uint64_t value) {
    entries_.emplace_back(key, std::to_string(value));
    return *this;
  }

  /// `value` must not need escaping (bench names and labels do not).
  JsonMetrics& add_string(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");
    return *this;
  }

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Writes `metrics` as one flat JSON object to `path` (typically
/// "BENCH_<name>.json" in the working directory). These records are the
/// perf trajectory future changes regress against: wall time, throughput,
/// thread count, and whatever accuracy numbers prove the speedup did not
/// change the result. Returns false (and warns on stderr) on IO failure.
inline bool emit_json(const std::string& path, const JsonMetrics& metrics) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n");
  const auto& entries = metrics.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(out, "  \"%s\": %s%s\n", entries[i].first.c_str(),
                 entries[i].second.c_str(),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("perf record -> %s\n", path.c_str());
  return true;
}

/// Synthetic population matching the paper's dataset shape, at a
/// configurable scale (users / max check-ins) so benches stay tractable on
/// one core. Statistical shape is preserved; see DESIGN.md section 2.
inline std::vector<trace::SyntheticUser> bench_population(
    std::uint64_t seed, std::size_t users, std::uint64_t max_check_ins) {
  trace::SyntheticConfig config;
  config.max_check_ins = max_check_ins;
  const rng::Engine parent(seed);
  return trace::generate_population(parent, config, users);
}

}  // namespace privlocad::bench
