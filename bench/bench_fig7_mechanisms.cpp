// Reproduces paper Fig. 7: utilization-rate comparison between the n-fold
// Gaussian mechanism and the two baselines (naive post-processing, plain
// DP composition) for n in [1, 10], eps = 1, r = 500 m, R = 5 km.
//
// The paper's metric (2) is the MINIMAL utilization rate: the lower bound
// v with Pr(UR >= v) = alpha = 0.9 (Eq. 24). Against that metric the paper
// reports, at n = 10: ~100% for the n-fold mechanism, ~58% for naive
// post-processing, and ~20% for plain composition -- and composition
// DECREASES as n grows. We print both the mean UR and the minimal UR; the
// minimal column is the paper comparison.
//
// A second section exercises the optimal geo-IND baseline at scale: the
// exact dense-LP mechanism on a small grid (--exact-side) against the
// spanner-decomposed approximate build on a large one (--approx-side),
// recording the measured dilation bound, the utility-loss ratio between
// the two constructions at the small grid, and the LP solver's opt.*
// observability counters in BENCH_fig7_mechanisms.json.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "lppm/baselines.hpp"
#include "lppm/gaussian.hpp"
#include "lppm/optimal_mechanism.hpp"
#include "stats/monte_carlo.hpp"
#include "stats/quantiles.hpp"
#include "util/timer.hpp"
#include "utility/metrics.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  // The paper runs 100,000 trials per point; each trial here also runs a
  // coverage estimate, so the default is trimmed for single-core wall
  // clock. Raise with --trials to match the paper exactly.
  const std::uint64_t trials = bench::flag_or(argc, argv, "trials", 5000);
  const std::uint64_t ur_samples =
      bench::flag_or(argc, argv, "ur-samples", 256);
  const std::uint64_t exact_side =
      bench::flag_or(argc, argv, "exact-side", 4);
  const std::uint64_t approx_side =
      bench::flag_or(argc, argv, "approx-side", 32);
  constexpr double kTargetingRadius = 5000.0;
  constexpr double kAlpha = 0.9;

  bench::print_header(
      "Figure 7 -- utilization rate by mechanism (eps=1, r=500m, R=5km, " +
      std::to_string(trials) + " trials/point)");

  std::printf("%3s | %9s %9s | %9s %9s | %9s %9s\n", "", "n-fold", "",
              "post-proc", "", "compos.", "");
  std::printf("%3s | %9s %9s | %9s %9s | %9s %9s\n", "n", "mean",
              "min@0.9", "mean", "min@0.9", "mean", "min@0.9");

  std::vector<double> final_min_ur(3, 0.0);  // per mechanism at n = 10
  for (std::size_t n = 1; n <= 10; ++n) {
    lppm::BoundedGeoIndParams params;
    params.radius_m = 500.0;
    params.epsilon = 1.0;
    params.delta = 0.01;
    params.n = n;

    const std::vector<std::unique_ptr<lppm::Mechanism>> mechanisms = [&] {
      std::vector<std::unique_ptr<lppm::Mechanism>> v;
      v.push_back(std::make_unique<lppm::NFoldGaussianMechanism>(params));
      v.push_back(
          std::make_unique<lppm::NaivePostProcessingMechanism>(params));
      v.push_back(std::make_unique<lppm::PlainCompositionMechanism>(params));
      return v;
    }();

    std::printf("%3zu", n);
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      const rng::Engine parent(700 + n * 10 + m);
      stats::MonteCarloOptions opts;
      opts.trials = trials;
      opts.keep_samples = true;
      const auto result = stats::run_monte_carlo(
          opts, [&](std::uint64_t t) {
            rng::Engine e = parent.split(t);
            const auto candidates = mechanisms[m]->obfuscate(e, {0, 0});
            return utility::utilization_rate(e, {0, 0}, candidates,
                                             kTargetingRadius, ur_samples);
          });
      const double min_ur =
          stats::lower_bound_at_confidence(result.samples, kAlpha);
      std::printf(" | %9.3f %9.3f", result.summary.mean(), min_ur);
      if (n == 10) final_min_ur[m] = min_ur;
    }
    std::printf("\n");
  }
  std::printf("\npaper @ n=10 (minimal UR): n-fold ~1.00, post-processing "
              "~0.58, composition ~0.20; composition falls with n\n");

  // ------------------- optimal geo-IND baseline at scale -----------------
  bench::print_header(
      "Optimal geo-IND baseline: exact " + std::to_string(exact_side) + "x" +
      std::to_string(exact_side) + " vs approximate " +
      std::to_string(approx_side) + "x" + std::to_string(approx_side));

  const double grid_epsilon = std::log(4.0) / 200.0;

  lppm::OptimalMechanismConfig exact_config;
  exact_config.per_side = exact_side;
  exact_config.cell_spacing_m = 250.0;
  exact_config.epsilon = grid_epsilon;
  util::Timer exact_timer;
  const lppm::OptimalGeoIndMechanism exact(exact_config);
  const double exact_seconds = exact_timer.elapsed_seconds();

  // Approximate build at the same small grid: the utility-loss ratio
  // against the exact optimum must stay within the certified dilation.
  lppm::ApproximateOptimalConfig small_config;
  small_config.per_side = exact_side;
  small_config.cell_spacing_m = 250.0;
  small_config.epsilon = grid_epsilon;
  lppm::ApproximateBuildReport small_report;
  (void)lppm::OptimalGeoIndMechanism::build_approximate(small_config,
                                                        &small_report);
  const double utility_loss_ratio =
      small_report.quality_loss / exact.expected_quality_loss();

  // The headline build: a grid the dense exact solver cannot touch.
  lppm::ApproximateOptimalConfig big_config;
  big_config.per_side = approx_side;
  big_config.cell_spacing_m = 250.0;
  big_config.epsilon = grid_epsilon;
  lppm::ApproximateBuildReport big_report;
  (void)lppm::OptimalGeoIndMechanism::build_approximate(big_config,
                                                        &big_report);
  const double approx_cells_per_second =
      static_cast<double>(big_report.cells) / big_report.construct_seconds;

  std::printf("%28s %10s %12s %10s\n", "", "cells", "E[loss] m", "build s");
  std::printf("%28s %10zu %12.1f %10.2f\n", "exact dense LP",
              exact.cell_count(), exact.expected_quality_loss(),
              exact_seconds);
  std::printf("%28s %10zu %12.1f %10.2f\n", "approx (same grid)",
              small_report.cells, small_report.quality_loss,
              small_report.construct_seconds);
  std::printf("%28s %10zu %12.1f %10.2f\n", "approx (scaled)",
              big_report.cells, big_report.quality_loss,
              big_report.construct_seconds);
  std::printf("\nutility-loss ratio %.3f <= certified dilation %.3f; "
              "scaled build: %zu windows, %zu cold / %zu warm / %zu reused, "
              "%.0f cells/s\n",
              utility_loss_ratio, small_report.dilation, big_report.windows,
              big_report.window_solves_cold, big_report.window_solves_warm,
              big_report.window_reuse_hits, approx_cells_per_second);

  auto& registry = obs::MetricsRegistry::global();
  bench::JsonMetrics metrics;
  metrics.add_string("bench", "fig7_mechanisms");
  metrics.add("trials", trials);
  metrics.add("ur_samples", ur_samples);
  metrics.add("nfold_min_ur_n10", final_min_ur[0]);
  metrics.add("postproc_min_ur_n10", final_min_ur[1]);
  metrics.add("composition_min_ur_n10", final_min_ur[2]);
  metrics.add("exact_cells", exact.cell_count());
  metrics.add("exact_quality_loss", exact.expected_quality_loss());
  metrics.add("exact_lp_seconds", exact_seconds);
  metrics.add("approx_small_quality_loss", small_report.quality_loss);
  metrics.add("utility_loss_ratio", utility_loss_ratio);
  metrics.add("dilation_bound", small_report.dilation);
  metrics.add("approx_cells", big_report.cells);
  metrics.add("approx_quality_loss", big_report.quality_loss);
  metrics.add("approx_construct_seconds", big_report.construct_seconds);
  metrics.add("approx_solve_seconds", big_report.solve_seconds);
  metrics.add("approx_cells_per_second", approx_cells_per_second);
  metrics.add("approx_windows", big_report.windows);
  metrics.add("approx_window_solves_cold", big_report.window_solves_cold);
  metrics.add("approx_window_solves_warm", big_report.window_solves_warm);
  metrics.add("approx_window_reuse_hits", big_report.window_reuse_hits);
  metrics.add("approx_boundary_epsilon", big_report.boundary_epsilon);
  metrics.add("opt_pivots", registry.counter_value("opt.pivots"));
  metrics.add("opt_phase1_iterations",
              registry.counter_value("opt.phase1_iterations"));
  metrics.add("opt_phase2_iterations",
              registry.counter_value("opt.phase2_iterations"));
  bench::add_latency_percentiles(metrics, "opt_solve_us",
                                 registry.histogram("opt.solve_us"));
  bench::add_latency_percentiles(metrics, "opt_construct_us",
                                 registry.histogram("opt.construct_us"));
  bench::emit_json("BENCH_fig7_mechanisms.json", metrics);
  return 0;
}
