// Reproduces paper Fig. 7: utilization-rate comparison between the n-fold
// Gaussian mechanism and the two baselines (naive post-processing, plain
// DP composition) for n in [1, 10], eps = 1, r = 500 m, R = 5 km.
//
// The paper's metric (2) is the MINIMAL utilization rate: the lower bound
// v with Pr(UR >= v) = alpha = 0.9 (Eq. 24). Against that metric the paper
// reports, at n = 10: ~100% for the n-fold mechanism, ~58% for naive
// post-processing, and ~20% for plain composition -- and composition
// DECREASES as n grows. We print both the mean UR and the minimal UR; the
// minimal column is the paper comparison.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "lppm/baselines.hpp"
#include "lppm/gaussian.hpp"
#include "stats/monte_carlo.hpp"
#include "stats/quantiles.hpp"
#include "utility/metrics.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  // The paper runs 100,000 trials per point; each trial here also runs a
  // coverage estimate, so the default is trimmed for single-core wall
  // clock. Raise with --trials to match the paper exactly.
  const std::uint64_t trials = bench::flag_or(argc, argv, "trials", 5000);
  const std::uint64_t ur_samples =
      bench::flag_or(argc, argv, "ur-samples", 256);
  constexpr double kTargetingRadius = 5000.0;
  constexpr double kAlpha = 0.9;

  bench::print_header(
      "Figure 7 -- utilization rate by mechanism (eps=1, r=500m, R=5km, " +
      std::to_string(trials) + " trials/point)");

  std::printf("%3s | %9s %9s | %9s %9s | %9s %9s\n", "", "n-fold", "",
              "post-proc", "", "compos.", "");
  std::printf("%3s | %9s %9s | %9s %9s | %9s %9s\n", "n", "mean",
              "min@0.9", "mean", "min@0.9", "mean", "min@0.9");

  for (std::size_t n = 1; n <= 10; ++n) {
    lppm::BoundedGeoIndParams params;
    params.radius_m = 500.0;
    params.epsilon = 1.0;
    params.delta = 0.01;
    params.n = n;

    const std::vector<std::unique_ptr<lppm::Mechanism>> mechanisms = [&] {
      std::vector<std::unique_ptr<lppm::Mechanism>> v;
      v.push_back(std::make_unique<lppm::NFoldGaussianMechanism>(params));
      v.push_back(
          std::make_unique<lppm::NaivePostProcessingMechanism>(params));
      v.push_back(std::make_unique<lppm::PlainCompositionMechanism>(params));
      return v;
    }();

    std::printf("%3zu", n);
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      const rng::Engine parent(700 + n * 10 + m);
      stats::MonteCarloOptions opts;
      opts.trials = trials;
      opts.keep_samples = true;
      const auto result = stats::run_monte_carlo(
          opts, [&](std::uint64_t t) {
            rng::Engine e = parent.split(t);
            const auto candidates = mechanisms[m]->obfuscate(e, {0, 0});
            return utility::utilization_rate(e, {0, 0}, candidates,
                                             kTargetingRadius, ur_samples);
          });
      std::printf(" | %9.3f %9.3f", result.summary.mean(),
                  stats::lower_bound_at_confidence(result.samples, kAlpha));
    }
    std::printf("\n");
  }
  std::printf("\npaper @ n=10 (minimal UR): n-fold ~1.00, post-processing "
              "~0.58, composition ~0.20; composition falls with n\n");
  return 0;
}
