// Reproduces paper Fig. 9: advertising efficacy vs. the number n of
// obfuscated outputs, for r in {500, 600, 700, 800} m at eps = 1, with the
// posterior output-selection module choosing which candidate serves each
// request.
//
// Paper shape to reproduce: efficacy does NOT significantly decrease as n
// grows -- the output-selection module keeps picking useful candidates
// even though the per-output noise magnitude grows with sqrt(n).
//
// The 40 (n, r) grid points are independent Monte-Carlo sweeps; they run
// in parallel on the shared pool. Each point keeps its own seeded parent
// engine (900 + n*100 + r) so the table is identical at any thread count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "par/parallel.hpp"
#include "stats/monte_carlo.hpp"
#include "util/timer.hpp"
#include "utility/metrics.hpp"

namespace {

struct GridPoint {
  std::size_t n = 0;
  double radius_m = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t trials = bench::flag_or(argc, argv, "trials", 20000);
  const std::size_t threads = par::hardware_threads();
  constexpr double kTargetingRadius = 5000.0;
  const std::vector<double> radii{500.0, 600.0, 700.0, 800.0};

  bench::print_header(
      "Figure 9 -- advertising efficacy with posterior output selection "
      "(eps=1, " + std::to_string(trials) + " trials/point, " +
      std::to_string(threads) + " threads)");

  std::vector<GridPoint> points;
  points.reserve(10 * radii.size());
  for (std::size_t n = 1; n <= 10; ++n) {
    for (const double r : radii) points.push_back({n, r});
  }

  const util::Timer timer;
  const std::vector<double> efficacy = par::parallel_map(
      points, [&](const GridPoint& p, std::size_t) {
        lppm::BoundedGeoIndParams params;
        params.radius_m = p.radius_m;
        params.epsilon = 1.0;
        params.delta = 0.01;
        params.n = p.n;
        const lppm::NFoldGaussianMechanism mech(params);

        const rng::Engine parent(900 + p.n * 100 +
                                 static_cast<std::uint64_t>(p.radius_m));
        stats::MonteCarloOptions opts;
        opts.trials = trials;
        const auto result = stats::run_monte_carlo(
            opts, [&](std::uint64_t t) {
              rng::Engine e = parent.split(t);
              const auto candidates = mech.obfuscate(e, {0, 0});
              // Exact efficacy of the selection strategy: the probability-
              // weighted lens fraction over the candidate the module would
              // pick (Definition 5 with Algorithm 4's distribution).
              const auto probs = core::selection_probabilities(
                  candidates, mech.posterior_sigma());
              return utility::efficacy_weighted({0, 0}, candidates, probs,
                                                kTargetingRadius);
            });
        return result.summary.mean();
      });
  const double seconds = timer.elapsed_seconds();

  bench::JsonMetrics record;
  record.add_string("bench", "fig9_efficacy");
  record.add("threads", static_cast<std::uint64_t>(threads));
  record.add("trials", trials);
  record.add("wall_seconds", seconds);
  record.add("points_per_second",
             seconds > 0.0
                 ? static_cast<double>(points.size()) / seconds
                 : 0.0);

  std::printf("%3s %10s %10s %10s %10s\n", "n", "r=500m", "r=600m", "r=700m",
              "r=800m");
  for (std::size_t row = 0; row < 10; ++row) {
    std::printf("%3zu", row + 1);
    for (std::size_t col = 0; col < radii.size(); ++col) {
      const double value = efficacy[row * radii.size() + col];
      std::printf(" %10.3f", value);
      if (row + 1 == 1 || row + 1 == 10) {
        std::string key = "n";
        key += std::to_string(row + 1);
        key += "_r";
        key += std::to_string(static_cast<int>(radii[col]));
        record.add(key, value);
      }
    }
    std::printf("\n");
  }

  bench::emit_json("BENCH_fig9_efficacy.json", record);
  std::printf("\npaper shape: near-flat in n for every r (no significant "
              "efficacy loss from generating more outputs)\n");
  return 0;
}
