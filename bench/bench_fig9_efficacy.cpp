// Reproduces paper Fig. 9: advertising efficacy vs. the number n of
// obfuscated outputs, for r in {500, 600, 700, 800} m at eps = 1, with the
// posterior output-selection module choosing which candidate serves each
// request.
//
// Paper shape to reproduce: efficacy does NOT significantly decrease as n
// grows -- the output-selection module keeps picking useful candidates
// even though the per-output noise magnitude grows with sqrt(n).
#include <cstdio>

#include "bench_common.hpp"
#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "stats/monte_carlo.hpp"
#include "utility/metrics.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t trials = bench::flag_or(argc, argv, "trials", 20000);
  constexpr double kTargetingRadius = 5000.0;

  bench::print_header(
      "Figure 9 -- advertising efficacy with posterior output selection "
      "(eps=1, " + std::to_string(trials) + " trials/point)");

  std::printf("%3s %10s %10s %10s %10s\n", "n", "r=500m", "r=600m", "r=700m",
              "r=800m");
  for (std::size_t n = 1; n <= 10; ++n) {
    std::printf("%3zu", n);
    for (const double r : {500.0, 600.0, 700.0, 800.0}) {
      lppm::BoundedGeoIndParams params;
      params.radius_m = r;
      params.epsilon = 1.0;
      params.delta = 0.01;
      params.n = n;
      const lppm::NFoldGaussianMechanism mech(params);

      const rng::Engine parent(900 + n * 100 +
                               static_cast<std::uint64_t>(r));
      stats::MonteCarloOptions opts;
      opts.trials = trials;
      const auto result = stats::run_monte_carlo(
          opts, [&](std::uint64_t t) {
            rng::Engine e = parent.split(t);
            const auto candidates = mech.obfuscate(e, {0, 0});
            // Exact efficacy of the selection strategy: the probability-
            // weighted lens fraction over the candidate the module would
            // pick (Definition 5 with Algorithm 4's distribution).
            const auto probs =
                core::selection_probabilities(candidates, mech.posterior_sigma());
            return utility::efficacy_weighted({0, 0}, candidates, probs,
                                              kTargetingRadius);
          });
      std::printf(" %10.3f", result.summary.mean());
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: near-flat in n for every r (no significant "
              "efficacy loss from generating more outputs)\n");
  return 0;
}
