// Reproduces paper Fig. 6: longitudinal-attack success rates against
//   (a) one-time geo-IND (planar Laplace, r = 200 m, l in {ln2, ln4, ln6})
//   (b) the permanent 10-fold Gaussian defence (r = 500 m, eps in {1, 1.5},
//       delta = 0.01) with posterior output selection.
//
// Paper shape to reproduce:
//   one-time geo-IND : top-1 within 200 m recovered for 75% (l = ln2) to
//                      >90% (l = ln4, ln6) of users; top-2 > 50%.
//   defence          : < 1% of top-1/top-2 within 200 m; about 6.8% top-1
//                      and 5% top-2 within 500 m.
//
// Scale note: the paper attacks 37,262 users with up to 11,435 check-ins.
// Users are attacked in parallel through attack::evaluate_population (set
// PRIVLOCAD_THREADS to pin the lane count); per-user observation streams
// seed-split from the same parent, so the success rates are identical for
// any thread count. The default is 2,000 users at up to 2,000 check-ins;
// raise with --users / --max-check-ins.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "lppm/planar_laplace.hpp"
#include "par/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace privlocad;

/// Observation stream under one-time geo-IND: every check-in obfuscated
/// independently (the paper's Section III setup).
std::vector<geo::Point> observe_one_time(
    rng::Engine& engine, const trace::SyntheticUser& user,
    const lppm::PlanarLaplaceMechanism& mech) {
  std::vector<geo::Point> observed;
  observed.reserve(user.trace.check_ins.size());
  for (const trace::CheckIn& c : user.trace.check_ins) {
    observed.push_back(mech.obfuscate_one(engine, c.position));
  }
  return observed;
}

/// Observation stream under the Edge-PrivLocAd defence: check-ins at a top
/// location replay one of that location's permanent candidates (posterior
/// selection); nomadic check-ins fall back to one-time geo-IND, exactly as
/// the edge device does (the integration tests pin the system path to this
/// behaviour).
std::vector<geo::Point> observe_defended(
    rng::Engine& engine, const trace::SyntheticUser& user,
    const lppm::NFoldGaussianMechanism& mech,
    const lppm::PlanarLaplaceMechanism& nomadic_mech) {
  std::vector<std::vector<geo::Point>> candidate_sets;
  candidate_sets.reserve(user.truth.top_locations.size());
  for (const geo::Point& top : user.truth.top_locations) {
    candidate_sets.push_back(mech.obfuscate(engine, top));
  }

  std::vector<geo::Point> observed;
  observed.reserve(user.trace.check_ins.size());
  for (const trace::CheckIn& c : user.trace.check_ins) {
    bool reported = false;
    for (std::size_t k = 0; k < candidate_sets.size(); ++k) {
      if (geo::distance(c.position, user.truth.top_locations[k]) <= 100.0) {
        const std::size_t chosen = core::select_candidate(
            engine, candidate_sets[k], mech.posterior_sigma());
        observed.push_back(candidate_sets[k][chosen]);
        reported = true;
        break;
      }
    }
    if (!reported) {
      observed.push_back(nomadic_mech.obfuscate_one(engine, c.position));
    }
  }
  return observed;
}

void run_config(const char* label, const std::string& json_key,
                const std::vector<trace::SyntheticUser>& population,
                const lppm::Mechanism& attack_scale_mech,
                const attack::ObservationFn& observe,
                bench::JsonMetrics& record) {
  attack::PopulationAttackProtocol protocol;
  protocol.deobfuscation = bench::attack_config_for(attack_scale_mech, 2);

  const util::Timer timer;
  const attack::SuccessRateAccumulator rates =
      attack::evaluate_population(population, protocol, observe);
  const double seconds = timer.elapsed_seconds();

  std::printf("%-28s %12.1f%% %12.1f%% %12.1f%% %12.1f%%   %8.2fs\n", label,
              rates.rate(0, 0) * 100.0, rates.rate(0, 1) * 100.0,
              rates.rate(1, 0) * 100.0, rates.rate(1, 1) * 100.0, seconds);

  record.add(json_key + "_top1_200m", rates.rate(0, 0));
  record.add(json_key + "_top1_500m", rates.rate(0, 1));
  record.add(json_key + "_top2_200m", rates.rate(1, 0));
  record.add(json_key + "_top2_500m", rates.rate(1, 1));
  record.add(json_key + "_seconds", seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t users = bench::flag_or(argc, argv, "users", 2000);
  const std::uint64_t max_check_ins =
      bench::flag_or(argc, argv, "max-check-ins", 2000);
  const std::size_t threads = par::hardware_threads();

  bench::print_header("Figure 6 -- longitudinal attack success rates (" +
                      std::to_string(users) + " users, " +
                      std::to_string(threads) + " threads)");
  const auto population = bench::bench_population(66, users, max_check_ins);

  bench::JsonMetrics record;
  record.add_string("bench", "fig6_attack");
  record.add("threads", static_cast<std::uint64_t>(threads));
  record.add("users", static_cast<std::uint64_t>(users));
  record.add("max_check_ins", max_check_ins);

  std::printf("%-28s %13s %13s %13s %13s %10s\n", "mechanism", "top1@200m",
              "top1@500m", "top2@200m", "top2@500m", "wall");

  const util::Timer total_timer;
  for (const double level : {std::log(2.0), std::log(4.0), std::log(6.0)}) {
    const lppm::PlanarLaplaceMechanism mech({level, 200.0});
    char label[64];
    std::snprintf(label, sizeof(label), "one-time laplace l=ln%.0f",
                  std::exp(level));
    char key[64];
    std::snprintf(key, sizeof(key), "laplace_ln%.0f", std::exp(level));
    run_config(label, key, population, mech,
               [&mech](rng::Engine& e, const trace::SyntheticUser& u) {
                 return observe_one_time(e, u, mech);
               },
               record);
  }

  for (const double eps : {1.0, 1.5}) {
    lppm::BoundedGeoIndParams params;
    params.radius_m = 500.0;
    params.epsilon = eps;
    params.delta = 0.01;
    params.n = 10;
    const lppm::NFoldGaussianMechanism mech(params);
    const lppm::PlanarLaplaceMechanism nomadic({std::log(4.0), 200.0});
    char label[64];
    std::snprintf(label, sizeof(label), "10-fold gaussian eps=%.1f", eps);
    char key[64];
    std::snprintf(key, sizeof(key), "defence_eps%.0f", eps * 10.0);
    run_config(label, key, population, mech,
               [&mech, &nomadic](rng::Engine& e,
                                 const trace::SyntheticUser& u) {
                 return observe_defended(e, u, mech, nomadic);
               },
               record);
  }
  const double total_seconds = total_timer.elapsed_seconds();

  record.add("wall_seconds", total_seconds);
  record.add("users_per_second",
             total_seconds > 0.0
                 ? static_cast<double>(users) * 5.0 / total_seconds
                 : 0.0);
  // Per-user Alg. 1 wall time, recorded by evaluate_population into the
  // process-global registry across every configuration above.
  bench::add_latency_percentiles(
      record, "deobfuscation_latency_us",
      obs::MetricsRegistry::global().histogram(
          "attack.deobfuscation_latency_us"));
  bench::emit_json("BENCH_fig6_attack.json", record);

  std::printf("\npaper: laplace rows 75-93%% top1@200m, >50%% top2@200m;\n"
              "       defence rows <1%% @200m, ~6.8%%/5%% @500m\n");
  return 0;
}
