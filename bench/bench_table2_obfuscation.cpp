// Reproduces paper Table II: obfuscation processing time on the edge
// device as the user count scales 2,000 -> 32,000.
//
// Timed work per user, as in the paper's prototype: build the location
// profile from one 3-month window of check-ins (connectivity clustering),
// compute the eta-frequent top-location set, and generate the permanent
// 10-fold Gaussian candidates for every top location.
//
// Paper numbers (Raspberry Pi 3): 340 s @ 2k users up to 4,014 s @ 32k --
// i.e. LINEAR scaling. Absolute numbers here differ by the hardware ratio;
// the linear shape is the reproduction target.
#include <benchmark/benchmark.h>

#include <vector>

#include "attack/profile.hpp"
#include "core/eta_frequent.hpp"
#include "lppm/gaussian.hpp"
#include "rng/engine.hpp"
#include "rng/samplers.hpp"

namespace {

using namespace privlocad;

/// One user's 3-month window: ~250 check-ins around two anchors.
std::vector<geo::Point> window_for_user(std::uint64_t user_id) {
  rng::Engine e(rng::Engine(4242).split(user_id));
  const geo::Point home{e.uniform_in(-40000, 40000),
                        e.uniform_in(-40000, 40000)};
  const geo::Point work{e.uniform_in(-40000, 40000),
                        e.uniform_in(-40000, 40000)};
  std::vector<geo::Point> window;
  window.reserve(250);
  for (int i = 0; i < 170; ++i) {
    window.push_back(home + rng::gaussian_noise(e, 15.0));
  }
  for (int i = 0; i < 60; ++i) {
    window.push_back(work + rng::gaussian_noise(e, 15.0));
  }
  for (int i = 0; i < 20; ++i) {
    window.push_back({e.uniform_in(-40000, 40000),
                      e.uniform_in(-40000, 40000)});
  }
  return window;
}

void BM_ObfuscationProcessing(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));

  // Pre-generate raw windows outside the timed region.
  std::vector<std::vector<geo::Point>> windows;
  windows.reserve(users);
  for (std::size_t u = 0; u < users; ++u) {
    windows.push_back(window_for_user(u));
  }

  lppm::BoundedGeoIndParams params;
  params.radius_m = 500.0;
  params.epsilon = 1.0;
  params.delta = 0.01;
  params.n = 10;
  const lppm::NFoldGaussianMechanism mech(params);

  for (auto _ : state) {
    rng::Engine e(7);
    std::size_t candidates_generated = 0;
    for (const auto& window : windows) {
      const attack::LocationProfile profile = attack::build_profile(window);
      const auto top = core::eta_frequent_set_fraction(profile, 0.8);
      for (const auto& entry : top) {
        const auto candidates = mech.obfuscate(e, entry.location);
        candidates_generated += candidates.size();
      }
    }
    benchmark::DoNotOptimize(candidates_generated);
  }
  state.counters["users"] = static_cast<double>(users);
  state.counters["sec_per_1k_users"] = benchmark::Counter(
      static_cast<double>(users) / 1000.0,
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

BENCHMARK(BM_ObfuscationProcessing)
    ->Unit(benchmark::kSecond)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000)
    ->Arg(32000);

}  // namespace

BENCHMARK_MAIN();
