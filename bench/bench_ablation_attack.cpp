// Ablation: paper Algorithm 1 (connectivity clustering + trimming) vs. the
// naive grid-histogram attacker, on one-time geo-IND streams.
//
// Two claims are checked: (a) even a naive attacker breaks one-time
// geo-IND given enough observations -- the threat is not an artifact of a
// clever algorithm; (b) Algorithm 1 is more accurate, justifying its use
// as the paper's reference attacker.
//
// Users run in parallel on the shared pool; every user's stream derives
// from Engine(1900).split(u * 13 + observations) exactly as the serial
// version did, so the error statistics match at any thread count.
#include <cmath>
#include <cstdio>
#include <numeric>

#include "attack/grid_attack.hpp"
#include "bench_common.hpp"
#include "lppm/planar_laplace.hpp"
#include "par/parallel.hpp"
#include "stats/running_stats.hpp"
#include "util/timer.hpp"

namespace {

/// Per-user inference errors for the three attacker variants.
struct UserErrors {
  double alg1 = 0.0;
  double alg1_median = 0.0;
  double grid = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t users = bench::flag_or(argc, argv, "users", 300);
  const std::size_t threads = par::hardware_threads();

  bench::print_header(
      "Ablation -- Algorithm 1 vs grid-histogram attacker (laplace l=ln4, "
      "r=200m, " + std::to_string(threads) + " threads)");

  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});

  bench::JsonMetrics record;
  record.add_string("bench", "ablation_attack");
  record.add("threads", static_cast<std::uint64_t>(threads));
  record.add("users", users);

  const util::Timer total_timer;
  std::printf("%12s %14s %16s %14s %16s\n", "check-ins", "alg1 err (m)",
              "alg1-median (m)", "grid err (m)", "alg1 succ@200m");
  for (const std::size_t observations : {50u, 150u, 500u, 1500u}) {
    std::vector<std::uint64_t> user_ids(users);
    std::iota(user_ids.begin(), user_ids.end(), std::uint64_t{0});

    const std::vector<UserErrors> errors = par::parallel_map(
        user_ids, [&](std::uint64_t u, std::size_t) {
          rng::Engine e(rng::Engine(1900).split(u * 13 + observations));
          const geo::Point home{e.uniform_in(-40000, 40000),
                                e.uniform_in(-40000, 40000)};
          std::vector<geo::Point> observed;
          observed.reserve(observations);
          for (std::size_t i = 0; i < observations; ++i) {
            observed.push_back(mech.obfuscate_one(e, home));
          }

          const auto alg1 = attack::deobfuscate_top_locations(
              observed, bench::attack_config_for(mech, 1));
          attack::DeobfuscationConfig median_cfg =
              bench::attack_config_for(mech, 1);
          median_cfg.estimator = attack::LocationEstimator::kGeometricMedian;
          const auto alg1_median =
              attack::deobfuscate_top_locations(observed, median_cfg);
          attack::GridAttackConfig grid_config;
          grid_config.cell_size_m = mech.tail_radius(0.05) / 2.0;
          const auto grid = attack::grid_attack(observed, grid_config);

          UserErrors result;
          result.alg1 = geo::distance(alg1.at(0).location, home);
          result.alg1_median =
              geo::distance(alg1_median.at(0).location, home);
          result.grid = geo::distance(grid.at(0).location, home);
          return result;
        });

    stats::RunningStats alg1_err, median_err, grid_err;
    std::size_t alg1_success = 0;
    for (const UserErrors& e : errors) {
      alg1_err.add(e.alg1);
      median_err.add(e.alg1_median);
      grid_err.add(e.grid);
      if (e.alg1 <= 200.0) ++alg1_success;
    }

    const double success_rate =
        static_cast<double>(alg1_success) / static_cast<double>(users);
    std::printf("%12zu %14.1f %16.1f %14.1f %15.1f%%\n", observations,
                alg1_err.mean(), median_err.mean(), grid_err.mean(),
                100.0 * success_rate);

    const std::string key = "obs" + std::to_string(observations);
    record.add(key + "_alg1_err_m", alg1_err.mean());
    record.add(key + "_grid_err_m", grid_err.mean());
    record.add(key + "_alg1_success_200m", success_rate);
  }

  record.add("wall_seconds", total_timer.elapsed_seconds());
  bench::emit_json("BENCH_ablation_attack.json", record);

  std::printf("\nexpected: every attacker succeeds (the threat is generic); "
              "Algorithm 1 beats the grid attacker, and the geometric-median "
              "estimator (the Laplace MLE) edges out the centroid\n");
  return 0;
}
