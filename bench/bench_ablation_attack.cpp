// Ablation: paper Algorithm 1 (connectivity clustering + trimming) vs. the
// naive grid-histogram attacker, on one-time geo-IND streams.
//
// Two claims are checked: (a) even a naive attacker breaks one-time
// geo-IND given enough observations -- the threat is not an artifact of a
// clever algorithm; (b) Algorithm 1 is more accurate, justifying its use
// as the paper's reference attacker.
#include <cmath>
#include <cstdio>

#include "attack/grid_attack.hpp"
#include "bench_common.hpp"
#include "lppm/planar_laplace.hpp"
#include "stats/running_stats.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::uint64_t users = bench::flag_or(argc, argv, "users", 300);

  bench::print_header(
      "Ablation -- Algorithm 1 vs grid-histogram attacker (laplace l=ln4, "
      "r=200m)");

  const lppm::PlanarLaplaceMechanism mech({std::log(4.0), 200.0});

  std::printf("%12s %14s %16s %14s %16s\n", "check-ins", "alg1 err (m)",
              "alg1-median (m)", "grid err (m)", "alg1 succ@200m");
  for (const std::size_t observations : {50u, 150u, 500u, 1500u}) {
    stats::RunningStats alg1_err, median_err, grid_err;
    std::size_t alg1_success = 0;

    for (std::uint64_t u = 0; u < users; ++u) {
      rng::Engine e(rng::Engine(1900).split(u * 13 + observations));
      const geo::Point home{e.uniform_in(-40000, 40000),
                            e.uniform_in(-40000, 40000)};
      std::vector<geo::Point> observed;
      observed.reserve(observations);
      for (std::size_t i = 0; i < observations; ++i) {
        observed.push_back(mech.obfuscate_one(e, home));
      }

      const auto alg1 = attack::deobfuscate_top_locations(
          observed, bench::attack_config_for(mech, 1));
      attack::DeobfuscationConfig median_cfg =
          bench::attack_config_for(mech, 1);
      median_cfg.estimator = attack::LocationEstimator::kGeometricMedian;
      const auto alg1_median =
          attack::deobfuscate_top_locations(observed, median_cfg);
      attack::GridAttackConfig grid_config;
      grid_config.cell_size_m = mech.tail_radius(0.05) / 2.0;
      const auto grid = attack::grid_attack(observed, grid_config);

      const double e1 = geo::distance(alg1.at(0).location, home);
      alg1_err.add(e1);
      median_err.add(geo::distance(alg1_median.at(0).location, home));
      grid_err.add(geo::distance(grid.at(0).location, home));
      if (e1 <= 200.0) ++alg1_success;
    }
    std::printf("%12zu %14.1f %16.1f %14.1f %15.1f%%\n", observations,
                alg1_err.mean(), median_err.mean(), grid_err.mean(),
                100.0 * static_cast<double>(alg1_success) /
                    static_cast<double>(users));
  }
  std::printf("\nexpected: every attacker succeeds (the threat is generic); "
              "Algorithm 1 beats the grid attacker, and the geometric-median "
              "estimator (the Laplace MLE) edges out the centroid\n");
  return 0;
}
