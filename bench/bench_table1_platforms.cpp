// Reproduces paper Table I: the radius-targeting ranges of the four LBA
// platforms the paper surveys. These presets drive the campaign generator
// of the ad-network simulator, so printing them doubles as a check that
// the simulator's configuration matches the paper.
#include <cstdio>

#include "adnet/advertiser.hpp"
#include "bench_common.hpp"

int main() {
  using namespace privlocad;

  bench::print_header("Table I -- targeting range on top players' LBA platforms");
  std::printf("%-12s %16s %16s\n", "Company", "Minimal Radius", "Maximal Radius");
  for (const adnet::PlatformPreset& p : adnet::table1_presets()) {
    std::printf("%-12s %13.1f km %13.1f km\n", p.platform.c_str(),
                p.min_radius_m / 1000.0, p.max_radius_m / 1000.0);
  }
  std::printf("\npaper: Google 5-65 km, Microsoft 1-800 km,"
              " Facebook 1.6-80.5 km (1-50 mi), Tencent 0.5-25 km\n");
  return 0;
}
