// LBA campaign simulation: the workload the paper's introduction
// motivates. A city of synthetic users lives through three months of ad
// requests behind an Edge-PrivLocAd deployment; advertisers run
// radius-targeting campaigns on a Tencent-style platform. The example
// reports the advertiser-facing picture: reach, relevance (efficacy), and
// how much irrelevant traffic the edge filter absorbed.
//
// Build & run:  ./build/examples/lba_campaign [users]
#include <cstdio>
#include <cstdlib>

#include "adnet/advertiser.hpp"
#include "core/system.hpp"
#include "trace/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const std::size_t user_count =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  // --- deploy the system --------------------------------------------
  core::EdgeConfig config;
  config.top_params.radius_m = 500.0;
  config.top_params.epsilon = 1.0;
  config.top_params.delta = 0.01;
  config.top_params.n = 10;
  config.targeting_radius_m = 5000.0;

  rng::Engine engine(99);
  core::EdgePrivLocAd system(
      config.with_seed(17),
      adnet::generate_campaigns(engine, adnet::table1_presets()[3], 1000,
                                40000.0));

  // --- populate the city ---------------------------------------------
  trace::SyntheticConfig synth;
  synth.min_check_ins = 200;
  synth.max_check_ins = 600;
  const rng::Engine parent(7);
  const auto users = trace::generate_population(parent, synth, user_count);

  // First year becomes on-boarding history; the rest is served live.
  const trace::Timestamp split =
      trace::kStudyStart + 365 * trace::kSecondsPerDay;

  std::size_t live_requests = 0, top_reports = 0;
  std::size_t matched_total = 0, delivered_total = 0;
  for (const trace::SyntheticUser& user : users) {
    system.edge().import_history(
        user.trace.user_id,
        trace::slice_by_time(user.trace, trace::kStudyStart, split));
    for (const trace::CheckIn& c : user.trace.check_ins) {
      if (c.time < split) continue;
      const core::ServedAds served =
          system.on_lba_request(user.trace.user_id, c.position, c.time);
      ++live_requests;
      if (served.reported.kind == core::ReportKind::kTopLocation) {
        ++top_reports;
      }
      matched_total += served.matched_count;
      delivered_total += served.delivered.size();
    }
  }

  // --- the advertiser-facing picture ----------------------------------
  std::printf("campaign simulation over %zu users, %zu live requests\n\n",
              users.size(), live_requests);
  std::printf("requests served from permanent top-location candidates: %5.1f%%\n",
              100.0 * static_cast<double>(top_reports) /
                  static_cast<double>(live_requests));
  std::printf("ads matched by the network (per request)             : %5.2f\n",
              static_cast<double>(matched_total) /
                  static_cast<double>(live_requests));
  std::printf("ads delivered after edge relevance filtering          : %5.2f\n",
              static_cast<double>(delivered_total) /
                  static_cast<double>(live_requests));
  std::printf("bandwidth saved by the edge filter                    : %5.1f%%\n",
              matched_total == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(delivered_total) /
                                       static_cast<double>(matched_total)));
  std::printf("\nthe ad network observed %zu location reports, none of them "
              "the users' raw locations.\n",
              system.network().bid_log().total_requests());
  return 0;
}
