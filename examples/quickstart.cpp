// Quickstart: the Edge-PrivLocAd public API in ~60 lines.
//
//   1. configure privacy parameters (r, eps, delta, n);
//   2. stand up an edge device and an ad network with radius-targeting
//      campaigns;
//   3. serve LBA requests -- the edge obfuscates the location, the network
//      matches ads, the edge filters them back down to the user's true
//      area of interest.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "adnet/advertiser.hpp"
#include "core/system.hpp"
#include "rng/engine.hpp"

int main() {
  using namespace privlocad;

  // --- 1. Privacy configuration -------------------------------------
  core::EdgeConfig config;
  config.top_params.radius_m = 500.0;  // indistinguishable within 500 m
  config.top_params.epsilon = 1.0;     // privacy budget
  config.top_params.delta = 0.01;      // failure probability
  config.top_params.n = 10;            // permanent candidates per top spot
  config.targeting_radius_m = 5000.0;  // ads within 5 km are relevant

  // --- 2. System setup ----------------------------------------------
  rng::Engine engine(2024);
  std::vector<adnet::Advertiser> campaigns = adnet::generate_campaigns(
      engine, adnet::table1_presets()[3], /*count=*/3000,
      /*area_half_extent_m=*/40000.0);
  core::EdgePrivLocAd system(config.with_seed(7), std::move(campaigns));

  // --- 3. Build a user's profile from history ------------------------
  const geo::Point home{1200.0, -800.0};
  trace::UserTrace history;
  history.user_id = 1;
  for (int day = 0; day < 30; ++day) {
    history.check_ins.push_back(
        {home, trace::kStudyStart + day * trace::kSecondsPerDay});
  }
  system.edge().import_history(1, history);

  // --- 4. Serve LBA requests ----------------------------------------
  std::printf("serving 5 LBA requests from the user's home...\n\n");
  for (int i = 0; i < 5; ++i) {
    const core::ServedAds served = system.on_lba_request(
        1, home, trace::kStudyStart + 40 * trace::kSecondsPerDay + i * 3600);
    std::printf(
        "request %d: reported (%8.1f, %8.1f) [%s]  matched %2zu ads, "
        "delivered %2zu relevant\n",
        i + 1, served.reported.location.x, served.reported.location.y,
        served.reported.kind == core::ReportKind::kTopLocation ? "top"
                                                               : "nomadic",
        served.matched_count, served.delivered.size());
  }

  std::printf(
      "\nnote: reported locations repeat from a PERMANENT candidate set --\n"
      "a longitudinal observer never learns more than these %zu points.\n",
      config.top_params.n);
  std::printf("true home (%0.1f, %0.1f) never left the trusted edge.\n",
              home.x, home.y);
  return 0;
}
