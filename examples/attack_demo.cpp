// Attack demo: plays the longitudinal location exposure attack (paper
// Section III) against two worlds --
//   (a) a user protected by one-time geo-IND (planar Laplace per report);
//   (b) the same user behind Edge-PrivLocAd's permanent n-fold Gaussian.
// and prints how close the attacker gets to the user's real home in each.
//
// Build & run:  ./build/examples/attack_demo [observations]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "attack/deobfuscation.hpp"
#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "lppm/planar_laplace.hpp"
#include "rng/engine.hpp"

int main(int argc, char** argv) {
  using namespace privlocad;

  const int observations = argc > 1 ? std::atoi(argv[1]) : 1000;
  const geo::Point home{3200.0, -1500.0};
  std::printf("victim home: (%.0f, %.0f); attacker observes %d ad requests\n\n",
              home.x, home.y, observations);

  // ---------------- world (a): one-time geo-IND ----------------------
  const lppm::PlanarLaplaceMechanism laplace({std::log(4.0), 200.0});
  rng::Engine engine_a(1);
  std::vector<geo::Point> observed_a;
  for (int i = 0; i < observations; ++i) {
    observed_a.push_back(laplace.obfuscate_one(engine_a, home));
  }

  attack::DeobfuscationConfig cfg_a;
  cfg_a.trim_radius_m = laplace.tail_radius(0.05);
  cfg_a.connectivity_threshold_m = cfg_a.trim_radius_m / 4.0;
  const auto inferred_a = attack::deobfuscate_top_locations(observed_a, cfg_a);

  std::printf("[one-time geo-IND, l=ln4 r=200m]\n");
  std::printf("  inferred top-1: (%.0f, %.0f)\n", inferred_a[0].location.x,
              inferred_a[0].location.y);
  std::printf("  error: %.1f m  <-- the attack works\n\n",
              geo::distance(inferred_a[0].location, home));

  // ---------------- world (b): Edge-PrivLocAd ------------------------
  lppm::BoundedGeoIndParams params;
  params.radius_m = 500.0;
  params.epsilon = 1.0;
  params.delta = 0.01;
  params.n = 10;
  const lppm::NFoldGaussianMechanism nfold(params);

  rng::Engine engine_b(2);
  const std::vector<geo::Point> candidates = nfold.obfuscate(engine_b, home);
  std::vector<geo::Point> observed_b;
  for (int i = 0; i < observations; ++i) {
    const std::size_t pick = core::select_candidate(
        engine_b, candidates, nfold.posterior_sigma());
    observed_b.push_back(candidates[pick]);
  }

  attack::DeobfuscationConfig cfg_b;
  cfg_b.trim_radius_m = nfold.tail_radius(0.05);
  cfg_b.connectivity_threshold_m = cfg_b.trim_radius_m / 4.0;
  const auto inferred_b = attack::deobfuscate_top_locations(observed_b, cfg_b);

  std::printf("[Edge-PrivLocAd, 10-fold gaussian eps=1 r=500m]\n");
  std::printf("  inferred top-1: (%.0f, %.0f)\n", inferred_b[0].location.x,
              inferred_b[0].location.y);
  std::printf("  error: %.1f m  <-- permanent noise blunts the attack\n\n",
              geo::distance(inferred_b[0].location, home));

  std::printf("key insight: in world (a) every request leaks fresh noise that\n"
              "averages away (error ~ sigma/sqrt(N)); in world (b) the\n"
              "attacker only ever sees the same %zu frozen points, so more\n"
              "observations add nothing.\n",
              candidates.size());
  return 0;
}
