// Privacy tuning: an operator-facing walkthrough of the privacy-utility
// trade-off surface. For a grid of (eps, r, n) settings it prints the
// calibrated noise, the expected utilization rate, the expected efficacy
// under posterior selection, and the de-obfuscation error a longitudinal
// attacker would achieve -- the numbers a deployment needs to pick its
// parameters.
//
// Build & run:  ./build/examples/privacy_tuning
#include <cstdio>

#include "attack/deobfuscation.hpp"
#include "core/output_selection.hpp"
#include "lppm/gaussian.hpp"
#include "rng/engine.hpp"
#include "stats/running_stats.hpp"
#include "utility/metrics.hpp"

namespace {

using namespace privlocad;

struct Setting {
  double eps;
  double r;
  std::size_t n;
};

void evaluate(const Setting& s) {
  lppm::BoundedGeoIndParams params;
  params.radius_m = s.r;
  params.epsilon = s.eps;
  params.delta = 0.01;
  params.n = s.n;
  const lppm::NFoldGaussianMechanism mech(params);
  constexpr double kTargetingRadius = 5000.0;
  constexpr int kTrials = 2000;

  rng::Engine parent(31);
  stats::RunningStats ur, ae, attacker_error;
  for (int t = 0; t < kTrials; ++t) {
    rng::Engine e = parent.split(t);
    const auto candidates = mech.obfuscate(e, {0, 0});
    ur.add(utility::utilization_rate(e, {0, 0}, candidates,
                                     kTargetingRadius, 128));
    const auto probs =
        core::selection_probabilities(candidates, mech.posterior_sigma());
    ae.add(utility::efficacy_weighted({0, 0}, candidates, probs,
                                      kTargetingRadius));

    // The attacker's best case: cluster a long replayed stream. Because
    // the candidates are frozen, the attack reduces to locating the
    // posterior-weighted centroid of the candidate set.
    geo::Point weighted{};
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      weighted = weighted + candidates[i] * probs[i];
    }
    attacker_error.add(geo::norm(weighted));
  }

  std::printf("%5.2f %6.0f %3zu | %9.0f | %6.3f %6.3f | %12.0f\n", s.eps, s.r,
              s.n, mech.sigma(), ur.mean(), ae.mean(),
              attacker_error.mean());
}

}  // namespace

int main() {
  using namespace privlocad;

  std::printf("Edge-PrivLocAd parameter tuning (R = 5 km targeting)\n\n");
  std::printf("%5s %6s %3s | %9s | %6s %6s | %12s\n", "eps", "r", "n",
              "sigma(m)", "UR", "AE", "attack-err(m)");
  std::printf("---------------------------------------------------------\n");

  for (const Setting& s : {
           Setting{0.5, 500.0, 10},
           Setting{1.0, 500.0, 1},
           Setting{1.0, 500.0, 5},
           Setting{1.0, 500.0, 10},
           Setting{1.0, 800.0, 10},
           Setting{1.5, 500.0, 10},
           Setting{1.5, 800.0, 10},
       }) {
    evaluate(s);
  }

  std::printf(
      "\nreading the table:\n"
      "  sigma      -- per-candidate noise (Theorem 2 calibration)\n"
      "  UR         -- fraction of the user's 5 km area still reachable\n"
      "  AE         -- probability a delivered ad is actually relevant\n"
      "  attack-err -- expected residual error of the longitudinal attacker\n"
      "tighter privacy (lower eps / higher r) costs utility; more candidates\n"
      "(n) buys utilization without weakening the guarantee.\n");
  return 0;
}
