// trace_tool: dataset utility for the synthetic mobility traces.
//
// Subcommands:
//   generate <users> <out.csv>        -- synthesize a population and write
//                                        local-metric CSV
//   export-geo <in.csv> <out.csv>     -- convert a local-metric trace file
//                                        to lat/lon (Shanghai projection)
//   stats <in.csv>                    -- per-population profile statistics
//
// This is the workflow a researcher uses to materialize the paper's
// dataset substitute once and share it between experiments.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "attack/profile.hpp"
#include "stats/quantiles.hpp"
#include "stats/running_stats.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace privlocad;

int cmd_generate(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: trace_tool generate <users> <out.csv>\n");
    return 2;
  }
  const auto users = static_cast<std::size_t>(std::atoll(argv[2]));
  trace::SyntheticConfig config;
  config.max_check_ins = 2000;  // keep generated files manageable
  const rng::Engine parent(20240601);
  const auto population = trace::generate_population(parent, config, users);

  std::vector<trace::UserTrace> traces;
  traces.reserve(population.size());
  std::size_t total = 0;
  for (const trace::SyntheticUser& u : population) {
    total += u.trace.check_ins.size();
    traces.push_back(u.trace);
  }
  trace::write_traces_file(argv[3], traces);
  std::printf("wrote %zu users, %zu check-ins to %s\n", traces.size(), total,
              argv[3]);
  return 0;
}

int cmd_export_geo(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr, "usage: trace_tool export-geo <in.csv> <out.csv>\n");
    return 2;
  }
  const auto traces = trace::read_traces_file(argv[2]);
  std::ofstream out(argv[3]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", argv[3]);
    return 1;
  }
  trace::write_traces_geo(out, traces, geo::shanghai_projection());
  std::printf("exported %zu users to geographic CSV %s\n", traces.size(),
              argv[3]);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: trace_tool stats <in.csv>\n");
    return 2;
  }
  const auto traces = trace::read_traces_file(argv[2]);
  stats::RunningStats check_ins, entropies, locations;
  std::vector<double> entropy_values;
  for (const trace::UserTrace& t : traces) {
    check_ins.add(static_cast<double>(t.check_ins.size()));
    const attack::LocationProfile profile = attack::build_profile(t);
    if (profile.empty()) continue;
    locations.add(static_cast<double>(profile.size()));
    entropies.add(profile.entropy());
    entropy_values.push_back(profile.entropy());
  }
  std::printf("users                 : %zu\n", traces.size());
  std::printf("check-ins per user    : mean %.0f, min %.0f, max %.0f\n",
              check_ins.mean(), check_ins.min(), check_ins.max());
  std::printf("locations per profile : mean %.1f\n", locations.mean());
  std::printf("entropy               : mean %.3f, median %.3f\n",
              entropies.mean(), stats::quantile(entropy_values, 0.5));
  std::size_t below = 0;
  for (const double h : entropy_values) {
    if (h < 2.0) ++below;
  }
  std::printf("entropy < 2 nats      : %.1f%%  (paper: 88.8%%)\n",
              100.0 * static_cast<double>(below) /
                  static_cast<double>(entropy_values.size()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_tool <generate|export-geo|stats> ...\n");
    return 2;
  }
  if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
  if (std::strcmp(argv[1], "export-geo") == 0) {
    return cmd_export_geo(argc, argv);
  }
  if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
  std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
  return 2;
}
