// Edge operations walkthrough: the deployment-facing features.
//
//   1. serve traffic and read the telemetry counters;
//   2. snapshot the obfuscation tables to disk, "restart" the device, and
//      restore -- proving the permanent candidates survive (regenerating
//      them would be a privacy leak);
//   3. per-user personalized privacy levels;
//   4. the privacy accountant's view of a protected user vs. what a
//      one-time geo-IND user would have spent.
//
// Build & run:  ./build/examples/edge_operations
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/edge_device.hpp"
#include "core/table_store.hpp"

int main() {
  using namespace privlocad;

  core::EdgeConfig config;
  config.top_params.radius_m = 500.0;
  config.top_params.epsilon = 1.0;
  config.top_params.delta = 0.01;
  config.top_params.n = 10;
  config.management.window_seconds = 30 * trace::kSecondsPerDay;

  // ---- 1. serve traffic ----------------------------------------------
  core::EdgeDevice device(config.with_seed(2024));
  const geo::Point alice_home{1200.0, -300.0};
  trace::UserTrace history;
  history.user_id = 1;  // alice
  for (int i = 0; i < 60; ++i) {
    history.check_ins.push_back(
        {alice_home, trace::kStudyStart + i * 3600});
  }
  device.import_history(1, history);

  // Bob wants stricter privacy before his first report.
  lppm::BoundedGeoIndParams strict = config.top_params;
  strict.epsilon = 0.5;
  device.set_user_privacy(2, strict);

  for (int i = 0; i < 200; ++i) {
    const trace::Timestamp t =
        trace::kStudyStart + 40 * trace::kSecondsPerDay + i * 600;
    device.report_location(1, alice_home, t);
    device.report_location(2, {i * 400.0, -i * 250.0}, t);  // bob roams
  }
  std::printf("--- telemetry after 400 requests ---\n%s\n",
              device.telemetry().to_string().c_str());

  // ---- 2. snapshot / restart / restore --------------------------------
  std::stringstream storage, profile_storage;
  core::save_tables(storage, device.snapshot_tables());
  core::save_profiles(profile_storage, device.snapshot_profiles());
  std::printf("persisted: %zu bytes of tables, %zu bytes of profiles\n\n",
              storage.str().size(), profile_storage.str().size());

  core::EdgeDevice restarted(config.with_seed(/*different seed=*/777));
  restarted.restore_tables(core::load_tables(storage, 100.0));
  restarted.restore_profiles(core::load_profiles(profile_storage));
  const core::ReportedLocation replay = restarted.report_location(
      1, alice_home, trace::kStudyStart + 100 * trace::kSecondsPerDay);
  std::printf("after restart, alice's report still comes from the frozen "
              "set: (%.1f, %.1f) [%s]\n\n",
              replay.location.x, replay.location.y,
              replay.kind == core::ReportKind::kTopLocation ? "top"
                                                            : "nomadic");

  // ---- 3 + 4. privacy accounting ---------------------------------------
  const lppm::PrivacySpend alice = device.accountant().spend_for(1);
  const lppm::PrivacySpend bob = device.accountant().spend_for(2);
  std::printf("--- privacy ledger ---\n");
  std::printf("alice (routine, protected): %zu release(s), eps = %.2f\n",
              alice.releases, alice.basic_epsilon);
  std::printf("bob   (roaming, one-time) : %zu releases, eps = %.1f "
              "(every nomadic report composes!)\n",
              bob.releases, bob.basic_epsilon);
  std::printf("\nalice reported from home 200 times but spent privacy ONCE "
              "-- that asymmetry is the defence.\n");
  std::printf("bob's personalized level for future top locations: eps = "
              "%.2f\n",
              device.user_privacy(2).epsilon);

  // ---- 5. risk-driven policy ------------------------------------------
  const core::RiskAssessment alice_risk = device.assess_user_risk(1);
  std::printf("\n--- risk assessment (alice) ---\n");
  std::printf("level: %s (score %.2f; entropy %.2f, exposure %.2f, "
              "budget %.2f)\n",
              core::to_string(alice_risk.level).c_str(), alice_risk.score,
              alice_risk.entropy_signal, alice_risk.exposure_signal,
              alice_risk.budget_signal);
  std::printf("recommendation: %s\n", alice_risk.recommendation.c_str());
  const lppm::BoundedGeoIndParams next =
      core::recommended_params(alice_risk, device.user_privacy(1));
  std::printf("policy for alice's future tables: eps %.2f -> %.2f, "
              "n %zu -> %zu\n",
              device.user_privacy(1).epsilon, next.epsilon,
              device.user_privacy(1).n, next.n);
  device.set_user_privacy(1, next);
  return 0;
}
