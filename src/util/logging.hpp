// Tiny leveled logger for the edge prototype and the bench harness.
//
// A full logging framework would be overkill for a research prototype; the
// system only needs (a) a global severity threshold, (b) timestamps relative
// to process start so bench output is reproducible, and (c) thread-safe
// emission because the edge device serves users from a thread pool.
#pragma once

#include <string>

namespace privlocad::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current global minimum level.
LogLevel log_level();

/// Emits `message` at `level` to stderr if it passes the threshold.
/// Safe to call concurrently from multiple threads.
void log(LogLevel level, const std::string& message);

inline void log_debug(const std::string& m) { log(LogLevel::kDebug, m); }
inline void log_info(const std::string& m) { log(LogLevel::kInfo, m); }
inline void log_warn(const std::string& m) { log(LogLevel::kWarn, m); }
inline void log_error(const std::string& m) { log(LogLevel::kError, m); }

}  // namespace privlocad::util
