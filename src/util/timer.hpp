// Wall-clock stopwatch used by the scalability benches (paper Tables II/III).
#pragma once

#include <chrono>

namespace privlocad::util {

/// Monotonic stopwatch; starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace privlocad::util
