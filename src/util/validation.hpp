// Argument-validation helpers used at every public API boundary.
//
// The library follows the C++ Core Guidelines error-handling advice
// (I.5/I.6, E.2): programming errors at the boundary of the public API are
// reported by throwing exceptions derived from std::logic_error /
// std::runtime_error, so that misuse cannot silently produce meaningless
// privacy parameters (a wrong sigma is a privacy bug, not a nuisance).
#pragma once

#include <stdexcept>
#include <string>

namespace privlocad::util {

/// Thrown when a caller passes an argument outside its documented domain.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an operation is attempted on an object in the wrong state
/// (e.g. querying a profile before any check-in was recorded).
class PreconditionViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Throws InvalidArgument with `message` unless `condition` holds.
void require(bool condition, const std::string& message);

/// Throws InvalidArgument unless `value` is finite and strictly positive.
/// `name` identifies the offending parameter in the exception message.
void require_positive(double value, const std::string& name);

/// Throws InvalidArgument unless `value` is finite and non-negative.
void require_non_negative(double value, const std::string& name);

/// Throws InvalidArgument unless `value` lies in the open interval (0, 1).
void require_unit_open(double value, const std::string& name);

/// Throws InvalidArgument unless `value` is finite (not NaN/inf).
void require_finite(double value, const std::string& name);

}  // namespace privlocad::util
