// Small string utilities shared across modules (CSV parsing, report
// formatting). Kept deliberately minimal: nothing here allocates beyond what
// the returned values require.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace privlocad::util {

/// Splits `text` on `delimiter`, keeping empty fields. "a,,b" -> {a, "", b}.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Parses a double, throwing InvalidArgument on malformed or trailing input.
double parse_double(std::string_view text);

/// Parses a non-negative integer, throwing InvalidArgument on malformed
/// input or overflow.
long long parse_int(std::string_view text);

/// Joins `parts` with `separator`. join({"a","b"}, ", ") -> "a, b".
std::string join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Formats `value` with `digits` places after the decimal point.
std::string format_double(double value, int digits);

}  // namespace privlocad::util
