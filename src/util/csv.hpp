// Minimal CSV reader/writer used by the trace module and the bench harness.
//
// Single-line RFC 4180: fields split on commas, double-quoted fields may
// contain commas, and "" inside quotes is a literal quote. Embedded
// newlines are the one RFC feature deliberately not supported (the reader
// is line-based); the writer rejects them and the reader reports an
// unterminated quote with its line number. The reader also validates
// column counts per row and reports the offending line number.
//
// Error taxonomy (util/status.hpp): structurally malformed input throws
// util::ParseError (an InvalidArgument carrying ErrorCode::kParseError and
// the 1-based line); failures to open a file throw util::IoError (a
// runtime_error carrying kIoError). Callers can therefore distinguish
// "the file is corrupt" from "the file is unreachable" programmatically.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace privlocad::util {

/// One parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column, throwing InvalidArgument if absent.
  std::size_t column(const std::string& name) const;
};

/// Parses CSV from a stream. First line is the header. Blank lines are
/// skipped. Throws InvalidArgument on ragged rows and malformed quoting
/// (with the line number).
CsvTable read_csv(std::istream& in);

/// Convenience overload reading from a file path; throws
/// std::runtime_error if the file cannot be opened.
CsvTable read_csv_file(const std::string& path);

/// Streaming CSV writer. Writes the header on construction.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one row, quoting fields that contain commas or quotes; throws
  /// InvalidArgument if the width differs from the header's or a field
  /// contains a newline.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
  std::size_t width_;
};

}  // namespace privlocad::util
