#include "util/validation.hpp"

#include <cmath>

namespace privlocad::util {

void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgument(message);
}

void require_positive(double value, const std::string& name) {
  if (!std::isfinite(value) || value <= 0.0) {
    throw InvalidArgument(name + " must be finite and > 0, got " +
                          std::to_string(value));
  }
}

void require_non_negative(double value, const std::string& name) {
  if (!std::isfinite(value) || value < 0.0) {
    throw InvalidArgument(name + " must be finite and >= 0, got " +
                          std::to_string(value));
  }
}

void require_unit_open(double value, const std::string& name) {
  if (!std::isfinite(value) || value <= 0.0 || value >= 1.0) {
    throw InvalidArgument(name + " must lie in (0, 1), got " +
                          std::to_string(value));
  }
}

void require_finite(double value, const std::string& name) {
  if (!std::isfinite(value)) {
    throw InvalidArgument(name + " must be finite, got " +
                          std::to_string(value));
  }
}

}  // namespace privlocad::util
