#include "util/status.hpp"

namespace privlocad::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kIoError: return "IO_ERROR";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

bool is_transient(ErrorCode code) {
  return code == ErrorCode::kUnavailable || code == ErrorCode::kTimeout ||
         code == ErrorCode::kResourceExhausted;
}

Status::Status(ErrorCode code, std::string message)
    : code_(code), message_(std::move(message)) {
  if (code_ == ErrorCode::kOk) {
    throw InvalidArgument("an error Status cannot carry ErrorCode::kOk");
  }
}

Status Status::invalid_argument(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status Status::failed_precondition(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status Status::parse_error(std::string message) {
  return Status(ErrorCode::kParseError, std::move(message));
}
Status Status::io_error(std::string message) {
  return Status(ErrorCode::kIoError, std::move(message));
}
Status Status::not_found(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status Status::unavailable(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status Status::timeout(std::string message) {
  return Status(ErrorCode::kTimeout, std::move(message));
}
Status Status::resource_exhausted(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status Status::internal(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  return std::string(error_code_name(code_)) + ": " + message_;
}

Status status_from_exception(const std::exception& error) {
  if (const auto* status = dynamic_cast<const StatusError*>(&error)) {
    return status->status();
  }
  if (const auto* parse = dynamic_cast<const ParseError*>(&error)) {
    return Status(parse->code(), parse->what());
  }
  if (const auto* io = dynamic_cast<const IoError*>(&error)) {
    return Status(io->code(), io->what());
  }
  if (dynamic_cast<const InvalidArgument*>(&error) != nullptr) {
    return Status::invalid_argument(error.what());
  }
  if (dynamic_cast<const PreconditionViolation*>(&error) != nullptr) {
    return Status::failed_precondition(error.what());
  }
  return Status::internal(error.what());
}

}  // namespace privlocad::util
