#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/validation.hpp"

namespace privlocad::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

double parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    throw InvalidArgument("not a valid double: '" + std::string(text) + "'");
  }
  return value;
}

long long parse_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    throw InvalidArgument("not a valid integer: '" + std::string(text) + "'");
  }
  return value;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string format_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace privlocad::util
