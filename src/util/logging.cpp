#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace privlocad::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

double seconds_since_start() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%9.3f] %-5s %s\n", seconds_since_start(),
               level_name(level), message.c_str());
}

}  // namespace privlocad::util
