// Typed error taxonomy: ErrorCode + Status + Result<T>.
//
// The serving surface must distinguish "the input is malformed" (give up)
// from "the backend hiccuped" (retry) from "the caller misused the API"
// (a bug): a privacy system that treats every failure the same either
// retries corrupt state forever or -- far worse -- falls back to raw
// coordinates when a transient store blip looks fatal. Every failure a
// caller can react to is therefore classified by ErrorCode; Status carries
// the code plus a human-readable cause, and Result<T> is the value-or-
// Status return shape of the fallible APIs (serve, try_load_*,
// try_run_auction). is_transient() is the single source of truth the
// fault/retry layer consults for what is safe to retry.
//
// Exceptions remain the vehicle at the legacy throwing boundaries
// (C++ Core Guidelines I.5/E.2, see util/validation.hpp); ParseError and
// IoError are thin wrappers that keep those boundaries source-compatible
// (they still derive from InvalidArgument / std::runtime_error) while
// carrying the code and, for parse failures, the 1-based line number.
// status_from_exception() folds any caught exception back into a Status.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "util/validation.hpp"

namespace privlocad::util {

/// Every failure class a caller can react to programmatically.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,     ///< argument outside its documented domain
  kFailedPrecondition,  ///< object in the wrong state for the call
  kParseError,          ///< structurally malformed input (CSV, spec string)
  kIoError,             ///< file/stream open, read, or write failure
  kNotFound,            ///< named entity absent (user, column, file entry)
  kUnavailable,         ///< backend transiently unreachable -- retryable
  kTimeout,             ///< deadline exceeded -- retryable
  kResourceExhausted,   ///< capacity/quota exhausted -- retryable
  kInternal,            ///< invariant broken or unclassified failure
};

/// Stable upper-snake name ("UNAVAILABLE") for logs and JSON.
const char* error_code_name(ErrorCode code);

/// True for the codes a retry can plausibly cure (kUnavailable, kTimeout,
/// kResourceExhausted). Parse/argument/precondition failures are
/// deterministic and must fail fast instead of burning retry budget.
bool is_transient(ErrorCode code);

/// One operation outcome: kOk (no message) or an error code + cause.
class [[nodiscard]] Status {
 public:
  /// Default is success.
  Status() = default;

  /// An error status; `code` must not be kOk (use ok() for success).
  Status(ErrorCode code, std::string message);

  static Status invalid_argument(std::string message);
  static Status failed_precondition(std::string message);
  static Status parse_error(std::string message);
  static Status io_error(std::string message);
  static Status not_found(std::string message);
  static Status unavailable(std::string message);
  static Status timeout(std::string message);
  static Status resource_exhausted(std::string message);
  static Status internal(std::string message);

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when a retry may cure this status (see is_transient).
  bool transient() const { return is_transient(code_); }

  /// "OK" or "UNAVAILABLE: table store unreachable".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Exception carrying a full Status: thrown by the legacy throwing
/// wrappers around Result-returning operations, so `catch` sites keep
/// the code + cause instead of a bare string.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }
  ErrorCode code() const { return status_.code(); }

 private:
  Status status_;
};

/// Structurally malformed input. Derives from InvalidArgument so existing
/// catch/EXPECT_THROW sites keep working; adds the code and the 1-based
/// line (0 = unknown) so parse failures are programmatically
/// distinguishable from I/O failures and findable in the input.
class ParseError : public InvalidArgument {
 public:
  explicit ParseError(const std::string& message, std::size_t line = 0)
      : InvalidArgument(message), line_(line) {}

  ErrorCode code() const { return ErrorCode::kParseError; }
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// File/stream failure. Derives from std::runtime_error, preserving the
/// documented "IO failures throw std::runtime_error" contract.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& message)
      : std::runtime_error(message) {}

  ErrorCode code() const { return ErrorCode::kIoError; }
};

/// Maps a caught exception onto the taxonomy: StatusError passes through,
/// ParseError/IoError keep their codes, InvalidArgument/Precondition map
/// to their codes, anything else becomes kInternal.
Status status_from_exception(const std::exception& error);

/// Value-or-Status: the return shape of every fallible operation that
/// produces a value. Constructing from a value yields ok(); constructing
/// from a Status requires a non-ok status (an "ok but no value" Result is
/// a contradiction and throws InvalidArgument).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      throw InvalidArgument("Result<T> cannot hold an OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// The status: ok() when a value is held.
  Status status() const {
    return ok() ? Status() : std::get<Status>(state_);
  }

  /// The held value; throws StatusError with the held status on misuse.
  const T& value() const& {
    require_value();
    return std::get<T>(state_);
  }
  T& value() & {
    require_value();
    return std::get<T>(state_);
  }
  T&& value() && {
    require_value();
    return std::get<T>(std::move(state_));
  }

  /// The held value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void require_value() const {
    if (!ok()) throw StatusError(std::get<Status>(state_));
  }

  std::variant<T, Status> state_;
};

}  // namespace privlocad::util
