#include "util/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::util {

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw InvalidArgument("CSV has no column named '" + name + "'");
}

CsvTable read_csv(std::istream& in) {
  CsvTable table;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (trim(line).empty()) continue;
    auto fields = split(line, ',');
    if (table.header.empty()) {
      table.header = std::move(fields);
      continue;
    }
    if (fields.size() != table.header.size()) {
      throw InvalidArgument("CSV line " + std::to_string(line_number) +
                            " has " + std::to_string(fields.size()) +
                            " fields, expected " +
                            std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(fields));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  return read_csv(in);
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  require(width_ > 0, "CSV header must not be empty");
  out_ << join(header, ",") << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != width_) {
    throw InvalidArgument("CSV row width " + std::to_string(fields.size()) +
                          " does not match header width " +
                          std::to_string(width_));
  }
  out_ << join(fields, ",") << '\n';
}

}  // namespace privlocad::util
