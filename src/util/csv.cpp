#include "util/csv.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::util {
namespace {

/// Splits one physical CSV line into fields, honoring RFC-4180 double
/// quotes: a quoted field may contain commas, and "" inside quotes is a
/// literal quote. Errors carry `line_number` so a bad row is findable.
/// Multi-line quoted fields (embedded newlines) are not supported; the
/// writer refuses to produce them.
std::vector<std::string> split_csv_line(const std::string& line,
                                        std::size_t line_number) {
  std::vector<std::string> fields;
  std::string field;
  std::size_t i = 0;
  const auto context = [line_number] {
    return "CSV line " + std::to_string(line_number);
  };

  while (true) {
    field.clear();
    if (i < line.size() && line[i] == '"') {
      // Quoted field: scan to the closing quote, folding "" into ".
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field += '"';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        field += line[i++];
      }
      if (!closed) {
        throw ParseError(context() +
                             ": unterminated quoted field (multi-line "
                             "quoted fields are unsupported)",
                         line_number);
      }
      if (i < line.size() && line[i] != ',') {
        throw ParseError(
            context() + ": unexpected character after closing quote",
            line_number);
      }
    } else {
      // Unquoted field: runs to the next comma; a stray quote inside it
      // means the producer meant quoting we would otherwise mis-parse.
      while (i < line.size() && line[i] != ',') {
        if (line[i] == '"') {
          throw ParseError(
              context() + ": unexpected '\"' inside unquoted field",
              line_number);
        }
        field += line[i++];
      }
    }
    fields.push_back(field);
    if (i >= line.size()) return fields;
    ++i;  // consume the comma; a trailing comma yields a final empty field
  }
}

/// True when RFC 4180 requires the field to be double-quoted.
bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"") != std::string::npos;
}

std::string escape_field(const std::string& field) {
  if (field.find_first_of("\n\r") != std::string::npos) {
    throw InvalidArgument(
        "CSV fields must not contain newlines (the reader is line-based)");
  }
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string render_row(const std::vector<std::string>& fields) {
  std::vector<std::string> escaped;
  escaped.reserve(fields.size());
  for (const std::string& field : fields) {
    escaped.push_back(escape_field(field));
  }
  return join(escaped, ",");
}

}  // namespace

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ParseError("CSV has no column named '" + name + "'");
}

CsvTable read_csv(std::istream& in) {
  CsvTable table;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (trim(line).empty()) continue;
    auto fields = split_csv_line(line, line_number);
    if (table.header.empty()) {
      table.header = std::move(fields);
      continue;
    }
    if (fields.size() != table.header.size()) {
      throw ParseError("CSV line " + std::to_string(line_number) + " has " +
                           std::to_string(fields.size()) +
                           " fields, expected " +
                           std::to_string(table.header.size()),
                       line_number);
    }
    table.rows.push_back(std::move(fields));
  }
  return table;
}

CsvTable read_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open CSV file: " + path);
  return read_csv(in);
}

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), width_(header.size()) {
  require(width_ > 0, "CSV header must not be empty");
  out_ << render_row(header) << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (fields.size() != width_) {
    throw InvalidArgument("CSV row width " + std::to_string(fields.size()) +
                          " does not match header width " +
                          std::to_string(width_));
  }
  out_ << render_row(fields) << '\n';
}

}  // namespace privlocad::util
