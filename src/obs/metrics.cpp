#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <thread>

#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::obs {

std::vector<double> default_latency_bounds_us() {
  return {1.0,    2.0,    5.0,    10.0,   20.0,   50.0,   100.0, 200.0,
          500.0,  1e3,    2e3,    5e3,    1e4,    2e4,    5e4,   1e5,
          2e5,    5e5,    1e6,    2e6,    5e6,    1e7};
}

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  util::require(!bounds_.empty(), "histogram needs at least one bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    util::require_finite(bounds_[i], "histogram bound");
    util::require(i == 0 || bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      kMetricSlots * (bounds_.size() + 1));
}

void LatencyHistogram::record(double value) noexcept {
  const std::size_t slot = detail::this_thread_slot();
  Slot& totals = slots_[slot];
  totals.count.fetch_add(1, std::memory_order_relaxed);
  if (!std::isfinite(value)) {
    totals.invalid.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  totals.sum.fetch_add(value, std::memory_order_relaxed);
  // Bucket b covers (bounds[b-1], bounds[b]]; values past the last bound
  // land in the trailing overflow bucket.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[slot * (bounds_.size() + 1) + bucket].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.count.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t LatencyHistogram::invalid() const noexcept {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.invalid.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::sum() const noexcept {
  double total = 0.0;
  for (const Slot& slot : slots_) {
    total += slot.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::mean() const noexcept {
  const std::uint64_t finite = count() - invalid();
  return finite == 0 ? 0.0 : sum() / static_cast<double>(finite);
}

std::vector<std::uint64_t> LatencyHistogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (std::size_t slot = 0; slot < kMetricSlots; ++slot) {
    for (std::size_t b = 0; b < merged.size(); ++b) {
      merged[b] += buckets_[slot * merged.size() + b].load(
          std::memory_order_relaxed);
    }
  }
  return merged;
}

double LatencyHistogram::quantile(double q) const {
  util::require(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t n = 0;
  for (const std::uint64_t c : counts) n += c;
  if (n == 0) return 0.0;

  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[b]);
    if (next >= target) {
      // Rank lands in the trailing overflow bucket: the histogram only
      // knows those observations exceed the last finite bound, so the
      // estimate CLAMPS to that bound instead of interpolating past the
      // histogram range (there is no upper edge to interpolate toward).
      // A reported quantile equal to upper_bounds().back() therefore
      // means ">= the last bound"; widen the bounds to resolve it.
      if (b == bounds_.size()) return bounds_.back();
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      const double upper = bounds_[b];
      const double fraction = std::clamp(
          (target - cumulative) / static_cast<double>(counts[b]), 0.0, 1.0);
      return lower + (upper - lower) * fraction;
    }
    cumulative = next;
  }
  // Unreachable for q in [0, 1] (q * n never exceeds n, so the last
  // non-empty bucket always satisfies next >= target); kept as the
  // largest value the histogram can attest to, for float pathologies.
  return bounds_.back();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Entry& entry = entry_for(name, Kind::kCounter);
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Entry& entry = entry_for(name, Kind::kGauge);
  return *entry.gauge;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, default_latency_bounds_us());
}

LatencyHistogram& MetricsRegistry::histogram(
    const std::string& name, std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    util::require(it->second->kind == Kind::kHistogram,
                  "metric '" + name + "' already registered as another kind");
    return *it->second->histogram;  // first registration's bounds win
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = Kind::kHistogram;
  entry->histogram =
      std::make_unique<LatencyHistogram>(std::move(upper_bounds));
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_name_.emplace(name, raw);
  return *raw->histogram;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(const std::string& name,
                                                   Kind kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    util::require(it->second->kind == kind,
                  "metric '" + name + "' already registered as another kind");
    return *it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  if (kind == Kind::kCounter) entry->counter = std::make_unique<Counter>();
  if (kind == Kind::kGauge) entry->gauge = std::make_unique<Gauge>();
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_name_.emplace(name, raw);
  return *raw;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second->kind != Kind::kCounter) return 0;
  return it->second->counter->value();
}

void MetricsRegistry::append_json(JsonWriter& json,
                                  const std::string& prefix) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    const std::string key = prefix + entry->name;
    switch (entry->kind) {
      case Kind::kCounter:
        json.add(key, entry->counter->value());
        break;
      case Kind::kGauge:
        json.add(key, entry->gauge->value());
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = *entry->histogram;
        json.add(key + "_count", h.count());
        json.add(key + "_mean", h.mean());
        json.add(key + "_p50", h.quantile(0.50));
        json.add(key + "_p95", h.quantile(0.95));
        json.add(key + "_p99", h.quantile(0.99));
        break;
      }
    }
  }
}

std::string MetricsRegistry::to_json() const {
  JsonWriter json;
  append_json(json);
  return json.to_string();
}

std::string MetricsRegistry::to_string() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        out += entry->name + ": " + std::to_string(entry->counter->value());
        break;
      case Kind::kGauge:
        out += entry->name + ": " +
               util::format_double(entry->gauge->value(), 3);
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = *entry->histogram;
        out += entry->name + ": count=" + std::to_string(h.count()) +
               " mean=" + util::format_double(h.mean(), 1) +
               " p50=" + util::format_double(h.quantile(0.50), 1) +
               " p95=" + util::format_double(h.quantile(0.95), 1) +
               " p99=" + util::format_double(h.quantile(0.99), 1);
        break;
      }
    }
    out += '\n';
  }
  return out;
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  JsonWriter json;
  append_json(json);
  return json.write_file(path);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

bool MetricsRegistry::export_to_env_path() const {
  const char* path = std::getenv("PRIVLOCAD_METRICS");
  if (path == nullptr || *path == '\0') return false;
  return write_json_file(path);
}

}  // namespace privlocad::obs
