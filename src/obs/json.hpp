// Flat JSON object writer for metrics and perf records.
//
// Every bench emits one flat JSON object (BENCH_<name>.json) and the
// metrics registry exports the same shape, so perf baselines and live
// metrics dumps stay diffable line-by-line. Values are rendered at add()
// time so the writer needs no variant machinery; insertion order is the
// file order, which keeps diffs between runs line-stable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace privlocad::obs {

/// Ordered key -> JSON-literal set serialized as one flat object.
class JsonWriter {
 public:
  /// Doubles render at full precision; non-finite values render as null
  /// (JSON has no NaN/Inf).
  JsonWriter& add(const std::string& key, double value);

  JsonWriter& add(const std::string& key, std::uint64_t value);

  /// `value` is escaped per JSON (quotes, backslashes, control chars).
  JsonWriter& add_string(const std::string& key, const std::string& value);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  /// The complete "{...}" object text, one key per line.
  std::string to_string() const;

  /// Writes to_string() to `path`; returns false (and warns on stderr)
  /// on IO failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace privlocad::obs
