#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace privlocad::obs {
namespace {

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

JsonWriter& JsonWriter::add(const std::string& key, double value) {
  char buffer[64];
  if (std::isfinite(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "null");
  }
  entries_.emplace_back(key, buffer);
  return *this;
}

JsonWriter& JsonWriter::add(const std::string& key, std::uint64_t value) {
  entries_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::add_string(const std::string& key,
                                   const std::string& value) {
  std::string literal;
  literal.reserve(value.size() + 2);
  literal += '"';
  literal += escape_json(value);
  literal += '"';
  entries_.emplace_back(key, std::move(literal));
  return *this;
}

std::string JsonWriter::to_string() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out += "  \"" + escape_json(entries_[i].first) + "\": ";
    out += entries_[i].second;
    out += i + 1 < entries_.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

bool JsonWriter::write_file(const std::string& path) const {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string text = to_string();
  std::fwrite(text.data(), 1, text.size(), out);
  std::fclose(out);
  return true;
}

}  // namespace privlocad::obs
