// Process-wide observability: named counters, gauges, and latency
// histograms behind one thread-safe registry.
//
// The paper's scalability claims (Tables II/III: one edge platform serving
// tens of thousands of users) are only checkable at production scale if the
// serving path can be observed without slowing it down. Every metric here
// shards its hot state across cache-line-padded atomic slots indexed by a
// per-thread hash, so the write path is a single relaxed fetch_add with no
// shared cache line between workers; reads merge the slots on demand.
// Registration (name lookup) takes a mutex -- callers on hot paths should
// resolve the metric once and keep the reference, which stays valid for
// the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"

namespace privlocad::obs {

/// Slots each metric stripes its atomics across. Threads hash onto slots,
/// so contention drops ~kMetricSlots-fold without per-thread registration.
inline constexpr std::size_t kMetricSlots = 16;

namespace detail {
/// Stable slot index for the calling thread. Inline (not a cross-TU call)
/// so a counter add on the serving hot path compiles down to the TLS read
/// plus one lock-prefixed add.
inline std::size_t this_thread_slot() {
  thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricSlots;
  return slot;
}
}  // namespace detail

/// Monotonic counter. add() is a relaxed fetch_add on a thread-striped
/// slot; value() sums the slots (so it is eventually exact: it reflects
/// every add() that happened-before the read).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    slots_[detail::this_thread_slot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, kMetricSlots> slots_;
};

/// Last-write-wins instantaneous value (queue depth, thread count, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// The bucket upper bounds (microseconds) latency histograms default to:
/// 1us .. 10s in a 1-2-5 progression, wide enough for any serving path.
std::vector<double> default_latency_bounds_us();

/// Fixed-bucket histogram for latency-style values. record() finds the
/// bucket by binary search and does two relaxed fetch_adds on the calling
/// thread's slot; quantiles interpolate linearly inside the bucket that
/// holds the rank. Values above the last bound land in an implicit
/// overflow bucket; non-finite values are tallied separately (never
/// binned), mirroring stats::Histogram.
class LatencyHistogram {
 public:
  /// `upper_bounds` must be non-empty, finite, and strictly increasing.
  explicit LatencyHistogram(std::vector<double> upper_bounds);
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record(double value) noexcept;

  /// Observations recorded, including overflow and non-finite ones.
  std::uint64_t count() const noexcept;

  /// Sum of all finite recorded values.
  double sum() const noexcept;

  /// Mean of finite recorded values; 0 when empty.
  double mean() const noexcept;

  /// Estimated q-quantile (q in [0, 1]) of the finite observations,
  /// interpolated within the owning bucket; 0 when empty. A rank landing
  /// in the overflow bucket CLAMPS to the last finite bound -- the
  /// histogram cannot attest to anything beyond its range, so a returned
  /// value equal to upper_bounds().back() reads as ">= last bound" and
  /// never extrapolates past it.
  double quantile(double q) const;

  std::uint64_t invalid() const noexcept;

  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// Merged per-bucket counts; one extra trailing entry for overflow.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  struct alignas(64) Slot {
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> invalid{0};
  };

  std::vector<double> bounds_;
  std::array<Slot, kMetricSlots> slots_;
  /// Slot-major [slot * (bounds + 1) + bucket] bucket counts.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
};

/// Records the scope's wall time (microseconds) into a histogram on
/// destruction; pass nullptr to make the timer a no-op.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* histogram)
      : histogram_(histogram), start_(Clock::now()) {}

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

  ~ScopedLatencyTimer() {
    if (histogram_ == nullptr) return;
    const std::chrono::duration<double, std::micro> elapsed =
        Clock::now() - start_;
    histogram_->record(elapsed.count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  LatencyHistogram* histogram_;
  Clock::time_point start_;
};

/// Thread-safe name -> metric registry. Metrics are created on first use
/// and live as long as the registry; re-requesting a name returns the same
/// object, and requesting it as a different kind throws InvalidArgument.
/// Export walks metrics in registration order so dumps diff cleanly.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);
  LatencyHistogram& histogram(const std::string& name,
                              std::vector<double> upper_bounds);

  /// Current value of a counter, or 0 if no counter has that name. The
  /// typed-view helpers (core::EdgeTelemetry) read through this.
  std::uint64_t counter_value(const std::string& name) const;

  /// Appends every metric to `json` under `prefix` + its name. Counters
  /// emit one integer; gauges one double; histograms emit the flat
  /// `<name>_count/_mean/_p50/_p95/_p99` family (same schema the
  /// BENCH_*.json perf records use).
  void append_json(JsonWriter& json, const std::string& prefix = "") const;

  /// The whole registry as one flat JSON object.
  std::string to_json() const;

  /// Human-readable "name: value" dump, one metric per line.
  std::string to_string() const;

  /// Writes to_json() to `path`; false (with a stderr warning) on failure.
  bool write_json_file(const std::string& path) const;

  /// Process-wide registry (attack latency, pool stats, anything not tied
  /// to one device). Library code records here; tools export it.
  static MetricsRegistry& global();

  /// Writes the registry to the path in $PRIVLOCAD_METRICS, if set.
  /// Returns true only when the variable was set and the write succeeded.
  bool export_to_env_path() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& entry_for(const std::string& name, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, Entry*> by_name_;
};

}  // namespace privlocad::obs
