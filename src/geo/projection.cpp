#include "geo/projection.hpp"

#include <cmath>
#include <numbers>

#include "util/validation.hpp"

namespace privlocad::geo {

LocalProjection::LocalProjection(LatLon origin)
    : origin_(origin),
      cos_lat_(std::cos(deg_to_rad(origin.lat_deg))),
      meters_per_deg_(kEarthRadiusMeters * std::numbers::pi / 180.0) {
  util::require(origin.lat_deg > -89.0 && origin.lat_deg < 89.0,
                "projection origin latitude must avoid the poles");
}

Point LocalProjection::to_local(LatLon geo) const {
  return {(geo.lon_deg - origin_.lon_deg) * meters_per_deg_ * cos_lat_,
          (geo.lat_deg - origin_.lat_deg) * meters_per_deg_};
}

LatLon LocalProjection::to_geo(Point local) const {
  return {origin_.lat_deg + local.y / meters_per_deg_,
          origin_.lon_deg + local.x / (meters_per_deg_ * cos_lat_)};
}

LocalProjection shanghai_projection() {
  return LocalProjection(LatLon{31.05, 121.5});
}

}  // namespace privlocad::geo
