#include "geo/point.hpp"

namespace privlocad::geo {

double distance(Point a, Point b) { return std::hypot(a.x - b.x, a.y - b.y); }

double distance_squared(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double norm(Point p) { return std::hypot(p.x, p.y); }

}  // namespace privlocad::geo
