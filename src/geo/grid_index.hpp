// Uniform-grid spatial index over a fixed set of points.
//
// The de-obfuscation attack (paper Alg. 1) needs, for tens of thousands of
// users, "all check-ins within theta of this check-in" queries. A uniform
// grid with cell size equal to the query radius answers those in O(points
// in the 3x3 neighborhood), which makes the connectivity clustering linear
// in practice instead of quadratic.
//
// Storage is CSR-style rather than a hash map of buckets: point indices
// are grouped by cell in one flat array (`order_`), with a sorted unique
// cell-key array (`keys_`) and an offsets array (`starts_`) addressing the
// groups. Queries binary-search the 3x3 neighbor keys and then walk
// contiguous memory -- this is the attack's inner loop over every check-in
// pair, and the flat layout removes the per-bucket allocations and hash
// probing of the previous unordered_map design.
//
// The candidate walk itself is vectorized: alongside `order_` the index
// keeps the point coordinates as SoA spans in CSR slot order
// (`slot_xs_`/`slot_ys_`, plus a slot-indexed tombstone array), so each
// cell's scan is a contiguous 4-wide squared-distance/compare kernel
// (simd/kernels.hpp) instead of a per-point indirect load and an
// out-of-line distance_squared call. Scalar and AVX2 dispatch levels
// produce identical visit sets, order, and d2 bits (see the dispatch
// contract in simd/dispatch.hpp).
//
// Two amortization features serve the attack's round structure:
//   - rebuild() re-indexes a new point set in place, reusing every
//     internal buffer's capacity (a DeobfuscationWorkspace keeps one
//     index alive across all users a thread processes);
//   - tombstones (kill / revive_all) hide points from queries without
//     touching the CSR arrays, so Alg. 1 removes each round's cluster in
//     O(cluster) instead of rebuilding the index per rank.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"
#include "simd/kernels.hpp"

namespace privlocad::geo {

/// Build once (or rebuild in place), query many times. Queries see every
/// point that has not been tombstoned since the last build/revive_all.
class GridIndex {
 public:
  /// Empty index; rebuild() before querying.
  GridIndex() = default;

  /// Indexes `points` with grid cells of side `cell_size_m` (> 0).
  /// The referenced vector is copied; indices returned by queries refer to
  /// positions in that original vector.
  GridIndex(std::vector<Point> points, double cell_size_m);

  /// Re-indexes `points` in place with cells of side `cell_size_m` (> 0),
  /// reusing the internal buffers' capacity. All points come back alive.
  void rebuild(const std::vector<Point>& points, double cell_size_m);

  /// Indices of all live points p with distance(p, query) <= radius_m.
  /// `radius_m` may exceed the cell size (more cells are scanned).
  std::vector<std::size_t> within(Point query, double radius_m) const;

  /// Calls `fn(index, distance_squared)` for each live point within
  /// `radius_m` of `query`, avoiding the result-vector allocation on hot
  /// paths. The already-computed squared distance is handed to the
  /// callback so strict (< threshold) filters do not recompute it.
  template <typename Fn>
  void for_each_within(Point query, double radius_m, Fn&& fn) const;

  /// Tombstones point `index`: subsequent queries skip it. O(1).
  void kill(std::size_t index) {
    alive_[index] = 0;
    slot_alive_[slot_of_[index]] = 0;
  }

  /// True when `index` has not been tombstoned since the last build.
  bool alive(std::size_t index) const { return alive_[index] != 0; }

  /// Clears every tombstone (all points queryable again).
  void revive_all() {
    alive_.assign(points_.size(), 1);
    slot_alive_.assign(points_.size(), 1);
  }

  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

 private:
  using CellKey = std::uint64_t;

  /// Shared CSR construction for the constructor and rebuild().
  void build_cells(double cell_size_m);

  CellKey key_for(Point p) const;
  static CellKey pack(std::int32_t cx, std::int32_t cy);
  /// Position of `key` in keys_, or keys_.size() when absent.
  std::size_t find_cell(CellKey key) const;

  std::vector<Point> points_;
  double cell_size_ = 1.0;
  std::vector<CellKey> keys_;          ///< sorted unique occupied cells
  std::vector<std::uint32_t> starts_;  ///< keys_.size()+1 offsets into order_
  std::vector<std::uint32_t> order_;   ///< point indices grouped by cell
  std::vector<std::uint8_t> alive_;    ///< tombstones: 0 = hidden
  std::vector<double> slot_xs_;        ///< point x in CSR slot order (SoA)
  std::vector<double> slot_ys_;        ///< point y in CSR slot order (SoA)
  std::vector<std::uint8_t> slot_alive_;  ///< tombstones in slot order
  std::vector<std::uint32_t> slot_of_;    ///< point index -> CSR slot
  /// rebuild() scratch (cell key, point index) kept for capacity reuse.
  std::vector<std::pair<CellKey, std::uint32_t>> keyed_;
};

template <typename Fn>
void GridIndex::for_each_within(Point query, double radius_m, Fn&& fn) const {
  // Hit buffer for one kernel call: cells are scanned in chunks of at
  // most kScanChunk slots so the buffers stay on the stack. Hits come
  // back in ascending slot order, which is exactly the visit order of
  // the pre-SIMD per-point loop.
  constexpr std::uint32_t kScanChunk = 256;
  std::uint32_t hit_slots[kScanChunk];
  double hit_d2[kScanChunk];
  const double r2 = radius_m * radius_m;
  const auto cx = static_cast<std::int32_t>(std::floor(query.x / cell_size_));
  const auto cy = static_cast<std::int32_t>(std::floor(query.y / cell_size_));
  const auto reach = static_cast<std::int32_t>(
      std::ceil(radius_m / cell_size_));
  for (std::int32_t dx = -reach; dx <= reach; ++dx) {
    for (std::int32_t dy = -reach; dy <= reach; ++dy) {
      const std::size_t cell = find_cell(pack(cx + dx, cy + dy));
      if (cell == keys_.size()) continue;
      std::uint32_t begin = starts_[cell];
      const std::uint32_t end = starts_[cell + 1];
      while (begin < end) {
        const std::uint32_t chunk_end =
            end - begin > kScanChunk ? begin + kScanChunk : end;
        const std::size_t hits = simd::scan_slots_within(
            slot_xs_.data(), slot_ys_.data(), slot_alive_.data(), begin,
            chunk_end, query.x, query.y, r2, hit_slots, hit_d2);
        for (std::size_t h = 0; h < hits; ++h) {
          fn(static_cast<std::size_t>(order_[hit_slots[h]]), hit_d2[h]);
        }
        begin = chunk_end;
      }
    }
  }
}

}  // namespace privlocad::geo
