// Uniform-grid spatial index over a fixed set of points.
//
// The de-obfuscation attack (paper Alg. 1) needs, for tens of thousands of
// users, "all check-ins within theta of this check-in" queries. A uniform
// grid with cell size equal to the query radius answers those in O(points
// in the 3x3 neighborhood), which makes the connectivity clustering linear
// in practice instead of quadratic.
//
// Storage is CSR-style rather than a hash map of buckets: point indices
// are grouped by cell in one flat array (`order_`), with a sorted unique
// cell-key array (`keys_`) and an offsets array (`starts_`) addressing the
// groups. Queries binary-search the 3x3 neighbor keys and then walk
// contiguous memory -- this is the attack's inner loop over every check-in
// pair, and the flat layout removes the per-bucket allocations and hash
// probing of the previous unordered_map design.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::geo {

/// Immutable index over a point set; build once, query many times.
class GridIndex {
 public:
  /// Indexes `points` with grid cells of side `cell_size_m` (> 0).
  /// The referenced vector is copied; indices returned by queries refer to
  /// positions in that original vector.
  GridIndex(std::vector<Point> points, double cell_size_m);

  /// Indices of all points p with distance(p, query) <= radius_m.
  /// `radius_m` may exceed the cell size (more cells are scanned).
  std::vector<std::size_t> within(Point query, double radius_m) const;

  /// Calls `fn(index, distance_squared)` for each point within `radius_m`
  /// of `query`, avoiding the result-vector allocation on hot paths. The
  /// already-computed squared distance is handed to the callback so strict
  /// (< threshold) filters do not recompute it.
  template <typename Fn>
  void for_each_within(Point query, double radius_m, Fn&& fn) const;

  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

 private:
  using CellKey = std::uint64_t;

  CellKey key_for(Point p) const;
  static CellKey pack(std::int32_t cx, std::int32_t cy);
  /// Position of `key` in keys_, or keys_.size() when absent.
  std::size_t find_cell(CellKey key) const;

  std::vector<Point> points_;
  double cell_size_;
  std::vector<CellKey> keys_;          ///< sorted unique occupied cells
  std::vector<std::uint32_t> starts_;  ///< keys_.size()+1 offsets into order_
  std::vector<std::uint32_t> order_;   ///< point indices grouped by cell
};

template <typename Fn>
void GridIndex::for_each_within(Point query, double radius_m, Fn&& fn) const {
  const double r2 = radius_m * radius_m;
  const auto cx = static_cast<std::int32_t>(std::floor(query.x / cell_size_));
  const auto cy = static_cast<std::int32_t>(std::floor(query.y / cell_size_));
  const auto reach = static_cast<std::int32_t>(
      std::ceil(radius_m / cell_size_));
  for (std::int32_t dx = -reach; dx <= reach; ++dx) {
    for (std::int32_t dy = -reach; dy <= reach; ++dy) {
      const std::size_t cell = find_cell(pack(cx + dx, cy + dy));
      if (cell == keys_.size()) continue;
      for (std::uint32_t slot = starts_[cell]; slot < starts_[cell + 1];
           ++slot) {
        const std::size_t idx = order_[slot];
        const double d2 = distance_squared(points_[idx], query);
        if (d2 <= r2) fn(idx, d2);
      }
    }
  }
}

}  // namespace privlocad::geo
