// Uniform-grid spatial index over a fixed set of points.
//
// The de-obfuscation attack (paper Alg. 1) needs, for tens of thousands of
// users, "all check-ins within theta of this check-in" queries. A uniform
// grid with cell size equal to the query radius answers those in O(points
// in the 3x3 neighborhood), which makes the connectivity clustering linear
// in practice instead of quadratic.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::geo {

/// Immutable index over a point set; build once, query many times.
class GridIndex {
 public:
  /// Indexes `points` with grid cells of side `cell_size_m` (> 0).
  /// The referenced vector is copied; indices returned by queries refer to
  /// positions in that original vector.
  GridIndex(std::vector<Point> points, double cell_size_m);

  /// Indices of all points p with distance(p, query) <= radius_m.
  /// `radius_m` may exceed the cell size (more cells are scanned).
  std::vector<std::size_t> within(Point query, double radius_m) const;

  /// Calls `fn(index)` for each point within `radius_m` of `query`,
  /// avoiding the result-vector allocation on hot paths.
  template <typename Fn>
  void for_each_within(Point query, double radius_m, Fn&& fn) const;

  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

 private:
  using CellKey = std::uint64_t;

  CellKey key_for(Point p) const;
  static CellKey pack(std::int32_t cx, std::int32_t cy);

  std::vector<Point> points_;
  double cell_size_;
  std::unordered_map<CellKey, std::vector<std::size_t>> cells_;
};

template <typename Fn>
void GridIndex::for_each_within(Point query, double radius_m, Fn&& fn) const {
  const double r2 = radius_m * radius_m;
  const auto cx = static_cast<std::int32_t>(std::floor(query.x / cell_size_));
  const auto cy = static_cast<std::int32_t>(std::floor(query.y / cell_size_));
  const auto reach = static_cast<std::int32_t>(
      std::ceil(radius_m / cell_size_));
  for (std::int32_t dx = -reach; dx <= reach; ++dx) {
    for (std::int32_t dy = -reach; dy <= reach; ++dy) {
      const auto it = cells_.find(pack(cx + dx, cy + dy));
      if (it == cells_.end()) continue;
      for (const std::size_t idx : it->second) {
        if (distance_squared(points_[idx], query) <= r2) fn(idx);
      }
    }
  }
}

}  // namespace privlocad::geo
