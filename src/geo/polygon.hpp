// Simple polygons for areas targeting (paper Section II-A, the second
// geo-targeting category: advertisers target cities or administrative
// districts, i.e. polygonal regions rather than circles).
#pragma once

#include <vector>

#include "geo/bounding_box.hpp"
#include "geo/point.hpp"

namespace privlocad::geo {

/// A simple (non-self-intersecting) polygon given by its vertices in
/// order (either winding). At least 3 vertices required.
class Polygon {
 public:
  explicit Polygon(std::vector<Point> vertices);

  /// Even-odd (ray casting) containment; boundary points may go either
  /// way, as usual for floating-point polygons.
  bool contains(Point p) const;

  /// Absolute area via the shoelace formula, square meters.
  double area() const;

  /// Axis-aligned bounds (used to prune containment tests).
  const BoundingBox& bounds() const { return bounds_; }

  const std::vector<Point>& vertices() const { return vertices_; }

  /// Axis-aligned rectangle polygon helper.
  static Polygon rectangle(Point min_corner, Point max_corner);

  /// Regular n-gon approximating a circle (used by tests to cross-check
  /// area/containment against the exact circle).
  static Polygon regular(Point center, double radius, std::size_t sides);

 private:
  std::vector<Point> vertices_;
  BoundingBox bounds_;
};

}  // namespace privlocad::geo
