// Geographic coordinates and great-circle distance.
//
// The paper's dataset lives in a Shanghai bounding box (lat in [30.7, 31.4],
// lon in [121, 122]); at that span an equirectangular local projection
// (projection.hpp) is accurate to well under the 50 m clustering threshold,
// but the haversine distance here is exact and used to validate the
// projection in tests.
#pragma once

namespace privlocad::geo {

/// Mean Earth radius in meters (IUGG value), used by haversine.
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS-84 geographic coordinate in decimal degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend constexpr bool operator==(LatLon a, LatLon b) {
    return a.lat_deg == b.lat_deg && a.lon_deg == b.lon_deg;
  }
};

/// Great-circle (haversine) distance between two coordinates, in meters.
double haversine_distance(LatLon a, LatLon b);

/// Degrees-to-radians conversion.
double deg_to_rad(double degrees);

/// Radians-to-degrees conversion.
double rad_to_deg(double radians);

}  // namespace privlocad::geo
