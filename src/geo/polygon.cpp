#include "geo/polygon.hpp"

#include <cmath>
#include <numbers>

#include "util/validation.hpp"

namespace privlocad::geo {
namespace {

BoundingBox bounds_of(const std::vector<Point>& vertices) {
  BoundingBox box(vertices.front(), vertices.front());
  for (const Point& v : vertices) box = box.expanded_to(v);
  return box;
}

}  // namespace

Polygon::Polygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)),
      bounds_(vertices_.empty() ? BoundingBox({0, 0}, {0, 0})
                                : bounds_of(vertices_)) {
  util::require(vertices_.size() >= 3, "polygon needs at least 3 vertices");
}

bool Polygon::contains(Point p) const {
  if (!bounds_.contains(p)) return false;
  // Even-odd rule: count edge crossings of the ray towards +x.
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    const bool straddles = (a.y > p.y) != (b.y > p.y);
    if (straddles &&
        p.x < (b.x - a.x) * (p.y - a.y) / (b.y - a.y) + a.x) {
      inside = !inside;
    }
  }
  return inside;
}

double Polygon::area() const {
  double twice_area = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    twice_area += (vertices_[j].x + vertices_[i].x) *
                  (vertices_[j].y - vertices_[i].y);
  }
  return std::abs(twice_area) / 2.0;
}

Polygon Polygon::rectangle(Point min_corner, Point max_corner) {
  util::require(min_corner.x < max_corner.x && min_corner.y < max_corner.y,
                "rectangle corners are inverted or degenerate");
  return Polygon({min_corner,
                  {max_corner.x, min_corner.y},
                  max_corner,
                  {min_corner.x, max_corner.y}});
}

Polygon Polygon::regular(Point center, double radius, std::size_t sides) {
  util::require_positive(radius, "polygon radius");
  util::require(sides >= 3, "regular polygon needs at least 3 sides");
  std::vector<Point> vertices;
  vertices.reserve(sides);
  for (std::size_t i = 0; i < sides; ++i) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(i) /
                         static_cast<double>(sides);
    vertices.push_back(
        {center.x + radius * std::cos(angle),
         center.y + radius * std::sin(angle)});
  }
  return Polygon(std::move(vertices));
}

}  // namespace privlocad::geo
