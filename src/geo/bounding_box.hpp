// Axis-aligned bounding boxes, in both geographic and local coordinates.
// Used by the trace generator to confine synthetic users to the study area
// and by the grid index to size its buckets.
#pragma once

#include "geo/latlon.hpp"
#include "geo/point.hpp"

namespace privlocad::geo {

/// Axis-aligned box in the local metric plane. Degenerate (zero-area)
/// boxes are permitted; inverted bounds are rejected.
class BoundingBox {
 public:
  BoundingBox(Point min_corner, Point max_corner);

  Point min_corner() const { return min_; }
  Point max_corner() const { return max_; }
  double width() const { return max_.x - min_.x; }
  double height() const { return max_.y - min_.y; }

  bool contains(Point p) const;

  /// Clamps `p` to the box.
  Point clamp(Point p) const;

  /// Smallest box containing both this box and `p`.
  BoundingBox expanded_to(Point p) const;

 private:
  Point min_;
  Point max_;
};

/// Geographic box of the paper's Shanghai dataset:
/// lat in [30.7, 31.4], lon in [121, 122].
struct GeoBox {
  LatLon south_west;
  LatLon north_east;

  bool contains(LatLon p) const {
    return p.lat_deg >= south_west.lat_deg && p.lat_deg <= north_east.lat_deg &&
           p.lon_deg >= south_west.lon_deg && p.lon_deg <= north_east.lon_deg;
  }
};

/// The study-area box used throughout the paper's evaluation.
GeoBox shanghai_geo_box();

}  // namespace privlocad::geo
