#include "geo/grid_index.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::geo {

GridIndex::GridIndex(std::vector<Point> points, double cell_size_m)
    : points_(std::move(points)), cell_size_(cell_size_m) {
  util::require_positive(cell_size_m, "grid cell size");
  cells_.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cells_[key_for(points_[i])].push_back(i);
  }
}

GridIndex::CellKey GridIndex::key_for(Point p) const {
  return pack(static_cast<std::int32_t>(std::floor(p.x / cell_size_)),
              static_cast<std::int32_t>(std::floor(p.y / cell_size_)));
}

GridIndex::CellKey GridIndex::pack(std::int32_t cx, std::int32_t cy) {
  // Bias to unsigned so negative cells pack without sign-extension clashes.
  const auto ux = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(cx));
  const auto uy = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(cy));
  return (ux << 32) | uy;
}

std::vector<std::size_t> GridIndex::within(Point query,
                                           double radius_m) const {
  std::vector<std::size_t> result;
  for_each_within(query, radius_m,
                  [&result](std::size_t idx) { result.push_back(idx); });
  return result;
}

}  // namespace privlocad::geo
