#include "geo/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/validation.hpp"

namespace privlocad::geo {

GridIndex::GridIndex(std::vector<Point> points, double cell_size_m) {
  points_ = std::move(points);
  build_cells(cell_size_m);
}

void GridIndex::rebuild(const std::vector<Point>& points,
                        double cell_size_m) {
  points_.assign(points.begin(), points.end());
  build_cells(cell_size_m);
}

void GridIndex::build_cells(double cell_size_m) {
  util::require_positive(cell_size_m, "grid cell size");
  util::require(points_.size() <= std::numeric_limits<std::uint32_t>::max(),
                "GridIndex point count exceeds 32-bit addressing");
  cell_size_ = cell_size_m;

  // Sort point indices by cell key (ties by index, so bucket order is the
  // input order) and compress into CSR: unique keys + offsets + members.
  const std::size_t n = points_.size();
  keyed_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    keyed_[i] = {key_for(points_[i]), static_cast<std::uint32_t>(i)};
  }
  std::sort(keyed_.begin(), keyed_.end());

  order_.resize(n);
  slot_xs_.resize(n);
  slot_ys_.resize(n);
  slot_of_.resize(n);
  keys_.clear();
  starts_.clear();
  keys_.reserve(n / 2 + 1);
  starts_.reserve(n / 2 + 2);
  for (std::size_t i = 0; i < n; ++i) {
    if (keys_.empty() || keys_.back() != keyed_[i].first) {
      keys_.push_back(keyed_[i].first);
      starts_.push_back(static_cast<std::uint32_t>(i));
    }
    const std::uint32_t idx = keyed_[i].second;
    order_[i] = idx;
    // SoA coordinate spans in slot order feed the SIMD scan kernel with
    // contiguous loads; slot_of_ lets kill() maintain the slot-indexed
    // tombstones in O(1).
    slot_xs_[i] = points_[idx].x;
    slot_ys_[i] = points_[idx].y;
    slot_of_[idx] = static_cast<std::uint32_t>(i);
  }
  starts_.push_back(static_cast<std::uint32_t>(n));
  alive_.assign(n, 1);
  slot_alive_.assign(n, 1);
}

GridIndex::CellKey GridIndex::key_for(Point p) const {
  return pack(static_cast<std::int32_t>(std::floor(p.x / cell_size_)),
              static_cast<std::int32_t>(std::floor(p.y / cell_size_)));
}

GridIndex::CellKey GridIndex::pack(std::int32_t cx, std::int32_t cy) {
  // Bias to unsigned so negative cells pack without sign-extension clashes.
  const auto ux = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(cx));
  const auto uy = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(cy));
  return (ux << 32) | uy;
}

std::size_t GridIndex::find_cell(CellKey key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return keys_.size();
  return static_cast<std::size_t>(it - keys_.begin());
}

std::vector<std::size_t> GridIndex::within(Point query,
                                           double radius_m) const {
  std::vector<std::size_t> result;
  for_each_within(query, radius_m,
                  [&result](std::size_t idx, double) { result.push_back(idx); });
  return result;
}

}  // namespace privlocad::geo
