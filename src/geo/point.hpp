// Planar point in a local metric coordinate system.
//
// All privacy mechanisms, attacks, and utility metrics in this library
// operate on points whose coordinates are METERS in a local tangent plane
// (see geo/projection.hpp for the lat/lon <-> meters mapping). Using meters
// everywhere keeps the privacy parameters (r, sigma, thresholds) in the
// same unit the paper states them in.
#pragma once

#include <cmath>

namespace privlocad::geo {

/// A 2-D point/vector in meters. Plain value type with no invariant
/// (Core Guidelines C.2): kept as a struct with public members.
struct Point {
  double x = 0.0;  ///< meters east of the local origin
  double y = 0.0;  ///< meters north of the local origin

  friend constexpr Point operator+(Point a, Point b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(Point p, double s) {
    return {p.x * s, p.y * s};
  }
  friend constexpr Point operator*(double s, Point p) { return p * s; }
  friend constexpr Point operator/(Point p, double s) {
    return {p.x / s, p.y / s};
  }
  friend constexpr bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Euclidean distance in meters.
double distance(Point a, Point b);

/// Squared Euclidean distance; cheaper when only comparisons are needed.
double distance_squared(Point a, Point b);

/// Euclidean norm of the vector `p`.
double norm(Point p);

/// Arithmetic mean of a range of points. The range must be non-empty;
/// callers are expected to guard (the attack/clustering code always does).
template <typename Range>
Point centroid(const Range& points) {
  Point sum{};
  std::size_t count = 0;
  for (const Point& p : points) {
    sum = sum + p;
    ++count;
  }
  return sum / static_cast<double>(count);
}

}  // namespace privlocad::geo
