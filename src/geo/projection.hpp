// Equirectangular projection between WGS-84 lat/lon and a local metric
// tangent plane anchored at a reference coordinate.
//
// Why equirectangular: the whole pipeline (mechanisms, attack, utilities)
// is defined on Euclidean meters. Over a metropolitan extent (the paper's
// Shanghai box is ~78 km x ~95 km) the equirectangular approximation's
// distance error stays below ~0.3%, far inside every threshold the paper
// uses (50 m clustering, 200 m attack-success radius, 500-800 m geo-IND r).
// Tests cross-check projected Euclidean distance against haversine.
#pragma once

#include "geo/latlon.hpp"
#include "geo/point.hpp"

namespace privlocad::geo {

/// Projects coordinates to/from a local plane centered on `origin`.
/// x grows east, y grows north, both in meters.
class LocalProjection {
 public:
  /// `origin` becomes the plane's (0, 0). Its latitude fixes the
  /// cos(lat) scale used for the east-west axis.
  explicit LocalProjection(LatLon origin);

  /// Maps a geographic coordinate into the local plane.
  Point to_local(LatLon geo) const;

  /// Maps a local point back to geographic coordinates.
  LatLon to_geo(Point local) const;

  LatLon origin() const { return origin_; }

 private:
  LatLon origin_;
  double cos_lat_;          // cos(origin latitude)
  double meters_per_deg_;   // meters per degree of latitude
};

/// Projection anchored at the centre of the paper's Shanghai study area
/// (lat in [30.7, 31.4], lon in [121, 122]).
LocalProjection shanghai_projection();

}  // namespace privlocad::geo
