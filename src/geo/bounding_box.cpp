#include "geo/bounding_box.hpp"

#include <algorithm>

#include "util/validation.hpp"

namespace privlocad::geo {

BoundingBox::BoundingBox(Point min_corner, Point max_corner)
    : min_(min_corner), max_(max_corner) {
  util::require(min_.x <= max_.x && min_.y <= max_.y,
                "bounding box corners are inverted");
}

bool BoundingBox::contains(Point p) const {
  return p.x >= min_.x && p.x <= max_.x && p.y >= min_.y && p.y <= max_.y;
}

Point BoundingBox::clamp(Point p) const {
  return {std::clamp(p.x, min_.x, max_.x), std::clamp(p.y, min_.y, max_.y)};
}

BoundingBox BoundingBox::expanded_to(Point p) const {
  return BoundingBox({std::min(min_.x, p.x), std::min(min_.y, p.y)},
                     {std::max(max_.x, p.x), std::max(max_.y, p.y)});
}

GeoBox shanghai_geo_box() {
  return GeoBox{LatLon{30.7, 121.0}, LatLon{31.4, 122.0}};
}

}  // namespace privlocad::geo
