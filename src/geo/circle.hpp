// Circles and circle-circle intersection area.
//
// The paper's utilization rate (Definition 4) is the area fraction
// |AOI ∩ AOR| / |AOI| where AOI and AOR are circles of the same targeting
// radius R centered at the true and the obfuscated location. We implement
// the general two-circle lens-area formula so the utility module can also
// evaluate asymmetric radii (used by the ablation benches).
#pragma once

#include "geo/point.hpp"

namespace privlocad::geo {

/// A circle in the local metric plane. Radius must be >= 0; enforced by
/// the constructor so downstream area formulas never see negatives.
class Circle {
 public:
  Circle(Point center, double radius_m);

  Point center() const { return center_; }
  double radius() const { return radius_; }

  /// Area in square meters.
  double area() const;

  /// True if `p` lies inside or on the circle.
  bool contains(Point p) const;

 private:
  Point center_;
  double radius_;
};

/// Exact area of the intersection (lens) of two circles, in square meters.
/// Handles the disjoint (0) and fully-contained (area of the smaller) cases.
double intersection_area(const Circle& a, const Circle& b);

/// Utilization rate of `aoi` given `aor`: intersection_area / aoi.area().
/// Returns 1.0 when the circles coincide; requires aoi.radius() > 0.
double overlap_fraction(const Circle& aoi, const Circle& aor);

}  // namespace privlocad::geo
