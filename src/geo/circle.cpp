#include "geo/circle.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/validation.hpp"

namespace privlocad::geo {

Circle::Circle(Point center, double radius_m)
    : center_(center), radius_(radius_m) {
  util::require_non_negative(radius_m, "circle radius");
}

double Circle::area() const { return std::numbers::pi * radius_ * radius_; }

bool Circle::contains(Point p) const {
  return distance_squared(center_, p) <= radius_ * radius_;
}

double intersection_area(const Circle& a, const Circle& b) {
  const double d = distance(a.center(), b.center());
  const double r1 = a.radius();
  const double r2 = b.radius();

  if (d >= r1 + r2) return 0.0;                   // disjoint
  if (d <= std::abs(r1 - r2)) {                   // one inside the other
    const double r = std::min(r1, r2);
    return std::numbers::pi * r * r;
  }

  // General lens: sum of the two circular segments cut by the radical line.
  const double d1 = (d * d + r1 * r1 - r2 * r2) / (2.0 * d);
  const double d2 = d - d1;
  const double seg1 =
      r1 * r1 * std::acos(std::clamp(d1 / r1, -1.0, 1.0)) -
      d1 * std::sqrt(std::max(0.0, r1 * r1 - d1 * d1));
  const double seg2 =
      r2 * r2 * std::acos(std::clamp(d2 / r2, -1.0, 1.0)) -
      d2 * std::sqrt(std::max(0.0, r2 * r2 - d2 * d2));
  return seg1 + seg2;
}

double overlap_fraction(const Circle& aoi, const Circle& aor) {
  util::require_positive(aoi.radius(), "AOI radius");
  return intersection_area(aoi, aor) / aoi.area();
}

}  // namespace privlocad::geo
