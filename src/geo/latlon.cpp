#include "geo/latlon.hpp"

#include <cmath>
#include <numbers>

namespace privlocad::geo {

double deg_to_rad(double degrees) {
  return degrees * std::numbers::pi / 180.0;
}

double rad_to_deg(double radians) {
  return radians * 180.0 / std::numbers::pi;
}

double haversine_distance(LatLon a, LatLon b) {
  const double phi1 = deg_to_rad(a.lat_deg);
  const double phi2 = deg_to_rad(b.lat_deg);
  const double dphi = phi2 - phi1;
  const double dlambda = deg_to_rad(b.lon_deg - a.lon_deg);

  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlambda = std::sin(dlambda / 2.0);
  const double h = sin_dphi * sin_dphi +
                   std::cos(phi1) * std::cos(phi2) * sin_dlambda * sin_dlambda;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

}  // namespace privlocad::geo
