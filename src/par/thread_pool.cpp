#include "par/thread_pool.hpp"

#include <cstdlib>
#include <exception>
#include <string>

#include "obs/metrics.hpp"
#include "util/validation.hpp"

namespace privlocad::par {
namespace {

// Set for the lifetime of a worker thread and around caller-helped task
// runs: any for_each_index issued from inside a task runs serially inline,
// so nested parallelism can never deadlock on a full pool.
thread_local bool tl_in_pool_task = false;

}  // namespace

std::size_t hardware_threads() {
  if (const char* env = std::getenv("PRIVLOCAD_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

std::size_t default_grain(std::size_t items, std::size_t threads) {
  const std::size_t chunks = threads * 4;
  const std::size_t grain = items / (chunks == 0 ? 1 : chunks);
  return grain == 0 ? 1 : grain;
}

ThreadPool::ThreadPool(std::size_t threads) : thread_count_(threads) {
  util::require(threads >= 1, "ThreadPool needs at least one thread");
  const std::size_t workers = threads - 1;
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token stop) { worker_loop(stop, i); });
  }
}

ThreadPool::~ThreadPool() {
  for (std::jthread& w : workers_) w.request_stop();
  {
    // Pairing the notify with the lock closes the race against a worker
    // that checked the predicate but has not yet gone to sleep.
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  sleep_cv_.notify_all();
  // jthread joins on destruction.
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

PoolStats ThreadPool::stats() const {
  PoolStats stats;
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.queue_depth = pending_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadPool::export_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) const {
  const PoolStats snapshot = stats();
  registry.gauge(prefix + "tasks_executed")
      .set(static_cast<double>(snapshot.tasks_executed));
  registry.gauge(prefix + "steals")
      .set(static_cast<double>(snapshot.steals));
  registry.gauge(prefix + "queue_depth")
      .set(static_cast<double>(snapshot.queue_depth));
}

void ThreadPool::submit(std::function<void()> task) {
  if (queues_.empty()) {
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t slot = next_queue_.fetch_add(1) % queues_.size();
  {
    const std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  {
    // pending_ moves under sleep_mutex_ so a worker that just saw 0 in the
    // wait predicate cannot miss this increment (classic lost-wakeup race).
    const std::lock_guard<std::mutex> lock(sleep_mutex_);
    pending_.fetch_add(1);
  }
  sleep_cv_.notify_one();
}

std::function<void()> ThreadPool::take_task(std::size_t self) {
  // Own deque first, newest task (LIFO keeps the working set hot) ...
  {
    Worker& own = *queues_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      auto task = std::move(own.tasks.back());
      own.tasks.pop_back();
      pending_.fetch_sub(1);
      return task;
    }
  }
  // ... then steal the oldest task from a sibling (FIFO end).
  for (std::size_t hop = 1; hop < queues_.size(); ++hop) {
    Worker& victim = *queues_[(self + hop) % queues_.size()];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      auto task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return {};
}

bool ThreadPool::try_run_one() {
  for (std::size_t slot = 0; slot < queues_.size(); ++slot) {
    std::function<void()> task;
    {
      Worker& victim = *queues_[slot];
      const std::lock_guard<std::mutex> lock(victim.mutex);
      if (victim.tasks.empty()) continue;
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
    }
    pending_.fetch_sub(1);
    const bool was_in_task = tl_in_pool_task;
    tl_in_pool_task = true;
    task();
    tl_in_pool_task = was_in_task;
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::stop_token stop, std::size_t self) {
  tl_in_pool_task = true;
  while (true) {
    if (auto task = take_task(self)) {
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    const bool have_work = sleep_cv_.wait(lock, stop, [this] {
      return pending_.load() > 0;
    });
    if (!have_work) return;  // stop requested, queues drained
  }
}

void ThreadPool::for_each_index(std::size_t begin, std::size_t end,
                                std::size_t grain,
                                const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  util::require(grain >= 1, "for_each_index grain must be >= 1");
  const std::size_t count = end - begin;
  if (thread_count_ == 1 || tl_in_pool_task || count <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  struct LoopState {
    std::atomic<std::size_t> remaining;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
  };
  auto state = std::make_shared<LoopState>();
  const std::size_t tasks = (count + grain - 1) / grain;
  state->remaining.store(tasks);

  for (std::size_t t = 0; t < tasks; ++t) {
    const std::size_t lo = begin + t * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    // `fn` outlives the loop because the caller blocks below until every
    // task finished; `state` is shared so stragglers stay valid.
    submit([state, &fn, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->remaining.fetch_sub(1) == 1) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        state->done_cv.notify_all();
      }
    });
  }

  // The caller is a full lane: drain queued chunks instead of idling.
  while (state->remaining.load() > 0) {
    if (try_run_one()) continue;
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock,
                        [&] { return state->remaining.load() == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace privlocad::par
