// Fixed-size work-stealing thread pool.
//
// The paper's scalability evaluation (Tables II/III) assumes one edge
// platform serves tens of thousands of users, and the de-obfuscation attack
// (Fig. 6) scores 37k users independently -- both are embarrassingly
// parallel across users. This pool is the repo's single parallel substrate:
// per-worker deques (owners pop LIFO for cache locality, thieves steal FIFO
// so the oldest -- usually biggest -- chunks migrate), std::jthread workers,
// and a blocking for_each_index that lets the calling thread help drain the
// queues instead of idling.
//
// Determinism contract: every parallel helper in this repo writes results
// into per-index slots and derives per-item randomness by seed-splitting
// (rng::Engine::split(item_index)), so the OUTPUT of a parallel run is
// byte-identical to the serial run regardless of scheduling. threads == 1
// (or PRIVLOCAD_THREADS=1) additionally forces fully serial EXECUTION,
// which tests use as the reference ordering.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace privlocad::obs {
class MetricsRegistry;
}

namespace privlocad::par {

/// Worker count the global pool uses: the PRIVLOCAD_THREADS environment
/// variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1).
std::size_t hardware_threads();

/// Cumulative execution counters for one pool (since construction).
struct PoolStats {
  std::uint64_t tasks_executed = 0;  ///< tasks run to completion
  std::uint64_t steals = 0;          ///< tasks taken from a sibling deque
  std::size_t queue_depth = 0;       ///< tasks queued right now
};

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread is the remaining
  /// lane: it helps drain queues inside for_each_index). threads >= 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallel lanes including the caller; 1 means fully serial.
  std::size_t thread_count() const { return thread_count_; }

  /// Enqueues a fire-and-forget task (round-robin across worker deques).
  /// With thread_count() == 1 the task runs inline before returning.
  void submit(std::function<void()> task);

  /// Runs `fn(i)` for every i in [begin, end), `grain` indices per task,
  /// and blocks until all of them completed. The caller participates in
  /// the work. Nested calls from inside a pool task run serially inline
  /// (no deadlock, same results). Exceptions from `fn` are rethrown to
  /// the caller after the loop drains (first one wins).
  void for_each_index(std::size_t begin, std::size_t end, std::size_t grain,
                      const std::function<void(std::size_t)>& fn);

  /// Snapshot of the pool's execution counters (relaxed reads; exact once
  /// the pool is quiescent).
  PoolStats stats() const;

  /// Publishes stats() into `registry` as gauges named
  /// `<prefix>tasks_executed`, `<prefix>steals`, `<prefix>queue_depth`.
  void export_metrics(obs::MetricsRegistry& registry,
                      const std::string& prefix = "pool.") const;

  /// Process-wide pool sized by hardware_threads() at first use.
  static ThreadPool& global();

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::stop_token stop, std::size_t self);
  /// Pops from own deque (back) or steals (front); empty when none found.
  std::function<void()> take_task(std::size_t self);
  /// Runs one queued task if any is available; used by helping callers.
  bool try_run_one();

  std::size_t thread_count_;
  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::jthread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable_any sleep_cv_;  // stop_token-aware worker sleep
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
};

/// Chunk size that keeps every lane busy without drowning in task
/// bookkeeping: ~4 chunks per lane, at least 1.
std::size_t default_grain(std::size_t items, std::size_t threads);

}  // namespace privlocad::par
