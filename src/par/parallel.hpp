// Deterministic data-parallel helpers over a ThreadPool.
//
// parallel_map writes each result into its own pre-sized slot, so result
// ORDER never depends on scheduling; combined with per-item seed-splitting
// (rng::Engine::split(index)) the full output is byte-identical across
// thread counts. That contract is what lets the attack/serving benches
// compare "same numbers, less wall-clock" across PRIVLOCAD_THREADS values.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "par/thread_pool.hpp"

namespace privlocad::par {

/// Runs fn(i) for i in [begin, end) on `pool`, `grain` indices per task.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  pool.for_each_index(begin, end, grain,
                      [&fn](std::size_t i) { fn(i); });
}

/// Auto-grained variant (~4 chunks per lane).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Fn&& fn) {
  const std::size_t count = end > begin ? end - begin : 0;
  parallel_for(pool, begin, end, default_grain(count, pool.thread_count()),
               std::forward<Fn>(fn));
}

/// Global-pool convenience.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  parallel_for(ThreadPool::global(), begin, end, std::forward<Fn>(fn));
}

/// Maps fn(item, index) over `items`; results land at the same index as
/// their input (deterministic ordering regardless of scheduling). The
/// result type must be default-constructible.
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, Fn&& fn)
    -> std::vector<
        std::decay_t<std::invoke_result_t<Fn&, const T&, std::size_t>>> {
  using Result =
      std::decay_t<std::invoke_result_t<Fn&, const T&, std::size_t>>;
  std::vector<Result> results(items.size());
  parallel_for(pool, 0, items.size(),
               [&](std::size_t i) { results[i] = fn(items[i], i); });
  return results;
}

/// Global-pool convenience.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn) {
  return parallel_map(ThreadPool::global(), items, std::forward<Fn>(fn));
}

}  // namespace privlocad::par
