// Deterministic, splittable random engine.
//
// Why not std::mt19937_64 directly: the bench harness runs 100,000-trial
// Monte-Carlo sweeps per parameter point (as the paper does) across many
// independent users, and we want (a) cheap per-user sub-streams that are
// statistically independent and reproducible regardless of evaluation
// order, (b) a small state for copies. xoshiro256++ seeded via SplitMix64
// provides both and passes BigCrush.
//
// The engine satisfies std::uniform_random_bit_generator, so it composes
// with <random> distributions where convenient, but all samplers in this
// library (rng/samplers.hpp) use explicit inverse-CDF transforms so results
// are bit-reproducible across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>

namespace privlocad::rng {

/// xoshiro256++ engine with SplitMix64 seeding.
class Engine {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// as recommended by the xoshiro authors.
  explicit Engine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()();

  /// Derives an independent child engine. Deterministic: the same (parent
  /// seed, stream_id) pair always yields the same child stream. Used to give
  /// every synthetic user / trial its own reproducible randomness.
  Engine split(std::uint64_t stream_id) const;

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double uniform();

  /// Uniform double in (0, 1]; never returns 0 (safe for log()).
  double uniform_positive();

  /// Uniform double in [lo, hi); requires lo < hi.
  double uniform_in(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

 private:
  std::array<std::uint64_t, 4> state_;
  std::uint64_t seed_;  // retained so split() can derive children
};

/// SplitMix64 step; exposed for tests and for hashing stream ids.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace privlocad::rng
