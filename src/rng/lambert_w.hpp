// Lambert W function, branches 0 and -1, for real arguments.
//
// The planar Laplace mechanism of Andrés et al. (CCS 2013) — the "one-time
// geo-IND" mechanism the paper attacks — samples its radius by inverting
// the radial CDF C(r) = 1 - (1 + eps*r) * exp(-eps*r), whose inverse is
//   r = -(1/eps) * ( W_{-1}((p - 1)/e) + 1 ).
// No standard-library Lambert W exists, so we implement both real branches
// with analytic initial guesses refined by Halley iteration; accuracy is
// verified in tests against the defining identity W(x) e^{W(x)} = x.
#pragma once

namespace privlocad::rng {

/// Principal branch W0(x), defined for x >= -1/e. Throws InvalidArgument
/// outside the domain.
double lambert_w0(double x);

/// Branch W-1(x), defined for x in [-1/e, 0). Throws InvalidArgument
/// outside the domain.
double lambert_wm1(double x);

}  // namespace privlocad::rng
