// Ziggurat standard-normal sampler (Marsaglia & Tsang 2000).
//
// The inverse-CDF sampler in rng/samplers.hpp pays an erfc + exp + sqrt
// per variate; at population scale (every synthetic check-in jitter and
// every n-fold mechanism release draws Gaussians) the sampler dominates
// the hot loops. The ziggurat covers the density with 128 equal-area
// horizontal strips so ~98.8% of draws cost one engine() call, one table
// compare, and one multiply; only wedge and tail draws (~1.2%) touch a
// transcendental. Layer index, sign, and the 52-bit mantissa all come
// from ONE 64-bit engine draw, taken from non-overlapping bit ranges
// (unlike the original 32-bit code, where the layer bits alias the low
// magnitude bits).
//
// The stream is deterministic per engine seed but DIFFERENT from the
// inverse-CDF stream: a ziggurat variate consumes one engine draw on the
// fast path and a variable number on wedge/tail rejections, while the
// inverse-CDF path always consumes exactly one. See rng/samplers.hpp for
// the sampler-selection switch and the determinism contract.
#pragma once

#include <span>

#include "rng/engine.hpp"

namespace privlocad::rng {

/// One standard-normal variate via the 128-layer ziggurat.
double standard_normal_ziggurat(Engine& engine);

/// Fills `out` with i.i.d. standard-normal variates via the ziggurat.
/// Batched form of standard_normal_ziggurat: hoists the table lookup and
/// keeps the rejection loop branch-predictable across the whole span.
void fill_standard_normal_ziggurat(Engine& engine, std::span<double> out);

}  // namespace privlocad::rng
