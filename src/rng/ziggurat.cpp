#include "rng/ziggurat.hpp"

#include <cmath>
#include <cstdint>

namespace privlocad::rng {
namespace {

// 128 equal-area layers; constants from Marsaglia & Tsang (2000):
// kR is the right edge of the base strip, kV the common strip area.
constexpr int kLayers = 128;
constexpr double kR = 3.442619855899;
constexpr double kV = 9.91256303526217e-3;
// The signed mantissa spans [-2^51, 2^51); kM converts it to [-1, 1).
constexpr double kM = 2251799813685248.0;  // 2^51

/// Per-layer tables: k is the fast-accept threshold on |mantissa|, w the
/// mantissa-to-x scale, f the density at the layer edge. Built once on
/// first use (thread-safe magic static); the recurrence is the published
/// setup evaluated in double precision.
struct Tables {
  std::uint64_t k[kLayers];
  double w[kLayers];
  double f[kLayers];

  Tables() {
    double dn = kR;
    double tn = kR;
    const double q = kV / std::exp(-0.5 * kR * kR);
    k[0] = static_cast<std::uint64_t>((dn / q) * kM);
    k[1] = 0;
    w[0] = q / kM;
    w[kLayers - 1] = dn / kM;
    f[0] = 1.0;
    f[kLayers - 1] = std::exp(-0.5 * dn * dn);
    for (int i = kLayers - 2; i >= 1; --i) {
      dn = std::sqrt(-2.0 * std::log(kV / dn + std::exp(-0.5 * dn * dn)));
      k[i + 1] = static_cast<std::uint64_t>((dn / tn) * kM);
      tn = dn;
      f[i] = std::exp(-0.5 * dn * dn);
      w[i] = dn / kM;
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

/// Layer (low 7 bits) and signed 52-bit mantissa (bits 8..59) from one
/// engine draw. The bit ranges are disjoint, so layer choice and
/// magnitude are independent.
inline std::int64_t signed_mantissa(std::uint64_t bits) {
  return static_cast<std::int64_t>((bits >> 8) &
                                   ((std::uint64_t{1} << 52) - 1)) -
         (std::int64_t{1} << 51);
}

/// Wedge/tail handling for a draw that missed the fast accept.
double sample_slow(Engine& engine, const Tables& t, std::int64_t hz,
                   std::size_t layer) {
  for (;;) {
    if (layer == 0) {
      // Base strip beyond kR: sample the tail by the standard
      // exponential-rejection scheme (Marsaglia 1964).
      double x;
      double y;
      do {
        x = -std::log(engine.uniform_positive()) / kR;
        y = -std::log(engine.uniform_positive());
      } while (y + y < x * x);
      return hz > 0 ? kR + x : -(kR + x);
    }
    const double x = static_cast<double>(hz) * t.w[layer];
    // Wedge between the layer rectangle and the density curve.
    if (t.f[layer] + engine.uniform() * (t.f[layer - 1] - t.f[layer]) <
        std::exp(-0.5 * x * x)) {
      return x;
    }
    const std::uint64_t bits = engine();
    layer = bits & (kLayers - 1);
    hz = signed_mantissa(bits);
    const std::uint64_t abs_hz =
        static_cast<std::uint64_t>(hz < 0 ? -hz : hz);
    if (abs_hz < t.k[layer]) return static_cast<double>(hz) * t.w[layer];
  }
}

inline double sample(Engine& engine, const Tables& t) {
  const std::uint64_t bits = engine();
  const std::size_t layer = bits & (kLayers - 1);
  const std::int64_t hz = signed_mantissa(bits);
  const std::uint64_t abs_hz =
      static_cast<std::uint64_t>(hz < 0 ? -hz : hz);
  if (abs_hz < t.k[layer]) return static_cast<double>(hz) * t.w[layer];
  return sample_slow(engine, t, hz, layer);
}

}  // namespace

double standard_normal_ziggurat(Engine& engine) {
  return sample(engine, tables());
}

void fill_standard_normal_ziggurat(Engine& engine, std::span<double> out) {
  const Tables& t = tables();
  for (double& z : out) z = sample(engine, t);
}

}  // namespace privlocad::rng
