// Samplers for every distribution the paper's mechanisms use.
//
// All planar samplers follow the paper's polar-coordinates recipe
// (Section V-C, Eq. 12-16): draw an angle theta ~ U[0, 2*pi), draw a radius
// by inverting the radial CDF, and emit (r cos theta, r sin theta). Keeping
// the transforms explicit (rather than delegating to <random>) makes every
// sampled stream bit-reproducible across platforms and lets tests validate
// the exact formulas from the paper.
//
// GAUSSIAN SAMPLER SELECTION. Standard-normal draws (and the 2-D Gaussian
// noise built from them) go through one of two interchangeable samplers:
//
//   - NormalSampler::kZiggurat (default): the Marsaglia-Tsang ziggurat
//     (rng/ziggurat.hpp). ~1 engine draw and no transcendentals per
//     variate on the fast path; the population-scale hot paths (trace
//     jitter, n-fold releases) run on this one.
//   - NormalSampler::kInverseCdf: the original probit inversion
//     (normal_quantile of a uniform). Exactly one engine draw per
//     variate; reproduces this repo's pre-ziggurat streams bit-for-bit.
//
// Both samplers produce exactly N(0, 1) marginals; they differ only in
// speed and in WHICH pseudo-random sequence a given seed yields.
// Determinism contract: a fixed seed plus a fixed sampler choice always
// reproduces identical traces, tables, and attack results. Switching the
// sampler switches the stream, so goldens recorded under one sampler only
// replay under that sampler. Select at startup with PRIVLOCAD_SAMPLER
// ("ziggurat" | "icdf"), or programmatically via
// set_default_normal_sampler().
#pragma once

#include <span>

#include "geo/point.hpp"
#include "rng/engine.hpp"

namespace privlocad::rng {

/// Which standard-normal sampler the process uses (see file comment).
enum class NormalSampler {
  kZiggurat,    ///< Marsaglia-Tsang ziggurat: fastest, default
  kInverseCdf,  ///< probit inversion: legacy stream, one draw per variate
};

/// The process-wide sampler. Initialized once from PRIVLOCAD_SAMPLER
/// ("ziggurat" or "icdf"/"inverse-cdf"; default ziggurat).
NormalSampler default_normal_sampler();

/// Overrides the process-wide sampler (tests and A/B benches). Takes
/// effect for all subsequent draws; not intended to be flipped
/// mid-experiment (the stream changes where it flips).
void set_default_normal_sampler(NormalSampler sampler);

/// Standard normal variate through the selected sampler.
double standard_normal(Engine& engine);

/// N(mean, sigma^2) variate; requires sigma >= 0.
double normal(Engine& engine, double mean, double sigma);

/// Inverse of the standard normal CDF (probit). Domain (0, 1).
/// (Acklam's rational approximation, |error| < 1.15e-9, refined by one
/// Halley step to full double precision.)
double normal_quantile(double p);

/// Fills `out` with i.i.d. standard normal variates through the selected
/// sampler. This is the batched API the hot loops use: the ziggurat body
/// is inlined once per span instead of once per call site, and callers
/// can reuse one buffer across batches.
void fill_standard_normal(Engine& engine, std::span<double> out);

/// Same, with an explicit sampler choice (A/B benches, equivalence tests).
void fill_standard_normal(Engine& engine, std::span<double> out,
                          NormalSampler sampler);

/// Polar 2-D Gaussian noise vector with per-axis standard deviation
/// `sigma`. Under the ziggurat sampler this is a PAIR of independent
/// draws (x, y) = sigma * (z1, z2); under the inverse-CDF sampler it is
/// exactly the paper's Algorithm 3 polar sampler (theta uniform, radius
/// from the Rayleigh inverse CDF), preserving the legacy stream. Both
/// yield i.i.d. N(0, sigma^2) marginals on x and y.
geo::Point gaussian_noise(Engine& engine, double sigma);

/// 2-D Gaussian noise as paired standard-normal draws through the
/// selected sampler: (sigma * z1, sigma * z2).
geo::Point gaussian_noise_2d(Engine& engine, double sigma);

/// Fills `out` with `center + sigma * (z1, z2)` noise points in one
/// batched pass -- the n-fold mechanism's release loop. Under the
/// ziggurat sampler the 2*n variates come from one
/// fill_standard_normal pass over a per-thread sample buffer; under the
/// inverse-CDF sampler each point uses the legacy polar recipe so the
/// per-point stream matches gaussian_noise exactly.
void fill_gaussian_noise_2d(Engine& engine, double sigma,
                            std::span<geo::Point> out,
                            geo::Point center = {});

/// Radial inverse CDF of the 2-D Gaussian (Rayleigh quantile):
/// F_R^{-1}(s) = sigma * sqrt(-2 ln(1 - s)), s in [0, 1).
double rayleigh_quantile(double s, double sigma);

/// Planar Laplace noise with privacy parameter `epsilon` (1/m), as in
/// Andres et al. 2013: density proportional to exp(-epsilon * |noise|).
/// Radius sampled by inverting C(r) = 1 - (1 + eps r) e^{-eps r} via the
/// Lambert W function, branch -1.
geo::Point planar_laplace_noise(Engine& engine, double epsilon);

/// Radial inverse CDF of the planar Laplace distribution:
/// C^{-1}(p) = -(1/eps) * (W_{-1}((p - 1)/e) + 1), p in [0, 1).
double planar_laplace_radius_quantile(double p, double epsilon);

/// Radial CDF of the planar Laplace distribution (used by the attack to
/// compute the trimming radius r_alpha): C(r) = 1 - (1 + eps r) e^{-eps r}.
double planar_laplace_radius_cdf(double r, double epsilon);

/// Uniform point in the disk of radius `radius` centered at the origin
/// (area-uniform: radius sampled as R * sqrt(u)). Used by the paper's
/// naive post-processing baseline.
geo::Point uniform_in_disk(Engine& engine, double radius);

}  // namespace privlocad::rng
