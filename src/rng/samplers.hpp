// Inverse-CDF samplers for every distribution the paper's mechanisms use.
//
// All planar samplers follow the paper's polar-coordinates recipe
// (Section V-C, Eq. 12-16): draw an angle theta ~ U[0, 2*pi), draw a radius
// by inverting the radial CDF, and emit (r cos theta, r sin theta). Keeping
// the transforms explicit (rather than delegating to <random>) makes every
// sampled stream bit-reproducible across platforms and lets tests validate
// the exact formulas from the paper.
#pragma once

#include "geo/point.hpp"
#include "rng/engine.hpp"

namespace privlocad::rng {

/// Standard normal variate via inverse-CDF (Acklam's rational
/// approximation, |error| < 1.15e-9, refined by one Halley step).
double standard_normal(Engine& engine);

/// N(mean, sigma^2) variate; requires sigma >= 0.
double normal(Engine& engine, double mean, double sigma);

/// Inverse of the standard normal CDF (probit). Domain (0, 1).
double normal_quantile(double p);

/// Polar 2-D Gaussian noise vector with per-axis standard deviation
/// `sigma` — exactly the paper's Algorithm 3 sampler: theta uniform,
/// radius from the Rayleigh inverse CDF r = sigma * sqrt(-2 ln(1 - s)).
/// The result has i.i.d. N(0, sigma^2) marginals on x and y.
geo::Point gaussian_noise(Engine& engine, double sigma);

/// Radial inverse CDF of the 2-D Gaussian (Rayleigh quantile):
/// F_R^{-1}(s) = sigma * sqrt(-2 ln(1 - s)), s in [0, 1).
double rayleigh_quantile(double s, double sigma);

/// Planar Laplace noise with privacy parameter `epsilon` (1/m), as in
/// Andres et al. 2013: density proportional to exp(-epsilon * |noise|).
/// Radius sampled by inverting C(r) = 1 - (1 + eps r) e^{-eps r} via the
/// Lambert W function, branch -1.
geo::Point planar_laplace_noise(Engine& engine, double epsilon);

/// Radial inverse CDF of the planar Laplace distribution:
/// C^{-1}(p) = -(1/eps) * (W_{-1}((p - 1)/e) + 1), p in [0, 1).
double planar_laplace_radius_quantile(double p, double epsilon);

/// Radial CDF of the planar Laplace distribution (used by the attack to
/// compute the trimming radius r_alpha): C(r) = 1 - (1 + eps r) e^{-eps r}.
double planar_laplace_radius_cdf(double r, double epsilon);

/// Uniform point in the disk of radius `radius` centered at the origin
/// (area-uniform: radius sampled as R * sqrt(u)). Used by the paper's
/// naive post-processing baseline.
geo::Point uniform_in_disk(Engine& engine, double radius);

}  // namespace privlocad::rng
