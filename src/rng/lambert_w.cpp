#include "rng/lambert_w.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::rng {
namespace {

constexpr double kInvE = 0.36787944117144232159;  // 1/e
constexpr int kMaxIterations = 64;
constexpr double kTolerance = 1e-14;

/// One Halley step for f(w) = w e^w - x.
double halley_step(double w, double x) {
  const double ew = std::exp(w);
  const double f = w * ew - x;
  const double denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
  return w - f / denom;
}

double refine(double w, double x) {
  for (int i = 0; i < kMaxIterations; ++i) {
    const double next = halley_step(w, x);
    if (std::abs(next - w) <= kTolerance * (1.0 + std::abs(next))) {
      return next;
    }
    w = next;
  }
  return w;
}

}  // namespace

double lambert_w0(double x) {
  util::require(x >= -kInvE, "lambert_w0 domain is x >= -1/e");
  if (x == 0.0) return 0.0;

  double w;
  if (x < -kInvE + 1e-4) {
    // Series around the branch point x = -1/e: W = -1 + p - p^2/3 + ...
    const double p = std::sqrt(2.0 * (1.0 + std::exp(1.0) * x));
    w = -1.0 + p - p * p / 3.0;
  } else if (x < 3.0) {
    // log1p is a well-known coarse approximation to W0 near the origin;
    // Halley contracts from it everywhere on (-1/e, 3).
    w = std::log1p(x);
  } else {
    // Asymptotic guess: W ~ ln x - ln ln x.
    const double l1 = std::log(x);
    const double l2 = std::log(l1);
    w = l1 - l2 + l2 / l1;
  }
  return refine(w, x);
}

double lambert_wm1(double x) {
  util::require(x >= -kInvE && x < 0.0,
                "lambert_wm1 domain is -1/e <= x < 0");

  double w;
  if (x < -kInvE + 1e-4) {
    // Series around the branch point, lower sign: W = -1 - p - p^2/3 - ...
    const double p = std::sqrt(2.0 * (1.0 + std::exp(1.0) * x));
    w = -1.0 - p - p * p / 3.0;
  } else {
    // Asymptotic guess for x -> 0-: W ~ ln(-x) - ln(-ln(-x)).
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  }
  return refine(w, x);
}

}  // namespace privlocad::rng
