#include "rng/engine.hpp"

#include "util/validation.hpp"

namespace privlocad::rng {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Engine::Engine(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Engine::result_type Engine::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Engine Engine::split(std::uint64_t stream_id) const {
  // Mix the parent seed with the stream id through two SplitMix64 rounds so
  // adjacent stream ids land far apart in seed space.
  std::uint64_t sm = seed_ ^ (stream_id * 0xD2B74407B1CE6E93ULL);
  const std::uint64_t child_seed = splitmix64(sm) ^ splitmix64(sm);
  return Engine(child_seed);
}

double Engine::uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Engine::uniform_positive() {
  // (0, 1]: flip the half-open side so log(u) is always finite.
  return 1.0 - uniform();
}

double Engine::uniform_in(double lo, double hi) {
  util::require(lo < hi, "uniform_in requires lo < hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Engine::uniform_index(std::uint64_t n) {
  util::require(n > 0, "uniform_index requires n > 0");
  // Rejection sampling on the top bits to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return draw % n;
}

}  // namespace privlocad::rng
