#include "rng/samplers.hpp"

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <numbers>
#include <type_traits>
#include <vector>

#include "rng/lambert_w.hpp"
#include "rng/ziggurat.hpp"
#include "simd/kernels.hpp"
#include "util/validation.hpp"

namespace privlocad::rng {
namespace {

/// Acklam's rational approximation to the probit function.
double probit_approx(double p) {
  // Coefficients from Peter Acklam's algorithm (2003), public domain.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

NormalSampler sampler_from_env() {
  if (const char* env = std::getenv("PRIVLOCAD_SAMPLER")) {
    if (std::strcmp(env, "icdf") == 0 ||
        std::strcmp(env, "inverse-cdf") == 0 ||
        std::strcmp(env, "inverse_cdf") == 0) {
      return NormalSampler::kInverseCdf;
    }
  }
  return NormalSampler::kZiggurat;
}

std::atomic<NormalSampler>& sampler_slot() {
  static std::atomic<NormalSampler> slot{sampler_from_env()};
  return slot;
}

double standard_normal_inverse_cdf(Engine& engine) {
  return normal_quantile(engine.uniform_positive());
}

/// The paper's Algorithm 3 polar sampler; the inverse-CDF 2-D path keeps
/// exactly this draw order so legacy streams replay bit-for-bit.
geo::Point gaussian_noise_polar(Engine& engine, double sigma) {
  const double theta = engine.uniform_in(0.0, 2.0 * std::numbers::pi);
  const double r = rayleigh_quantile(engine.uniform(), sigma);
  return {r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace

NormalSampler default_normal_sampler() {
  return sampler_slot().load(std::memory_order_relaxed);
}

void set_default_normal_sampler(NormalSampler sampler) {
  sampler_slot().store(sampler, std::memory_order_relaxed);
}

double normal_quantile(double p) {
  util::require_unit_open(p, "normal_quantile argument");
  double x = probit_approx(p);
  // One Halley refinement against the exact CDF brings the error to
  // full double precision.
  const double e =
      0.5 * std::erfc(-x / std::numbers::sqrt2) - p;
  const double u =
      e * std::numbers::sqrt2 * std::sqrt(std::numbers::pi) *
      std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double standard_normal(Engine& engine) {
  if (default_normal_sampler() == NormalSampler::kZiggurat) {
    return standard_normal_ziggurat(engine);
  }
  return standard_normal_inverse_cdf(engine);
}

double normal(Engine& engine, double mean, double sigma) {
  util::require_non_negative(sigma, "normal sigma");
  return mean + sigma * standard_normal(engine);
}

void fill_standard_normal(Engine& engine, std::span<double> out,
                          NormalSampler sampler) {
  if (sampler == NormalSampler::kZiggurat) {
    fill_standard_normal_ziggurat(engine, out);
    return;
  }
  for (double& z : out) z = standard_normal_inverse_cdf(engine);
}

void fill_standard_normal(Engine& engine, std::span<double> out) {
  fill_standard_normal(engine, out, default_normal_sampler());
}

double rayleigh_quantile(double s, double sigma) {
  util::require(s >= 0.0 && s < 1.0, "rayleigh_quantile needs s in [0, 1)");
  util::require_non_negative(sigma, "rayleigh sigma");
  return sigma * std::sqrt(-2.0 * std::log1p(-s));
}

geo::Point gaussian_noise(Engine& engine, double sigma) {
  util::require_non_negative(sigma, "gaussian_noise sigma");
  if (default_normal_sampler() == NormalSampler::kZiggurat) {
    return {sigma * standard_normal_ziggurat(engine),
            sigma * standard_normal_ziggurat(engine)};
  }
  return gaussian_noise_polar(engine, sigma);
}

geo::Point gaussian_noise_2d(Engine& engine, double sigma) {
  util::require_non_negative(sigma, "gaussian_noise_2d sigma");
  return {sigma * standard_normal(engine), sigma * standard_normal(engine)};
}

void fill_gaussian_noise_2d(Engine& engine, double sigma,
                            std::span<geo::Point> out, geo::Point center) {
  util::require_non_negative(sigma, "fill_gaussian_noise_2d sigma");
  if (default_normal_sampler() == NormalSampler::kZiggurat) {
    // Per-thread sample buffer: one flat ziggurat pass produces the 2n
    // variates, then one pairing pass scales and offsets. The buffer
    // grows to the largest batch this thread has seen and is reused.
    // The pairing pass is the SIMD noise kernel operating on the point
    // array's interleaved x,y doubles in place; scalar and AVX2
    // dispatch produce identical bits (see simd/dispatch.hpp).
    static_assert(std::is_standard_layout_v<geo::Point> &&
                      sizeof(geo::Point) == 2 * sizeof(double) &&
                      offsetof(geo::Point, y) == sizeof(double),
                  "noise kernel assumes Point is two packed doubles");
    thread_local std::vector<double> samples;
    samples.resize(out.size() * 2);
    fill_standard_normal_ziggurat(engine, samples);
    if (!out.empty()) {
      simd::apply_noise_pairs(samples.data(), out.size(), sigma, center.x,
                              center.y,
                              reinterpret_cast<double*>(out.data()));
    }
    return;
  }
  for (geo::Point& p : out) p = center + gaussian_noise_polar(engine, sigma);
}

double planar_laplace_radius_quantile(double p, double epsilon) {
  util::require(p >= 0.0 && p < 1.0,
                "planar_laplace_radius_quantile needs p in [0, 1)");
  util::require_positive(epsilon, "planar Laplace epsilon");
  if (p == 0.0) return 0.0;
  const double x = (p - 1.0) / std::numbers::e;
  return -(lambert_wm1(x) + 1.0) / epsilon;
}

double planar_laplace_radius_cdf(double r, double epsilon) {
  util::require_non_negative(r, "planar Laplace radius");
  util::require_positive(epsilon, "planar Laplace epsilon");
  return 1.0 - (1.0 + epsilon * r) * std::exp(-epsilon * r);
}

geo::Point planar_laplace_noise(Engine& engine, double epsilon) {
  const double theta = engine.uniform_in(0.0, 2.0 * std::numbers::pi);
  const double r = planar_laplace_radius_quantile(engine.uniform(), epsilon);
  return {r * std::cos(theta), r * std::sin(theta)};
}

geo::Point uniform_in_disk(Engine& engine, double radius) {
  util::require_non_negative(radius, "disk radius");
  const double theta = engine.uniform_in(0.0, 2.0 * std::numbers::pi);
  const double r = radius * std::sqrt(engine.uniform());
  return {r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace privlocad::rng
