// Attack-success evaluation (paper Section VII, metric 1).
//
// An attack on one user "succeeds at rank k within distance d" when the
// inferred top-k location lies within d meters of the user's true top-k
// location. The population-level Attack Success Rate is the fraction of
// users for which the attack succeeds. The paper reports success at
// 200 m and 500 m for top-1 and top-2.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "attack/deobfuscation.hpp"
#include "rng/engine.hpp"
#include "trace/check_in.hpp"

namespace privlocad::par {
class ThreadPool;
}

namespace privlocad::attack {

/// Per-user outcome: inference error (meters) for each evaluated rank, or
/// nullopt when the user has no true location at that rank or the attack
/// produced no estimate for it.
struct UserAttackOutcome {
  std::vector<std::optional<double>> error_by_rank;
};

/// Distance between inferred and true locations, rank-aligned.
UserAttackOutcome evaluate_attack(
    const std::vector<InferredLocation>& inferred,
    const trace::GroundTruth& truth, std::size_t ranks);

/// Aggregated success rates over a population.
class SuccessRateAccumulator {
 public:
  /// `thresholds_m` are the distances to report success at (e.g. 200, 500).
  SuccessRateAccumulator(std::size_t ranks, std::vector<double> thresholds_m);

  /// Folds one user's outcome in. Users lacking a rank (nullopt) count
  /// toward that rank's denominator as failures only if `count_missing`
  /// users are included; the paper divides by all attacked users, so we do.
  void add(const UserAttackOutcome& outcome);

  /// Success rate for `rank` (0-based) at threshold index `t`.
  double rate(std::size_t rank, std::size_t threshold_index) const;

  std::size_t users() const { return users_; }
  const std::vector<double>& thresholds() const { return thresholds_; }

 private:
  std::size_t ranks_;
  std::vector<double> thresholds_;
  std::size_t users_ = 0;
  // successes_[rank * thresholds + t]
  std::vector<std::size_t> successes_;
};

/// The full Fig. 6 protocol for one population: how to turn a user into an
/// observation stream, how to attack it, and how to score the result.
struct PopulationAttackProtocol {
  /// Algorithm 1 parameters (use bench::attack_config_for for the paper's
  /// tail-calibrated settings).
  DeobfuscationConfig deobfuscation;

  /// Ranks scored (paper: top-1 and top-2).
  std::size_t ranks = 2;

  /// Success distances in meters (paper: 200 and 500).
  std::vector<double> thresholds_m{200.0, 500.0};

  /// Seed of the observation randomness. User i observes through
  /// rng::Engine(observation_seed).split(i), so results are independent of
  /// evaluation order and identical across thread counts.
  std::uint64_t observation_seed = 6;
};

/// Produces one user's observed (obfuscated) check-in stream. The engine
/// is the user's private split stream; implementations must not share
/// mutable state across users.
using ObservationFn = std::function<std::vector<geo::Point>(
    rng::Engine&, const trace::SyntheticUser&)>;

/// Runs Algorithm 1 against every user of `population` on `pool` (one
/// task per user: observe -> deobfuscate -> score) and folds the per-user
/// outcomes into a SuccessRateAccumulator in population order. Thanks to
/// seed-splitting the rates are byte-identical for any thread count.
SuccessRateAccumulator evaluate_population(
    par::ThreadPool& pool,
    const std::vector<trace::SyntheticUser>& population,
    const PopulationAttackProtocol& protocol, const ObservationFn& observe);

/// Global-pool convenience (sized by PRIVLOCAD_THREADS / hardware).
SuccessRateAccumulator evaluate_population(
    const std::vector<trace::SyntheticUser>& population,
    const PopulationAttackProtocol& protocol, const ObservationFn& observe);

}  // namespace privlocad::attack
