// Attack-success evaluation (paper Section VII, metric 1).
//
// An attack on one user "succeeds at rank k within distance d" when the
// inferred top-k location lies within d meters of the user's true top-k
// location. The population-level Attack Success Rate is the fraction of
// users for which the attack succeeds. The paper reports success at
// 200 m and 500 m for top-1 and top-2.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "attack/deobfuscation.hpp"
#include "trace/check_in.hpp"

namespace privlocad::attack {

/// Per-user outcome: inference error (meters) for each evaluated rank, or
/// nullopt when the user has no true location at that rank or the attack
/// produced no estimate for it.
struct UserAttackOutcome {
  std::vector<std::optional<double>> error_by_rank;
};

/// Distance between inferred and true locations, rank-aligned.
UserAttackOutcome evaluate_attack(
    const std::vector<InferredLocation>& inferred,
    const trace::GroundTruth& truth, std::size_t ranks);

/// Aggregated success rates over a population.
class SuccessRateAccumulator {
 public:
  /// `thresholds_m` are the distances to report success at (e.g. 200, 500).
  SuccessRateAccumulator(std::size_t ranks, std::vector<double> thresholds_m);

  /// Folds one user's outcome in. Users lacking a rank (nullopt) count
  /// toward that rank's denominator as failures only if `count_missing`
  /// users are included; the paper divides by all attacked users, so we do.
  void add(const UserAttackOutcome& outcome);

  /// Success rate for `rank` (0-based) at threshold index `t`.
  double rate(std::size_t rank, std::size_t threshold_index) const;

  std::size_t users() const { return users_; }
  const std::vector<double>& thresholds() const { return thresholds_; }

 private:
  std::size_t ranks_;
  std::vector<double> thresholds_;
  std::size_t users_ = 0;
  // successes_[rank * thresholds + t]
  std::vector<std::size_t> successes_;
};

}  // namespace privlocad::attack
