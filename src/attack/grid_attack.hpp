// Grid-histogram attack baseline.
//
// A simpler longitudinal attacker than Algorithm 1: bucket the observed
// check-ins into a uniform grid, take the densest cell, and refine the
// estimate as the centroid of the points in that cell's 3x3 neighborhood.
// Repeat on the remaining points for top-k. This is the "obvious" attack a
// non-expert adversary would run; the ablation bench compares it against
// the paper's clustering+trimming attack to show what the extra machinery
// buys (and that even the naive attacker breaks one-time geo-IND, which
// strengthens the paper's threat claim).
#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::attack {

struct GridAttackConfig {
  /// Histogram cell side, meters. Should be on the order of the noise
  /// scale; the bench derives it from the mechanism's tail radius.
  double cell_size_m = 200.0;

  /// Number of top locations to infer.
  std::size_t top_n = 1;
};

struct GridInferredLocation {
  geo::Point location;
  std::size_t support;  ///< points in the winning 3x3 neighborhood
};

/// Runs the histogram attack. Returns up to top_n locations, densest
/// first; fewer when the points run out. Empty input -> empty result.
std::vector<GridInferredLocation> grid_attack(
    std::vector<geo::Point> observed, const GridAttackConfig& config);

}  // namespace privlocad::attack
