#include "attack/evaluation.hpp"

#include "geo/point.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "util/validation.hpp"

namespace privlocad::attack {

UserAttackOutcome evaluate_attack(
    const std::vector<InferredLocation>& inferred,
    const trace::GroundTruth& truth, std::size_t ranks) {
  util::require(ranks >= 1, "evaluation needs at least one rank");
  UserAttackOutcome outcome;
  outcome.error_by_rank.resize(ranks);
  for (std::size_t k = 0; k < ranks; ++k) {
    if (k >= inferred.size() || k >= truth.top_locations.size()) continue;
    outcome.error_by_rank[k] =
        geo::distance(inferred[k].location, truth.top_locations[k]);
  }
  return outcome;
}

SuccessRateAccumulator::SuccessRateAccumulator(
    std::size_t ranks, std::vector<double> thresholds_m)
    : ranks_(ranks), thresholds_(std::move(thresholds_m)) {
  util::require(ranks_ >= 1, "accumulator needs at least one rank");
  util::require(!thresholds_.empty(), "accumulator needs thresholds");
  for (const double t : thresholds_) {
    util::require_positive(t, "success threshold");
  }
  successes_.assign(ranks_ * thresholds_.size(), 0);
}

void SuccessRateAccumulator::add(const UserAttackOutcome& outcome) {
  util::require(outcome.error_by_rank.size() >= ranks_,
                "outcome has fewer ranks than the accumulator");
  ++users_;
  for (std::size_t k = 0; k < ranks_; ++k) {
    if (!outcome.error_by_rank[k].has_value()) continue;
    const double error = *outcome.error_by_rank[k];
    for (std::size_t t = 0; t < thresholds_.size(); ++t) {
      if (error <= thresholds_[t]) ++successes_[k * thresholds_.size() + t];
    }
  }
}

SuccessRateAccumulator evaluate_population(
    par::ThreadPool& pool,
    const std::vector<trace::SyntheticUser>& population,
    const PopulationAttackProtocol& protocol, const ObservationFn& observe) {
  util::require(static_cast<bool>(observe),
                "evaluate_population needs an observation function");
  const rng::Engine parent(protocol.observation_seed);

  // Per-user de-obfuscation wall time lands in the global registry so
  // attack benches can report percentiles; resolved once here to keep the
  // registration mutex off the per-user path.
  obs::LatencyHistogram& deobfuscation_latency =
      obs::MetricsRegistry::global().histogram(
          "attack.deobfuscation_latency_us");

  // One task per user: observe under the user's split stream, run Alg. 1,
  // score against truth. Outcomes land at the user's index, so the serial
  // fold below sees them in population order regardless of scheduling.
  const std::vector<UserAttackOutcome> outcomes = par::parallel_map(
      pool, population,
      [&](const trace::SyntheticUser& user, std::size_t i) {
        rng::Engine user_engine = parent.split(i);
        const std::vector<geo::Point> observed = observe(user_engine, user);
        // One workspace per pool thread: the grid index and every attack
        // scratch buffer are reused across all users this thread scores,
        // so the per-user hot path stays allocation-free after warmup.
        thread_local DeobfuscationWorkspace workspace;
        std::vector<InferredLocation> inferred;
        {
          const obs::ScopedLatencyTimer timer(&deobfuscation_latency);
          inferred = deobfuscate_top_locations(observed,
                                               protocol.deobfuscation,
                                               workspace);
        }
        return evaluate_attack(inferred, user.truth, protocol.ranks);
      });

  SuccessRateAccumulator rates(protocol.ranks, protocol.thresholds_m);
  for (const UserAttackOutcome& outcome : outcomes) rates.add(outcome);
  return rates;
}

SuccessRateAccumulator evaluate_population(
    const std::vector<trace::SyntheticUser>& population,
    const PopulationAttackProtocol& protocol, const ObservationFn& observe) {
  return evaluate_population(par::ThreadPool::global(), population, protocol,
                             observe);
}

double SuccessRateAccumulator::rate(std::size_t rank,
                                    std::size_t threshold_index) const {
  util::require(rank < ranks_, "rank out of range");
  util::require(threshold_index < thresholds_.size(),
                "threshold index out of range");
  util::require(users_ > 0, "no users accumulated");
  return static_cast<double>(
             successes_[rank * thresholds_.size() + threshold_index]) /
         static_cast<double>(users_);
}

}  // namespace privlocad::attack
