// Semantic labelling of inferred locations (paper Sections I and III-A:
// the attacker's goal includes "location semantics (e.g., home and work
// place)" and "mobility patterns").
//
// Given the top locations inferred by Algorithm 1 AND the timestamps of
// the observed check-ins, the attacker labels each location by its visit
// schedule: a place visited overwhelmingly at night is a home; a place
// visited during weekday office hours is a workplace. This module is the
// attack's second stage and is evaluated against the synthetic ground
// truth (whose generator plants exactly that day/night structure).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/deobfuscation.hpp"
#include "trace/check_in.hpp"

namespace privlocad::attack {

enum class LocationSemantic { kHome, kWork, kOther };

/// Human-readable name of a semantic label.
std::string to_string(LocationSemantic semantic);

struct SemanticLabel {
  LocationSemantic semantic = LocationSemantic::kOther;
  double night_fraction = 0.0;    ///< share of visits at 22:00-07:00
  double workday_fraction = 0.0;  ///< share at 09:00-18:00 on weekdays
  std::size_t visits = 0;         ///< check-ins attributed to the location
};

struct SemanticConfig {
  /// A check-in within this distance of an inferred location counts as a
  /// visit to it (use the attack's trimming radius).
  double attribution_radius_m = 600.0;

  /// Minimum night-visit share to call a location a home.
  double home_night_threshold = 0.45;

  /// Minimum weekday-office-hour share to call a location a workplace.
  double work_day_threshold = 0.45;
};

/// Labels every inferred location from the observed check-in schedule.
/// Check-ins are attributed to the nearest inferred location within the
/// attribution radius; unattributed check-ins are ignored.
std::vector<SemanticLabel> label_locations(
    const std::vector<InferredLocation>& inferred,
    const std::vector<trace::CheckIn>& observed,
    const SemanticConfig& config = {});

}  // namespace privlocad::attack
