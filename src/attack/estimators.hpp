// Location estimators for the de-obfuscation attack.
//
// Algorithm 1 estimates a top location as the CENTROID of the trimmed
// cluster -- the maximum-likelihood estimator under Gaussian noise. Under
// planar LAPLACE noise (density ~ exp(-eps |q - p|)) the MLE is instead
// the GEOMETRIC MEDIAN: argmin_p sum_i |q_i - p|. The median is also
// robust to the heavy Laplace tails and to residual cluster contamination,
// so a sophisticated attacker prefers it; the ablation quantifies the
// gap. Computed by Weiszfeld's algorithm with the standard singularity
// guard (when the iterate lands on a data point, a vanishing-gradient test
// decides optimality).
#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::attack {

struct WeiszfeldOptions {
  std::size_t max_iterations = 200;
  double tolerance_m = 1e-6;  ///< stop when the step is below this
};

/// Geometric median of a non-empty point set (Weiszfeld iteration).
geo::Point geometric_median(const std::vector<geo::Point>& points,
                            const WeiszfeldOptions& options = {});

/// Which estimator Algorithm 1's final stage uses.
enum class LocationEstimator { kCentroid, kGeometricMedian };

/// Applies the chosen estimator to a point set.
geo::Point estimate_location(const std::vector<geo::Point>& points,
                             LocationEstimator estimator);

}  // namespace privlocad::attack
