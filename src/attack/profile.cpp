#include "attack/profile.hpp"

#include <algorithm>

#include "attack/clustering.hpp"
#include "stats/entropy.hpp"
#include "util/validation.hpp"

namespace privlocad::attack {

LocationProfile::LocationProfile(std::vector<ProfileEntry> entries)
    : entries_(std::move(entries)) {
  util::require(std::is_sorted(entries_.begin(), entries_.end(),
                               [](const ProfileEntry& a,
                                  const ProfileEntry& b) {
                                 return a.frequency > b.frequency;
                               }),
                "profile entries must be sorted heaviest-first");
  for (const ProfileEntry& e : entries_) total_ += e.frequency;
}

double LocationProfile::entropy() const {
  util::require(!entries_.empty(), "entropy of empty profile");
  std::vector<std::uint64_t> freqs;
  freqs.reserve(entries_.size());
  for (const ProfileEntry& e : entries_) freqs.push_back(e.frequency);
  return stats::location_entropy(freqs);
}

const ProfileEntry& LocationProfile::top(std::size_t i) const {
  util::require(i < entries_.size(), "profile top index out of range");
  return entries_[i];
}

LocationProfile build_profile(const std::vector<geo::Point>& check_ins,
                              double threshold_m) {
  const std::vector<Cluster> clusters =
      connectivity_clusters(check_ins, threshold_m);
  std::vector<ProfileEntry> entries;
  entries.reserve(clusters.size());
  for (const Cluster& cluster : clusters) {
    entries.push_back({cluster_centroid(check_ins, cluster),
                       static_cast<std::uint64_t>(cluster.size())});
  }
  // connectivity_clusters already orders by size desc; that IS the
  // frequency order.
  return LocationProfile(std::move(entries));
}

LocationProfile build_profile(const trace::UserTrace& trace,
                              double threshold_m) {
  return build_profile(trace::positions(trace), threshold_m);
}

}  // namespace privlocad::attack
