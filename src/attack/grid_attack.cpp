#include "attack/grid_attack.hpp"

#include <cmath>
#include <cstdint>
#include <unordered_map>

#include "util/validation.hpp"

namespace privlocad::attack {
namespace {

using CellKey = std::uint64_t;

CellKey pack(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

std::int32_t cell_of(double coordinate, double cell_size) {
  return static_cast<std::int32_t>(std::floor(coordinate / cell_size));
}

}  // namespace

std::vector<GridInferredLocation> grid_attack(std::vector<geo::Point> observed,
                                              const GridAttackConfig& config) {
  util::require_positive(config.cell_size_m, "grid attack cell size");
  util::require(config.top_n >= 1, "grid attack top_n must be >= 1");

  std::vector<GridInferredLocation> inferred;
  inferred.reserve(config.top_n);

  for (std::size_t rank = 0; rank < config.top_n && !observed.empty();
       ++rank) {
    // Histogram pass.
    std::unordered_map<CellKey, std::size_t> counts;
    counts.reserve(observed.size());
    for (const geo::Point& p : observed) {
      ++counts[pack(cell_of(p.x, config.cell_size_m),
                    cell_of(p.y, config.cell_size_m))];
    }

    // Densest 3x3 neighborhood (single-cell mode is too sensitive to the
    // grid phase; the 3x3 sum is the usual fix).
    CellKey best_key = 0;
    std::size_t best_mass = 0;
    for (const auto& [key, count] : counts) {
      const auto cx = static_cast<std::int32_t>(key >> 32);
      const auto cy = static_cast<std::int32_t>(key & 0xFFFFFFFFu);
      std::size_t mass = 0;
      for (std::int32_t dx = -1; dx <= 1; ++dx) {
        for (std::int32_t dy = -1; dy <= 1; ++dy) {
          const auto it = counts.find(pack(cx + dx, cy + dy));
          if (it != counts.end()) mass += it->second;
        }
      }
      if (mass > best_mass || (mass == best_mass && key < best_key)) {
        best_mass = mass;
        best_key = key;
      }
    }

    // Centroid of the winning neighborhood; remove its points.
    const auto bx = static_cast<std::int32_t>(best_key >> 32);
    const auto by = static_cast<std::int32_t>(best_key & 0xFFFFFFFFu);
    geo::Point sum{};
    std::size_t support = 0;
    std::vector<geo::Point> remaining;
    remaining.reserve(observed.size());
    for (const geo::Point& p : observed) {
      const std::int32_t cx = cell_of(p.x, config.cell_size_m);
      const std::int32_t cy = cell_of(p.y, config.cell_size_m);
      if (std::abs(cx - bx) <= 1 && std::abs(cy - by) <= 1) {
        sum = sum + p;
        ++support;
      } else {
        remaining.push_back(p);
      }
    }
    inferred.push_back({sum / static_cast<double>(support), support});
    observed = std::move(remaining);
  }
  return inferred;
}

}  // namespace privlocad::attack
