#include "attack/clustering.hpp"

#include <algorithm>

#include "geo/grid_index.hpp"
#include "util/validation.hpp"

namespace privlocad::attack {

std::vector<Cluster> connectivity_clusters(
    const std::vector<geo::Point>& points, double threshold_m) {
  util::require_positive(threshold_m, "clustering threshold");
  if (points.empty()) return {};

  // The connectivity expansion's candidate scans run through the
  // GridIndex SIMD kernel (4-wide squared-distance/compare lanes over
  // SoA spans in CSR order); the dispatch contract guarantees identical
  // cluster assignments at any dispatch level.
  const geo::GridIndex index(points, threshold_m);
  const double threshold2 = threshold_m * threshold_m;
  std::vector<bool> visited(points.size(), false);
  std::vector<Cluster> clusters;
  clusters.reserve(16);

  // BFS over the implicit connectivity graph.
  std::vector<std::size_t> frontier;
  frontier.reserve(points.size());
  for (std::size_t seed = 0; seed < points.size(); ++seed) {
    if (visited[seed]) continue;
    Cluster cluster;
    cluster.reserve(64);
    visited[seed] = true;
    frontier.assign(1, seed);
    while (!frontier.empty()) {
      const std::size_t current = frontier.back();
      frontier.pop_back();
      cluster.push_back(current);
      // Paper: connected iff dist < theta (strict); grid query is <=, so
      // filter exact ties out using the squared distance the grid already
      // computed. Measure-zero for continuous noise but it matters for
      // degenerate/duplicated inputs in tests.
      index.for_each_within(points[current], threshold_m,
                            [&](std::size_t neighbor, double d2) {
                              if (visited[neighbor]) return;
                              if (d2 >= threshold2) return;
                              visited[neighbor] = true;
                              frontier.push_back(neighbor);
                            });
    }
    std::sort(cluster.begin(), cluster.end());
    clusters.push_back(std::move(cluster));
  }

  std::sort(clusters.begin(), clusters.end(),
            [](const Cluster& a, const Cluster& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();
            });
  return clusters;
}

geo::Point cluster_centroid(const std::vector<geo::Point>& points,
                            const Cluster& cluster) {
  util::require(!cluster.empty(), "centroid of empty cluster");
  geo::Point sum{};
  for (const std::size_t idx : cluster) sum = sum + points[idx];
  return sum / static_cast<double>(cluster.size());
}

}  // namespace privlocad::attack
