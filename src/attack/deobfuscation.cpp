#include "attack/deobfuscation.hpp"

#include <algorithm>

#include "util/validation.hpp"

namespace privlocad::attack {
namespace {

void validate(const DeobfuscationConfig& c) {
  util::require_positive(c.connectivity_threshold_m,
                         "connectivity threshold theta");
  util::require_positive(c.trim_radius_m, "trimming radius r_alpha");
  util::require(c.top_n >= 1, "top_n must be >= 1");
  util::require(c.max_trim_iterations >= 1,
                "max_trim_iterations must be >= 1");
}

/// Centroid of the current members. Ascending index order keeps the
/// floating-point summation order of the pre-workspace implementation,
/// so estimates stay bit-identical.
geo::Point member_centroid(const std::vector<geo::Point>& points,
                           const std::vector<std::uint8_t>& member) {
  geo::Point sum{};
  std::size_t count = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (member[i]) {
      sum = sum + points[i];
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

/// Stage-2 trimming (Algorithm 1, TRIMMING): refine the membership bitmap
/// to the fixed point of "keep exactly the live points within r_alpha of
/// the evolving centroid". Returns the final centroid.
geo::Point trim_cluster(const geo::GridIndex& index,
                        std::vector<std::uint8_t>& member,
                        const DeobfuscationConfig& config) {
  const std::vector<geo::Point>& points = index.points();
  // Membership compares squared distances: one multiply replaces a sqrt
  // per point per iteration (ties at exactly r_alpha are measure-zero for
  // continuous noise).
  const double trim_radius2 = config.trim_radius_m * config.trim_radius_m;
  geo::Point centroid = member_centroid(points, member);
  for (std::size_t iter = 0; iter < config.max_trim_iterations; ++iter) {
    bool changed = false;
    std::size_t member_count = 0;
    // One pass decides membership against the current centroid: drops the
    // far members (Alg. 1: 13-15) and admits the near outsiders (16-18).
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!index.alive(i)) continue;
      const bool should_belong =
          geo::distance_squared(points[i], centroid) <= trim_radius2;
      if (static_cast<bool>(member[i]) != should_belong) {
        member[i] = should_belong ? 1 : 0;
        changed = true;
      }
      if (should_belong) ++member_count;
    }
    if (member_count == 0) {
      // Trimming ate the whole cluster (r_alpha far below the data's
      // spread). Keep the last centroid rather than divide by zero.
      return centroid;
    }
    if (!changed) break;
    centroid = member_centroid(points, member);
  }
  return centroid;
}

}  // namespace

std::vector<InferredLocation> deobfuscate_top_locations(
    const std::vector<geo::Point>& observed_check_ins,
    const DeobfuscationConfig& config, DeobfuscationWorkspace& ws) {
  validate(config);

  std::vector<InferredLocation> inferred;
  inferred.reserve(config.top_n);
  if (observed_check_ins.empty()) return inferred;

  // One index build per call; each round retires its cluster through
  // tombstones instead of a rebuild.
  ws.index_.rebuild(observed_check_ins, config.connectivity_threshold_m);
  const std::vector<geo::Point>& points = ws.index_.points();
  const std::size_t n = points.size();
  const double threshold2 =
      config.connectivity_threshold_m * config.connectivity_threshold_m;
  std::size_t alive_count = n;

  for (std::size_t rank = 0; rank < config.top_n && alive_count > 0;
       ++rank) {
    // Stage 1: largest connected component (dist < theta, strict) among
    // the live points. Seeds scan ascending, so the component discovered
    // first at any given size contains the smallest live index --
    // strictly-greater replacement therefore reproduces the old
    // (size desc, front asc) cluster ranking exactly.
    ws.visited_.assign(n, 0);
    ws.largest_.clear();
    for (std::size_t seed = 0; seed < n; ++seed) {
      if (!ws.index_.alive(seed) || ws.visited_[seed]) continue;
      ws.current_.clear();
      ws.frontier_.assign(1, seed);
      ws.visited_[seed] = 1;
      while (!ws.frontier_.empty()) {
        const std::size_t current = ws.frontier_.back();
        ws.frontier_.pop_back();
        ws.current_.push_back(current);
        // The grid query is <=; exact ties are filtered out with the
        // squared distance the grid already computed (measure-zero for
        // continuous noise, matters for degenerate inputs in tests).
        ws.index_.for_each_within(
            points[current], config.connectivity_threshold_m,
            [&](std::size_t neighbor, double d2) {
              if (ws.visited_[neighbor]) return;
              if (d2 >= threshold2) return;
              ws.visited_[neighbor] = 1;
              ws.frontier_.push_back(neighbor);
            });
      }
      if (ws.current_.size() > ws.largest_.size()) {
        ws.largest_.swap(ws.current_);
      }
    }

    ws.member_.assign(n, 0);
    for (const std::size_t idx : ws.largest_) ws.member_[idx] = 1;

    geo::Point centroid = config.enable_trimming
                              ? trim_cluster(ws.index_, ws.member_, config)
                              : member_centroid(points, ws.member_);

    // One membership pass (this used to be two near-identical partition
    // loops): gather the member points for the estimator and the support
    // count together.
    ws.members_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.member_[i]) ws.members_.push_back(points[i]);
    }
    const std::size_t support = ws.members_.size();
    // The trimming loop always steers by the centroid (cheap, stable);
    // the configured estimator refines the FINAL estimate only.
    if (config.estimator != LocationEstimator::kCentroid && support > 0) {
      centroid = estimate_location(ws.members_, config.estimator);
    }
    // A fully-trimmed cluster contributes no support but still yields the
    // centroid estimate; remove the original cluster either way so the
    // next round makes progress (Alg. 1: 8).
    if (support == 0) {
      for (const std::size_t idx : ws.largest_) ws.member_[idx] = 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.member_[i]) {
        ws.index_.kill(i);
        --alive_count;
      }
    }

    inferred.push_back({centroid, std::max<std::size_t>(support, 1)});
  }
  return inferred;
}

std::vector<InferredLocation> deobfuscate_top_locations(
    const std::vector<geo::Point>& observed_check_ins,
    const DeobfuscationConfig& config) {
  DeobfuscationWorkspace workspace;
  return deobfuscate_top_locations(observed_check_ins, config, workspace);
}

}  // namespace privlocad::attack
