#include "attack/deobfuscation.hpp"

#include <algorithm>

#include "attack/clustering.hpp"
#include "util/validation.hpp"

namespace privlocad::attack {
namespace {

void validate(const DeobfuscationConfig& c) {
  util::require_positive(c.connectivity_threshold_m,
                         "connectivity threshold theta");
  util::require_positive(c.trim_radius_m, "trimming radius r_alpha");
  util::require(c.top_n >= 1, "top_n must be >= 1");
  util::require(c.max_trim_iterations >= 1,
                "max_trim_iterations must be >= 1");
}

/// Stage-2 trimming (Algorithm 1, TRIMMING): refine the membership bitmap
/// to the fixed point of "keep exactly the points within r_alpha of the
/// evolving centroid". Returns the final centroid.
geo::Point trim_cluster(const std::vector<geo::Point>& points,
                        std::vector<bool>& member,
                        const DeobfuscationConfig& config) {
  auto centroid_of_members = [&]() {
    geo::Point sum{};
    std::size_t count = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (member[i]) {
        sum = sum + points[i];
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };

  geo::Point centroid = centroid_of_members();
  for (std::size_t iter = 0; iter < config.max_trim_iterations; ++iter) {
    bool changed = false;
    std::size_t member_count = 0;
    // One pass decides membership against the current centroid: drops the
    // far members (Alg. 1: 13-15) and admits the near outsiders (16-18).
    for (std::size_t i = 0; i < points.size(); ++i) {
      const bool should_belong =
          geo::distance(points[i], centroid) <= config.trim_radius_m;
      if (member[i] != should_belong) {
        member[i] = should_belong;
        changed = true;
      }
      if (should_belong) ++member_count;
    }
    if (member_count == 0) {
      // Trimming ate the whole cluster (r_alpha far below the data's
      // spread). Keep the last centroid rather than divide by zero.
      return centroid;
    }
    if (!changed) break;
    centroid = centroid_of_members();
  }
  return centroid;
}

}  // namespace

std::vector<InferredLocation> deobfuscate_top_locations(
    std::vector<geo::Point> observed_check_ins,
    const DeobfuscationConfig& config) {
  validate(config);

  std::vector<geo::Point> remaining = std::move(observed_check_ins);
  std::vector<InferredLocation> inferred;
  inferred.reserve(config.top_n);

  for (std::size_t rank = 0; rank < config.top_n; ++rank) {
    if (remaining.empty()) break;

    const std::vector<Cluster> clusters = connectivity_clusters(
        remaining, config.connectivity_threshold_m);
    const Cluster& largest = clusters.front();

    std::vector<bool> member(remaining.size(), false);
    for (const std::size_t idx : largest) member[idx] = true;

    geo::Point centroid;
    if (config.enable_trimming) {
      centroid = trim_cluster(remaining, member, config);
    } else {
      centroid = cluster_centroid(remaining, largest);
    }

    std::size_t support = 0;
    std::vector<geo::Point> members;
    members.reserve(largest.size());
    std::vector<geo::Point> next;
    next.reserve(remaining.size());
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      if (member[i]) {
        ++support;
        members.push_back(remaining[i]);
      } else {
        next.push_back(remaining[i]);
      }
    }
    // The trimming loop always steers by the centroid (cheap, stable);
    // the configured estimator refines the FINAL estimate only.
    if (config.estimator != LocationEstimator::kCentroid &&
        !members.empty()) {
      centroid = estimate_location(members, config.estimator);
    }
    // A fully-trimmed cluster contributes no support but still yields the
    // centroid estimate; remove the original cluster either way so the
    // next round makes progress (Alg. 1: 8).
    if (support == 0) {
      for (const std::size_t idx : largest) member[idx] = true;
      next.clear();
      for (std::size_t i = 0; i < remaining.size(); ++i) {
        if (!member[i]) next.push_back(remaining[i]);
      }
    }

    inferred.push_back({centroid, std::max<std::size_t>(support, 1)});
    remaining = std::move(next);
  }
  return inferred;
}

}  // namespace privlocad::attack
