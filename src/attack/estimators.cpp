#include "attack/estimators.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::attack {

geo::Point geometric_median(const std::vector<geo::Point>& points,
                            const WeiszfeldOptions& options) {
  util::require(!points.empty(), "geometric median of empty set");
  util::require(options.max_iterations >= 1,
                "Weiszfeld needs at least one iteration");
  if (points.size() == 1) return points.front();
  if (points.size() == 2) {
    // Any point on the segment minimizes; return the midpoint.
    return (points[0] + points[1]) / 2.0;
  }

  geo::Point estimate = geo::centroid(points);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    geo::Point weighted_sum{};
    double weight_total = 0.0;
    bool on_data_point = false;
    geo::Point gradient{};  // of sum |q_i - p| excluding the coincident point

    for (const geo::Point& q : points) {
      const double d = geo::distance(estimate, q);
      if (d < 1e-12) {
        on_data_point = true;
        continue;
      }
      const double w = 1.0 / d;
      weighted_sum = weighted_sum + q * w;
      weight_total += w;
      gradient = gradient + (estimate - q) * w;
    }

    if (on_data_point) {
      // Vardi-Zhang: the coincident data point is the median iff the
      // residual gradient's norm is at most 1 (its own subgradient ball).
      if (geo::norm(gradient) <= 1.0) return estimate;
      // Otherwise step off the data point along the negative gradient.
      const double step = 1.0 / weight_total;
      estimate = estimate - gradient * (step / geo::norm(gradient));
      continue;
    }

    const geo::Point next = weighted_sum / weight_total;
    if (geo::distance(next, estimate) < options.tolerance_m) return next;
    estimate = next;
  }
  return estimate;
}

geo::Point estimate_location(const std::vector<geo::Point>& points,
                             LocationEstimator estimator) {
  util::require(!points.empty(), "estimate of empty set");
  switch (estimator) {
    case LocationEstimator::kCentroid:
      return geo::centroid(points);
    case LocationEstimator::kGeometricMedian:
      return geometric_median(points);
  }
  return geo::centroid(points);
}

}  // namespace privlocad::attack
