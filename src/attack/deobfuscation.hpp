// Top-n location de-obfuscation attack (paper Algorithm 1).
//
// Input: a victim's obfuscated check-ins observed over a long window.
// For each of the top-n locations, the attack
//   1. clusters the remaining check-ins by connectivity (threshold theta,
//      sized to the obfuscation scale rather than the 50 m profiling
//      threshold -- obfuscated points scatter much wider),
//   2. takes the largest cluster and iteratively trims it: recompute the
//      centroid, drop members farther than r_alpha, re-admit outside
//      points closer than r_alpha, until a fixed point,
//   3. reports the final centroid as the inferred top-i location and
//      removes the cluster's points before the next round.
// r_alpha comes from the obfuscation distribution's tail (Eq. 4):
// Pr[dist > r_alpha] <= alpha, alpha = 0.05 in the paper.
#pragma once

#include <cstddef>
#include <vector>

#include "attack/estimators.hpp"
#include "geo/point.hpp"

namespace privlocad::attack {

struct DeobfuscationConfig {
  /// Connectivity threshold theta for stage-1 clustering, meters.
  double connectivity_threshold_m = 100.0;

  /// Trimming radius r_alpha, meters (from Mechanism::tail_radius(0.05)).
  double trim_radius_m = 600.0;

  /// Number of top locations to infer.
  std::size_t top_n = 1;

  /// Safety valve for the trimming fixed-point loop.
  std::size_t max_trim_iterations = 100;

  /// Stage-2 trimming enabled (the ablation bench turns it off).
  bool enable_trimming = true;

  /// Final location estimate over the trimmed cluster. Centroid is the
  /// paper's Algorithm 1; the geometric median is the Laplace-MLE upgrade
  /// (see attack/estimators.hpp).
  LocationEstimator estimator = LocationEstimator::kCentroid;
};

struct InferredLocation {
  geo::Point location;        ///< inferred top-location coordinate
  std::size_t support;        ///< check-ins in the final cluster
};

/// Runs Algorithm 1. Returns up to `config.top_n` inferred locations in
/// rank order; fewer if the check-ins run out. An empty input yields an
/// empty result.
std::vector<InferredLocation> deobfuscate_top_locations(
    std::vector<geo::Point> observed_check_ins,
    const DeobfuscationConfig& config);

}  // namespace privlocad::attack
