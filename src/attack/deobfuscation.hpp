// Top-n location de-obfuscation attack (paper Algorithm 1).
//
// Input: a victim's obfuscated check-ins observed over a long window.
// For each of the top-n locations, the attack
//   1. clusters the remaining check-ins by connectivity (threshold theta,
//      sized to the obfuscation scale rather than the 50 m profiling
//      threshold -- obfuscated points scatter much wider),
//   2. takes the largest cluster and iteratively trims it: recompute the
//      centroid, drop members farther than r_alpha, re-admit outside
//      points closer than r_alpha, until a fixed point,
//   3. reports the final centroid as the inferred top-i location and
//      removes the cluster's points before the next round.
// r_alpha comes from the obfuscation distribution's tail (Eq. 4):
// Pr[dist > r_alpha] <= alpha, alpha = 0.05 in the paper.
//
// PERFORMANCE. The attack runs once per user over millions of users, so
// the per-call machinery is allocation-free after warmup: the grid index
// is built ONCE per call and rounds remove their cluster by tombstoning
// points in it (O(cluster)) instead of rebuilding, and every scratch
// buffer lives in a reusable DeobfuscationWorkspace. Results are
// bit-identical to the per-round-rebuild formulation: tombstones preserve
// the surviving points' relative order, which is all the cluster ranking
// and centroid summation order depend on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "attack/estimators.hpp"
#include "geo/grid_index.hpp"
#include "geo/point.hpp"

namespace privlocad::attack {

struct DeobfuscationConfig {
  /// Connectivity threshold theta for stage-1 clustering, meters.
  double connectivity_threshold_m = 100.0;

  /// Trimming radius r_alpha, meters (from Mechanism::tail_radius(0.05)).
  double trim_radius_m = 600.0;

  /// Number of top locations to infer.
  std::size_t top_n = 1;

  /// Safety valve for the trimming fixed-point loop.
  std::size_t max_trim_iterations = 100;

  /// Stage-2 trimming enabled (the ablation bench turns it off).
  bool enable_trimming = true;

  /// Final location estimate over the trimmed cluster. Centroid is the
  /// paper's Algorithm 1; the geometric median is the Laplace-MLE upgrade
  /// (see attack/estimators.hpp).
  LocationEstimator estimator = LocationEstimator::kCentroid;
};

struct InferredLocation {
  geo::Point location;        ///< inferred top-location coordinate
  std::size_t support;        ///< check-ins in the final cluster
};

/// Reusable scratch for deobfuscate_top_locations: the CSR grid index
/// plus every per-round buffer (membership bitmaps, BFS frontier, member
/// points). Reuse rules:
///   - one workspace per thread; a workspace must never be shared between
///     concurrent calls (no internal synchronization);
///   - reuse across calls is what it is for -- each call fully re-seeds
///     the state, so results are independent of what ran before;
///   - the buffers grow to the largest input the workspace has seen and
///     keep that capacity (bounded by max check-ins per user).
/// evaluate_population keeps one workspace per pool thread; single-shot
/// callers can use the two-argument overload, which supplies a local one.
class DeobfuscationWorkspace {
 public:
  DeobfuscationWorkspace() = default;

  DeobfuscationWorkspace(const DeobfuscationWorkspace&) = delete;
  DeobfuscationWorkspace& operator=(const DeobfuscationWorkspace&) = delete;

 private:
  friend std::vector<InferredLocation> deobfuscate_top_locations(
      const std::vector<geo::Point>&, const DeobfuscationConfig&,
      DeobfuscationWorkspace&);

  geo::GridIndex index_;                ///< built once per call, tombstoned
  std::vector<std::uint8_t> member_;    ///< current cluster membership
  std::vector<std::uint8_t> visited_;   ///< BFS visitation bitmap
  std::vector<std::size_t> frontier_;   ///< BFS stack
  std::vector<std::size_t> largest_;    ///< largest component this round
  std::vector<std::size_t> current_;    ///< component being grown
  std::vector<geo::Point> members_;     ///< member points for the estimator
};

/// Runs Algorithm 1. Returns up to `config.top_n` inferred locations in
/// rank order; fewer if the check-ins run out. An empty input yields an
/// empty result. `workspace` provides the index and scratch buffers (see
/// its reuse rules above).
std::vector<InferredLocation> deobfuscate_top_locations(
    const std::vector<geo::Point>& observed_check_ins,
    const DeobfuscationConfig& config, DeobfuscationWorkspace& workspace);

/// Single-shot convenience: same attack through a call-local workspace.
std::vector<InferredLocation> deobfuscate_top_locations(
    const std::vector<geo::Point>& observed_check_ins,
    const DeobfuscationConfig& config);

}  // namespace privlocad::attack
