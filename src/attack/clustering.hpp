// Connectivity-based clustering (paper Section III-B1).
//
// Two check-ins are "connected" when their Euclidean distance is below a
// threshold theta (50 m in the paper's profiling, and the attack's first
// stage uses the same notion). Clusters are the connected components of
// that graph. A uniform grid with cell size theta makes the component
// sweep near-linear: each point only inspects its 3x3 cell neighborhood.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::attack {

/// One cluster: indices into the input point vector.
using Cluster = std::vector<std::size_t>;

/// Computes connected components under dist(p_i, p_j) < threshold_m.
/// Clusters are returned sorted by size, largest first; ties broken by the
/// smallest contained index so results are deterministic.
std::vector<Cluster> connectivity_clusters(const std::vector<geo::Point>& points,
                                           double threshold_m);

/// Centroid of a cluster's points. The cluster must be non-empty.
geo::Point cluster_centroid(const std::vector<geo::Point>& points,
                            const Cluster& cluster);

}  // namespace privlocad::attack
