#include "attack/semantics.hpp"

#include "util/validation.hpp"

namespace privlocad::attack {
namespace {

int hour_of_day(trace::Timestamp t) {
  return static_cast<int>((t % trace::kSecondsPerDay) / 3600);
}

bool is_weekday(trace::Timestamp t) {
  // The epoch (1970-01-01) was a Thursday = day 4 of a Mon-based week.
  const auto day = ((t / trace::kSecondsPerDay) + 3) % 7;
  return day < 5;
}

bool is_night(trace::Timestamp t) {
  const int h = hour_of_day(t);
  return h < 7 || h >= 22;
}

bool is_office_hours(trace::Timestamp t) {
  const int h = hour_of_day(t);
  return is_weekday(t) && h >= 9 && h < 18;
}

}  // namespace

std::string to_string(LocationSemantic semantic) {
  switch (semantic) {
    case LocationSemantic::kHome:
      return "home";
    case LocationSemantic::kWork:
      return "work";
    case LocationSemantic::kOther:
      return "other";
  }
  return "?";
}

std::vector<SemanticLabel> label_locations(
    const std::vector<InferredLocation>& inferred,
    const std::vector<trace::CheckIn>& observed,
    const SemanticConfig& config) {
  util::require_positive(config.attribution_radius_m, "attribution radius");
  util::require_unit_open(config.home_night_threshold,
                          "home night threshold");
  util::require_unit_open(config.work_day_threshold, "work day threshold");

  struct Tally {
    std::size_t visits = 0;
    std::size_t night = 0;
    std::size_t office = 0;
  };
  std::vector<Tally> tallies(inferred.size());

  for (const trace::CheckIn& c : observed) {
    // Attribute to the nearest inferred location within the radius.
    std::size_t best = inferred.size();
    double best_distance = config.attribution_radius_m;
    for (std::size_t i = 0; i < inferred.size(); ++i) {
      const double d = geo::distance(c.position, inferred[i].location);
      if (d <= best_distance) {
        best = i;
        best_distance = d;
      }
    }
    if (best == inferred.size()) continue;
    Tally& tally = tallies[best];
    ++tally.visits;
    if (is_night(c.time)) ++tally.night;
    if (is_office_hours(c.time)) ++tally.office;
  }

  std::vector<SemanticLabel> labels(inferred.size());
  for (std::size_t i = 0; i < inferred.size(); ++i) {
    SemanticLabel& label = labels[i];
    label.visits = tallies[i].visits;
    if (tallies[i].visits == 0) continue;
    const double visits = static_cast<double>(tallies[i].visits);
    label.night_fraction = static_cast<double>(tallies[i].night) / visits;
    label.workday_fraction = static_cast<double>(tallies[i].office) / visits;
    // Night dominance wins over office dominance when both trip: homes are
    // also occupied on weekday mornings, the reverse is rarer.
    if (label.night_fraction >= config.home_night_threshold) {
      label.semantic = LocationSemantic::kHome;
    } else if (label.workday_fraction >= config.work_day_threshold) {
      label.semantic = LocationSemantic::kWork;
    }
  }
  return labels;
}

}  // namespace privlocad::attack
