// Location profiling (paper Section III-B1, Eq. 2-3).
//
// A location profile P = {(l_1, f_1), ..., (l_M, f_M)} maps inferred
// locations to visit frequencies. The profiling step clusters check-ins
// with the 50 m connectivity threshold, takes each cluster's centroid as
// the location coordinate and its size as the frequency. Both the attacker
// (on observed check-ins) and the edge device's location management module
// (on true check-ins) build profiles this way.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"
#include "trace/check_in.hpp"

namespace privlocad::attack {

/// The paper's default connectivity threshold for profiling (50 m).
inline constexpr double kDefaultProfilingThresholdM = 50.0;

struct ProfileEntry {
  geo::Point location;       ///< cluster centroid
  std::uint64_t frequency;   ///< cluster size (visit count)
};

/// Location profile ordered by frequency, heaviest first.
class LocationProfile {
 public:
  LocationProfile() = default;

  /// Entries must already be sorted heaviest-first; enforced here.
  explicit LocationProfile(std::vector<ProfileEntry> entries);

  const std::vector<ProfileEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Total check-ins across all entries.
  std::uint64_t total_frequency() const { return total_; }

  /// Location entropy of the profile (paper Eq. 3, nats). Requires a
  /// non-empty profile.
  double entropy() const;

  /// The i-th most frequent location (0-based). Requires i < size().
  const ProfileEntry& top(std::size_t i) const;

 private:
  std::vector<ProfileEntry> entries_;
  std::uint64_t total_ = 0;
};

/// Builds a profile from raw positions via connectivity clustering.
LocationProfile build_profile(const std::vector<geo::Point>& check_ins,
                              double threshold_m = kDefaultProfilingThresholdM);

/// Convenience overload over a trace.
LocationProfile build_profile(const trace::UserTrace& trace,
                              double threshold_m = kDefaultProfilingThresholdM);

}  // namespace privlocad::attack
