// CSV serialization for traces.
//
// Format (one row per check-in, local metric coordinates):
//   user_id,x_m,y_m,timestamp
// The geographic variant writes lat/lon through a projection so exported
// traces can be inspected on a map.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geo/projection.hpp"
#include "trace/check_in.hpp"

namespace privlocad::trace {

/// Writes traces as CSV rows (user_id,x_m,y_m,timestamp).
void write_traces(std::ostream& out, const std::vector<UserTrace>& traces);

/// Reads traces back; rows may be grouped, interleaved, or shuffled by
/// user AND by time. Traces are returned sorted by user id with each
/// user's check-ins stable-sorted by timestamp (equal timestamps keep
/// file order), since downstream profile-window and serving code assumes
/// time-ordered traces. Throws util::InvalidArgument, naming the row, on
/// malformed or negative timestamps.
std::vector<UserTrace> read_traces(std::istream& in);

/// Writes traces with geographic coordinates
/// (user_id,lat_deg,lon_deg,timestamp) using `projection`.
void write_traces_geo(std::ostream& out, const std::vector<UserTrace>& traces,
                      const geo::LocalProjection& projection);

/// File-path convenience wrappers; throw std::runtime_error on IO failure.
void write_traces_file(const std::string& path,
                       const std::vector<UserTrace>& traces);
std::vector<UserTrace> read_traces_file(const std::string& path);

}  // namespace privlocad::trace
