#include "trace/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "par/parallel.hpp"
#include "rng/samplers.hpp"
#include "util/validation.hpp"

namespace privlocad::trace {
namespace {

// Distinct stream tags keep user streams, the case-study stream, and any
// future generator streams from colliding in split-space.
constexpr std::uint64_t kUserStreamTag = 0x75736572ULL;        // "user"
constexpr std::uint64_t kCaseStudyStreamTag = 0x63617365ULL;   // "case"

void validate(const SyntheticConfig& c) {
  util::require_positive(c.area_half_extent_m, "area_half_extent_m");
  util::require(c.max_top_locations >= 1, "max_top_locations must be >= 1");
  util::require_positive(c.zipf_exponent, "zipf_exponent");
  util::require(c.nomadic_fraction >= 0.0 && c.nomadic_fraction < 1.0,
                "nomadic_fraction must be in [0, 1)");
  util::require_non_negative(c.anchor_jitter_sigma_m, "anchor_jitter_sigma_m");
  util::require_positive(c.min_top_separation_m, "min_top_separation_m");
  util::require(c.min_check_ins >= 1 && c.min_check_ins <= c.max_check_ins,
                "check-in count range is invalid");
  util::require(c.window_start < c.window_end, "time window is inverted");
}

geo::Point uniform_in_area(rng::Engine& e, const SyntheticConfig& c) {
  return {e.uniform_in(-c.area_half_extent_m, c.area_half_extent_m),
          e.uniform_in(-c.area_half_extent_m, c.area_half_extent_m)};
}

/// Places `count` anchors pairwise at least min_top_separation_m apart.
std::vector<geo::Point> place_anchors(rng::Engine& e,
                                      const SyntheticConfig& c,
                                      std::size_t count) {
  std::vector<geo::Point> anchors;
  anchors.reserve(count);
  int attempts = 0;
  while (anchors.size() < count) {
    const geo::Point candidate = uniform_in_area(e, c);
    const bool far_enough = std::all_of(
        anchors.begin(), anchors.end(), [&](geo::Point a) {
          return geo::distance(a, candidate) >= c.min_top_separation_m;
        });
    if (far_enough) {
      anchors.push_back(candidate);
    } else if (++attempts > 10000) {
      // Area too small for the separation constraint; give up gracefully
      // with the anchors placed so far (callers always get >= 1).
      break;
    }
  }
  return anchors;
}

/// Zipf weights 1/i^s over `count` anchors, normalized to `mass`.
std::vector<double> zipf_weights(std::size_t count, double exponent,
                                 double mass) {
  std::vector<double> w(count);
  for (std::size_t i = 0; i < count; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
  }
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  for (double& x : w) x = x / sum * mass;
  return w;
}

/// Samples an index from unnormalized weights.
std::size_t categorical(rng::Engine& e, const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double u = e.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

int hour_of_day(Timestamp t) {
  return static_cast<int>((t % kSecondsPerDay) / 3600);
}

bool is_weekday(Timestamp t) {
  // The epoch (1970-01-01) was a Thursday = day 4 of a Mon-based week.
  const auto day = ((t / kSecondsPerDay) + 3) % 7;
  return day < 5;
}

/// Sorted timestamps, uniform over the window.
std::vector<Timestamp> draw_timestamps(rng::Engine& e,
                                       const SyntheticConfig& c,
                                       std::size_t count) {
  std::vector<Timestamp> times(count);
  const auto span = static_cast<double>(c.window_end - c.window_start);
  for (auto& t : times) {
    t = c.window_start + static_cast<Timestamp>(e.uniform() * span);
  }
  std::sort(times.begin(), times.end());
  return times;
}

/// Effective nomadic fraction for a user with `count` check-ins (see the
/// SyntheticConfig::nomadic_fraction docs for the calibration rationale).
double effective_nomadic_fraction(const SyntheticConfig& c,
                                  std::size_t count) {
  if (!c.scale_nomadic_with_count) return c.nomadic_fraction;
  const double scaled =
      c.nomadic_fraction * 22.0 / std::sqrt(static_cast<double>(count));
  return std::clamp(scaled, 0.02, 0.55);
}

/// Picks which anchor (or nomadic = npos) a check-in at time `t` visits.
std::size_t pick_anchor(rng::Engine& e, double nomadic_fraction,
                        const std::vector<double>& weights, Timestamp t) {
  if (e.uniform() < nomadic_fraction) return static_cast<std::size_t>(-1);

  const int h = hour_of_day(t);
  const std::size_t anchors = weights.size();
  if (h < 7 || h >= 22) {
    // Night: overwhelmingly the home anchor.
    if (e.uniform() < 0.85) return 0;
  } else if (anchors >= 2 && h >= 9 && h < 18 && is_weekday(t)) {
    // Office hours on weekdays: mostly the work anchor.
    const double u = e.uniform();
    if (u < 0.70) return 1;
    if (u < 0.85) return 0;
  }
  return categorical(e, weights);
}

/// Orders truth by realized frequency (heaviest first) and converts raw
/// counts into weight fractions.
GroundTruth build_truth(const std::vector<geo::Point>& anchors,
                        const std::vector<std::uint64_t>& counts,
                        std::size_t total_check_ins) {
  std::vector<std::size_t> order(anchors.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return counts[a] > counts[b];
  });

  GroundTruth truth;
  for (const std::size_t i : order) {
    if (counts[i] == 0) continue;
    truth.top_locations.push_back(anchors[i]);
    truth.weights.push_back(static_cast<double>(counts[i]) /
                            static_cast<double>(total_check_ins));
  }
  return truth;
}

}  // namespace

SyntheticUser generate_user(const rng::Engine& parent,
                            const SyntheticConfig& config,
                            std::uint64_t user_id) {
  validate(config);
  rng::Engine e = parent.split(kUserStreamTag ^ (user_id * 2 + 1));

  // Heavy-tailed check-in count: log-uniform over [min, max].
  const double log_lo = std::log(static_cast<double>(config.min_check_ins));
  const double log_hi = std::log(static_cast<double>(config.max_check_ins));
  const auto count = static_cast<std::size_t>(
      std::exp(e.uniform_in(log_lo, std::nextafter(log_hi, 1e300))));

  // Anchor count skews small: most people live between home and work.
  static const std::vector<double> kAnchorCountWeights{0.15, 0.35, 0.30,
                                                       0.15, 0.05};
  std::vector<double> anchor_count_weights(
      kAnchorCountWeights.begin(),
      kAnchorCountWeights.begin() +
          std::min(config.max_top_locations, kAnchorCountWeights.size()));
  const std::size_t anchor_count = categorical(e, anchor_count_weights) + 1;

  const std::vector<geo::Point> anchors =
      place_anchors(e, config, anchor_count);
  const double nomadic = effective_nomadic_fraction(config, count);
  const std::vector<double> weights =
      zipf_weights(anchors.size(), config.zipf_exponent, 1.0 - nomadic);

  SyntheticUser user;
  user.trace.user_id = user_id;
  user.trace.check_ins.reserve(count);
  std::vector<std::uint64_t> anchor_visits(anchors.size(), 0);

  // Markov-dwell session state: the current anchor (npos = nomadic) and,
  // for nomadic sessions, the session-stable spot being visited.
  constexpr std::size_t kNoState = static_cast<std::size_t>(-2);
  constexpr std::size_t kNomadic = static_cast<std::size_t>(-1);
  std::size_t session_state = kNoState;
  geo::Point session_spot{};
  const bool markov =
      config.temporal_model == SyntheticConfig::TemporalModel::kMarkovDwell;
  const double leave_probability =
      markov ? 1.0 / std::max(1.0, config.mean_dwell_check_ins) : 1.0;

  for (const Timestamp t : draw_timestamps(e, config, count)) {
    if (session_state == kNoState || e.uniform() < leave_probability) {
      session_state = pick_anchor(e, nomadic, weights, t);
      if (session_state == kNomadic) session_spot = uniform_in_area(e, config);
    }
    geo::Point where;
    if (session_state == kNomadic) {
      where = session_spot +
              (markov ? rng::gaussian_noise(e, config.anchor_jitter_sigma_m)
                      : geo::Point{});
    } else {
      where = anchors[session_state] +
              rng::gaussian_noise(e, config.anchor_jitter_sigma_m);
      ++anchor_visits[session_state];
    }
    user.trace.check_ins.push_back({where, t});
  }

  user.truth = build_truth(anchors, anchor_visits, count);
  return user;
}

std::vector<SyntheticUser> generate_population(par::ThreadPool& pool,
                                               const rng::Engine& parent,
                                               const SyntheticConfig& config,
                                               std::size_t count) {
  validate(config);
  std::vector<SyntheticUser> users(count);
  // generate_user derives everything from parent.split(user_id), so the
  // per-index tasks are independent and the result is scheduling-proof.
  par::parallel_for(pool, 0, count, [&](std::size_t i) {
    users[i] = generate_user(parent, config, i);
  });
  return users;
}

std::vector<SyntheticUser> generate_population(const rng::Engine& parent,
                                               const SyntheticConfig& config,
                                               std::size_t count) {
  return generate_population(par::ThreadPool::global(), parent, config,
                             count);
}

SyntheticUser generate_case_study_user(const rng::Engine& parent,
                                       const SyntheticConfig& config) {
  validate(config);
  rng::Engine e = parent.split(kCaseStudyStreamTag);

  // Paper Fig. 4 victim: 1,969 check-ins in one year, 1,628 at top-1.
  constexpr std::size_t kTotal = 1969;
  constexpr std::size_t kTop1 = 1628;
  constexpr std::size_t kTop2 = 260;

  const std::vector<geo::Point> anchors = place_anchors(e, config, 2);

  SyntheticConfig year = config;
  year.window_end = year.window_start + 365 * kSecondsPerDay;

  SyntheticUser user;
  user.trace.user_id = 0xCA5E;
  user.trace.check_ins.reserve(kTotal);
  const std::vector<Timestamp> times = draw_timestamps(e, year, kTotal);

  for (std::size_t i = 0; i < kTotal; ++i) {
    geo::Point where;
    if (i % kTotal < kTop1) {
      where = anchors[0] + rng::gaussian_noise(e, year.anchor_jitter_sigma_m);
    } else if (i < kTop1 + kTop2 && anchors.size() > 1) {
      where = anchors[1] + rng::gaussian_noise(e, year.anchor_jitter_sigma_m);
    } else {
      where = uniform_in_area(e, year);
    }
    user.trace.check_ins.push_back({where, times[i]});
  }
  // Interleave anchor visits in time: shuffle assignment by sorting on time
  // already done; swap positions so top-1 visits spread across the year.
  // (times are sorted, assignments were by index, so rotate assignments.)
  // A simple deterministic shuffle of positions keeps both orders valid.
  for (std::size_t i = kTotal - 1; i > 0; --i) {
    const std::size_t j = e.uniform_index(i + 1);
    std::swap(user.trace.check_ins[i].position,
              user.trace.check_ins[j].position);
  }

  std::vector<std::uint64_t> visits{kTop1, anchors.size() > 1 ? kTop2 : 0};
  user.truth = build_truth(anchors, visits, kTotal);
  return user;
}

}  // namespace privlocad::trace
