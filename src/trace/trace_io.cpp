#include "trace/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "util/csv.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::trace {

void write_traces(std::ostream& out, const std::vector<UserTrace>& traces) {
  util::CsvWriter writer(out, {"user_id", "x_m", "y_m", "timestamp"});
  for (const UserTrace& trace : traces) {
    for (const CheckIn& c : trace.check_ins) {
      writer.write_row({std::to_string(trace.user_id),
                        util::format_double(c.position.x, 3),
                        util::format_double(c.position.y, 3),
                        std::to_string(c.time)});
    }
  }
}

std::vector<UserTrace> read_traces(std::istream& in) {
  const util::CsvTable table = util::read_csv(in);
  const std::size_t id_col = table.column("user_id");
  const std::size_t x_col = table.column("x_m");
  const std::size_t y_col = table.column("y_m");
  const std::size_t t_col = table.column("timestamp");

  std::map<std::uint64_t, UserTrace> by_user;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    const auto context = [r] {
      return "trace row " + std::to_string(r + 1);
    };
    // Validate the timestamp explicitly: downstream profile-window and
    // serving code treats it as seconds-since-epoch, so a malformed or
    // negative value must fail loudly with the offending row, not
    // propagate as a context-free parse error (or worse, a bogus window).
    Timestamp time = 0;
    try {
      time = util::parse_int(row[t_col]);
    } catch (const util::InvalidArgument&) {
      throw util::ParseError(context() + ": timestamp '" + row[t_col] +
                                 "' is not an integer",
                             r + 2);  // +1 for the header, +1 for 1-basing
    }
    if (time < 0) {
      throw util::ParseError(context() + ": timestamp must be >= 0, got " +
                                 row[t_col],
                             r + 2);
    }

    const auto id = static_cast<std::uint64_t>(util::parse_int(row[id_col]));
    UserTrace& trace = by_user[id];
    trace.user_id = id;
    trace.check_ins.push_back(
        {{util::parse_double(row[x_col]), util::parse_double(row[y_col])},
         time});
  }

  std::vector<UserTrace> traces;
  traces.reserve(by_user.size());
  for (auto& [id, trace] : by_user) {
    // Downstream consumers (profile windows, edge serving) assume each
    // trace is time-ordered, but rows may arrive in any order. Stable so
    // equal-timestamp check-ins keep their file order.
    std::stable_sort(trace.check_ins.begin(), trace.check_ins.end(),
                     [](const CheckIn& a, const CheckIn& b) {
                       return a.time < b.time;
                     });
    traces.push_back(std::move(trace));
  }
  return traces;
}

void write_traces_geo(std::ostream& out, const std::vector<UserTrace>& traces,
                      const geo::LocalProjection& projection) {
  util::CsvWriter writer(out, {"user_id", "lat_deg", "lon_deg", "timestamp"});
  for (const UserTrace& trace : traces) {
    for (const CheckIn& c : trace.check_ins) {
      const geo::LatLon geo_pos = projection.to_geo(c.position);
      writer.write_row({std::to_string(trace.user_id),
                        util::format_double(geo_pos.lat_deg, 7),
                        util::format_double(geo_pos.lon_deg, 7),
                        std::to_string(c.time)});
    }
  }
}

void write_traces_file(const std::string& path,
                       const std::vector<UserTrace>& traces) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  write_traces(out, traces);
}

std::vector<UserTrace> read_traces_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open for reading: " + path);
  return read_traces(in);
}

}  // namespace privlocad::trace
