// Synthetic mobility-trace generator.
//
// The paper evaluates on a proprietary RTB transaction log (37,262 Shanghai
// users, June 2019 - May 2021, 20 to 11,435 check-ins per user). That data
// cannot be redistributed, so this module generates the closest synthetic
// equivalent and is the documented substitution (see DESIGN.md section 2):
//
//  * each user has 1..max_top_locations anchor locations (home, office, ...)
//    placed uniformly in the study area but at least `min_top_separation`
//    apart, with Zipf-like visit weights so the top-1 dominates;
//  * a `nomadic_fraction` of check-ins happens at fresh uniform locations
//    (one-off visits the paper calls nomadic locations);
//  * visits to an anchor are jittered by a small Gaussian (GPS noise and
//    in-building movement), so raw check-ins cluster *around* top locations
//    exactly as the paper's profiling step assumes;
//  * per-user check-in counts are log-uniform over [min, max] check-ins,
//    reproducing the dataset's heavy-tailed size range;
//  * timestamps cover the 2-year study window with a day/night pattern:
//    the top-1 anchor (home) is favoured at night, the top-2 (work) during
//    office hours, which gives the Fig. 2/Fig. 4 style weekly structure.
//
// Calibration target (verified by tests and bench_fig3_entropy): the
// population's location-entropy distribution matches the paper's Fig. 3
// headline -- most users below 2 nats (the paper reports 88.8%).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/bounding_box.hpp"
#include "rng/engine.hpp"
#include "trace/check_in.hpp"

namespace privlocad::par {
class ThreadPool;
}

namespace privlocad::trace {

/// Tunable population parameters; defaults reproduce the paper's dataset
/// shape at the scales discussed above.
struct SyntheticConfig {
  /// Half-extent of the (square) study area in meters. The default is
  /// comparable to the paper's Shanghai box (~78 km x 95 km).
  double area_half_extent_m = 40000.0;

  /// Most users have 2-4 meaningful anchors; hard upper bound here.
  std::size_t max_top_locations = 5;

  /// Zipf exponent for anchor visit weights (higher = more top-1 mass).
  double zipf_exponent = 1.6;

  /// Base fraction of check-ins at one-off nomadic locations. When
  /// `scale_nomadic_with_count` is set (default), the effective per-user
  /// fraction is base * 20 / sqrt(N) clamped to [0.02, 0.5] for a user
  /// with N check-ins: sparse users look scattered, heavy users look
  /// routine-bound. This reproduces the paper's Fig. 3 observation that
  /// location entropy DECLINES as the check-in count grows (each nomadic
  /// visit forms its own singleton cluster contributing ~f*ln N nats, so a
  /// count-independent fraction would make entropy rise instead).
  double nomadic_fraction = 0.10;

  /// See nomadic_fraction. Disable for a count-independent mix.
  bool scale_nomadic_with_count = true;

  /// Std-dev of the Gaussian jitter around an anchor (GPS noise scale).
  /// Must stay below half the profiling threshold (50 m) for the paper's
  /// clustering assumption to hold.
  double anchor_jitter_sigma_m = 15.0;

  /// Anchors of one user are at least this far apart.
  double min_top_separation_m = 2000.0;

  /// Per-user check-in count range (log-uniform), matching the dataset.
  std::uint64_t min_check_ins = 20;
  std::uint64_t max_check_ins = 11435;

  Timestamp window_start = kStudyStart;
  Timestamp window_end = kStudyEnd;

  /// Temporal correlation model.
  /// kIid: every check-in picks its location independently (given the
  ///   time-of-day bias) -- the simplest model, default.
  /// kMarkovDwell: visits come in sessions -- each check-in stays at the
  ///   previous check-in's location with probability 1 - 1/mean_dwell and
  ///   otherwise re-samples, giving bursty traces with the same marginal
  ///   location distribution (the re-sample law is unchanged, so the
  ///   stationary visit frequencies still match the configured weights).
  enum class TemporalModel { kIid, kMarkovDwell };
  TemporalModel temporal_model = TemporalModel::kIid;

  /// Expected consecutive check-ins per visit session (kMarkovDwell).
  double mean_dwell_check_ins = 8.0;
};

/// Generates one user deterministically from (engine seed, user_id).
SyntheticUser generate_user(const rng::Engine& parent,
                            const SyntheticConfig& config,
                            std::uint64_t user_id);

/// Generates a population of `count` users, fanned out over the global
/// thread pool. Each user draws from an independent split stream keyed by
/// user id, so the population is byte-identical for any thread count (and
/// stable under reordering and subsetting).
std::vector<SyntheticUser> generate_population(const rng::Engine& parent,
                                               const SyntheticConfig& config,
                                               std::size_t count);

/// Same, on an explicit pool (tests pin thread counts through this).
std::vector<SyntheticUser> generate_population(par::ThreadPool& pool,
                                               const rng::Engine& parent,
                                               const SyntheticConfig& config,
                                               std::size_t count);

/// The case-study user of paper Fig. 4: 1,969 check-ins in one year of
/// which 1,628 are at the top-1 location. Deterministic for a given parent.
SyntheticUser generate_case_study_user(const rng::Engine& parent,
                                       const SyntheticConfig& config);

}  // namespace privlocad::trace
