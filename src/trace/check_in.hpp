// Check-in and trace value types.
//
// The paper calls one raw spatiotemporal data point a "check-in"; a user's
// trace is the time-ordered sequence of check-ins the ad network observes
// over the study window (2 years in the paper's dataset).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::trace {

/// Seconds since the Unix epoch; plain integer to keep traces serializable.
using Timestamp = std::int64_t;

/// Study window matching the paper's dataset: 2019-06-01 to 2021-05-31 UTC.
inline constexpr Timestamp kStudyStart = 1559347200;  // 2019-06-01T00:00:00Z
inline constexpr Timestamp kStudyEnd = 1622419200;    // 2021-05-31T00:00:00Z
inline constexpr Timestamp kSecondsPerDay = 86400;

/// One raw spatiotemporal observation.
struct CheckIn {
  geo::Point position;  ///< local metric coordinates (meters)
  Timestamp time = 0;
};

/// A user's full observed trace, time-ordered.
struct UserTrace {
  std::uint64_t user_id = 0;
  std::vector<CheckIn> check_ins;
};

/// Ground truth attached to synthetic users so the attack benches can
/// score inferred locations against reality.
struct GroundTruth {
  /// Top locations ordered by visit weight, heaviest first.
  std::vector<geo::Point> top_locations;
  /// Matching visit weights (sum <= 1; the remainder is nomadic mass).
  std::vector<double> weights;
};

/// A synthetic user: the observable trace plus the hidden truth.
struct SyntheticUser {
  UserTrace trace;
  GroundTruth truth;
};

/// Returns the subset of `trace` with time in [begin, end).
UserTrace slice_by_time(const UserTrace& trace, Timestamp begin,
                        Timestamp end);

/// Extracts just the positions of a trace (attack algorithms are purely
/// spatial).
std::vector<geo::Point> positions(const UserTrace& trace);

}  // namespace privlocad::trace
