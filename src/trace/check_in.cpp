#include "trace/check_in.hpp"

namespace privlocad::trace {

UserTrace slice_by_time(const UserTrace& trace, Timestamp begin,
                        Timestamp end) {
  UserTrace out;
  out.user_id = trace.user_id;
  for (const CheckIn& c : trace.check_ins) {
    if (c.time >= begin && c.time < end) out.check_ins.push_back(c);
  }
  return out;
}

std::vector<geo::Point> positions(const UserTrace& trace) {
  std::vector<geo::Point> out;
  out.reserve(trace.check_ins.size());
  for (const CheckIn& c : trace.check_ins) out.push_back(c.position);
  return out;
}

}  // namespace privlocad::trace
