#include "utility/metrics.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "geo/circle.hpp"
#include "rng/samplers.hpp"
#include "util/validation.hpp"

namespace privlocad::utility {

double utilization_rate_single(geo::Point true_location,
                               geo::Point obfuscated_location,
                               double targeting_radius_m) {
  const geo::Circle aoi(true_location, targeting_radius_m);
  const geo::Circle aor(obfuscated_location, targeting_radius_m);
  return geo::overlap_fraction(aoi, aor);
}

double utilization_rate(rng::Engine& engine, geo::Point true_location,
                        const std::vector<geo::Point>& candidates,
                        double targeting_radius_m, std::size_t samples) {
  util::require(!candidates.empty(), "utilization rate needs candidates");
  util::require_positive(targeting_radius_m, "targeting radius");
  util::require(samples > 0, "utilization rate needs samples");

  // n = 1 has the exact closed form; skip the estimator noise.
  if (candidates.size() == 1) {
    return utilization_rate_single(true_location, candidates.front(),
                                   targeting_radius_m);
  }

  const double r2 = targeting_radius_m * targeting_radius_m;
  std::size_t covered = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const geo::Point probe =
        true_location + rng::uniform_in_disk(engine, targeting_radius_m);
    for (const geo::Point& candidate : candidates) {
      if (geo::distance_squared(probe, candidate) <= r2) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(samples);
}

double efficacy_single(geo::Point true_location, geo::Point selected_candidate,
                       double targeting_radius_m) {
  // Equal radii: |AOI ∩ AOR| / |AOR| equals the lens over either circle.
  return utilization_rate_single(true_location, selected_candidate,
                                 targeting_radius_m);
}

double efficacy_weighted(geo::Point true_location,
                         const std::vector<geo::Point>& candidates,
                         const std::vector<double>& selection_probabilities,
                         double targeting_radius_m) {
  util::require(!candidates.empty(), "efficacy needs candidates");
  util::require(candidates.size() == selection_probabilities.size(),
                "candidates and probabilities differ in size");
  const double total = std::accumulate(selection_probabilities.begin(),
                                       selection_probabilities.end(), 0.0);
  util::require(std::abs(total - 1.0) < 1e-6,
                "selection probabilities must sum to 1");

  double efficacy = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    efficacy += selection_probabilities[i] *
                efficacy_single(true_location, candidates[i],
                                targeting_radius_m);
  }
  return efficacy;
}

double efficacy_monte_carlo(rng::Engine& engine, geo::Point true_location,
                            geo::Point selected_candidate,
                            double targeting_radius_m, std::size_t samples) {
  util::require_positive(targeting_radius_m, "targeting radius");
  util::require(samples > 0, "efficacy needs samples");
  const double r2 = targeting_radius_m * targeting_radius_m;
  std::size_t relevant = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const geo::Point ad =
        selected_candidate + rng::uniform_in_disk(engine, targeting_radius_m);
    if (geo::distance_squared(ad, true_location) <= r2) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(samples);
}

}  // namespace privlocad::utility
