// Generic quality-loss evaluation for any Mechanism.
//
// Quality loss is the classical LPPM utility metric (Bordenabe et al.,
// Chatzikokolakis et al.): the expected distance between the true location
// and a released output. The LBA-specific metrics (utilization rate,
// efficacy) live in utility/metrics.hpp; this evaluator complements them
// with the mechanism-agnostic view used when comparing against the
// related work, plus tail statistics deployments care about.
#pragma once

#include "lppm/mechanism.hpp"
#include "rng/engine.hpp"
#include "stats/running_stats.hpp"

namespace privlocad::utility {

struct QualityLossReport {
  double mean_m = 0.0;    ///< E[d(true, output)]
  double median_m = 0.0;  ///< 50th percentile of the displacement
  double p95_m = 0.0;     ///< 95th percentile
  double worst_m = 0.0;   ///< max observed displacement
  std::size_t outputs = 0;
};

/// Monte-Carlo quality loss of `mechanism` at `true_location`: runs
/// `trials` obfuscations and aggregates the displacement of EVERY output
/// point (multi-output mechanisms contribute n points per trial).
QualityLossReport evaluate_quality_loss(rng::Engine& engine,
                                        const lppm::Mechanism& mechanism,
                                        geo::Point true_location,
                                        std::size_t trials = 2000);

}  // namespace privlocad::utility
