#include "utility/quality_loss.hpp"

#include "stats/quantiles.hpp"
#include "util/validation.hpp"

namespace privlocad::utility {

QualityLossReport evaluate_quality_loss(rng::Engine& engine,
                                        const lppm::Mechanism& mechanism,
                                        geo::Point true_location,
                                        std::size_t trials) {
  util::require(trials > 0, "quality loss needs trials");

  std::vector<double> displacements;
  displacements.reserve(trials * mechanism.output_count());
  stats::RunningStats summary;
  for (std::size_t t = 0; t < trials; ++t) {
    for (const geo::Point& q : mechanism.obfuscate(engine, true_location)) {
      const double d = geo::distance(q, true_location);
      displacements.push_back(d);
      summary.add(d);
    }
  }

  QualityLossReport report;
  report.outputs = displacements.size();
  report.mean_m = summary.mean();
  report.worst_m = summary.max();
  report.median_m = stats::quantile(displacements, 0.5);
  report.p95_m = stats::quantile(std::move(displacements), 0.95);
  return report;
}

}  // namespace privlocad::utility
