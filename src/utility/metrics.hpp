// LBA utility metrics (paper Definitions 4 and 5).
//
// AOI (area of interest): the circle of targeting radius R around the TRUE
// location -- the ads that are actually relevant to the user.
// AOR (area of request): the same-radius circle around an OBFUSCATED
// location -- where ads are actually requested from.
//
// Utilization rate UR = |AOI ∩ AOR| / |AOI| measures how much of the
// relevant area remains reachable. With n obfuscated candidates the AOR is
// the union of the n request circles, so UR is estimated by Monte-Carlo
// point sampling inside the AOI (the n = 1 case also has the exact
// two-circle lens form, used to validate the estimator).
//
// Advertising efficacy AE = Pr[ad ∈ AOI | ad ∈ AOR] measures the chance a
// delivered ad is actually relevant. For a single selected candidate this
// is the exact lens-over-request-circle ratio; with the posterior output
// selection it is the selection-probability-weighted average.
#pragma once

#include <vector>

#include "geo/point.hpp"
#include "rng/engine.hpp"

namespace privlocad::utility {

/// Exact UR for a single obfuscated location (two-circle lens).
double utilization_rate_single(geo::Point true_location,
                               geo::Point obfuscated_location,
                               double targeting_radius_m);

/// Monte-Carlo UR for a candidate set: fraction of `samples` uniform
/// points in the AOI that fall inside at least one candidate's AOR circle.
double utilization_rate(rng::Engine& engine, geo::Point true_location,
                        const std::vector<geo::Point>& candidates,
                        double targeting_radius_m, std::size_t samples = 512);

/// Exact efficacy of delivering from one selected candidate:
/// |AOI ∩ AOR| / |AOR| (equal radii make this symmetric with UR-single).
double efficacy_single(geo::Point true_location, geo::Point selected_candidate,
                       double targeting_radius_m);

/// Efficacy of a selection strategy: the weighted average of
/// efficacy_single over the candidates with the given selection
/// probabilities. `selection_probabilities` must sum to ~1 and match
/// `candidates` in size.
double efficacy_weighted(geo::Point true_location,
                         const std::vector<geo::Point>& candidates,
                         const std::vector<double>& selection_probabilities,
                         double targeting_radius_m);

/// Monte-Carlo efficacy: draw an ad uniformly inside the selected
/// candidate's AOR and test membership in the AOI. Used by the benches to
/// mirror the paper's trial-based estimation; agrees with
/// efficacy_single in expectation.
double efficacy_monte_carlo(rng::Engine& engine, geo::Point true_location,
                            geo::Point selected_candidate,
                            double targeting_radius_m,
                            std::size_t samples = 512);

}  // namespace privlocad::utility
