#include "net/wire.hpp"

#include <cstring>

namespace privlocad::net {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
T get(const std::uint8_t* data, std::size_t& offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

void append_header(std::vector<std::uint8_t>& out, FrameType type,
                   std::uint32_t body_len) {
  put<std::uint16_t>(out, kWireMagic);
  put<std::uint8_t>(out, kWireVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  put<std::uint32_t>(out, body_len);
}

}  // namespace

void append_request(std::vector<std::uint8_t>& out,
                    const ServeRequestFrame& frame) {
  append_header(out, FrameType::kServeRequest,
                static_cast<std::uint32_t>(kServeRequestBodyBytes));
  put<std::uint64_t>(out, frame.request_id);
  put<std::uint64_t>(out, frame.user_id);
  put<double>(out, frame.x);
  put<double>(out, frame.y);
  put<std::int64_t>(out, frame.time);
}

void append_response(std::vector<std::uint8_t>& out,
                     const ServeResponseFrame& frame) {
  append_header(out, FrameType::kServeResponse,
                static_cast<std::uint32_t>(kServeResponseBodyBytes));
  put<std::uint64_t>(out, frame.request_id);
  put<std::uint8_t>(out, frame.outcome);
  put<std::uint8_t>(out, frame.kind);
  put<std::uint8_t>(out, frame.status_code);
  // Enforce fail-private at the serialization boundary: a non-released
  // response frame carries zeroed coordinates no matter what the caller
  // left in the struct.
  put<std::uint8_t>(out, frame.released);
  put<std::uint32_t>(out, frame.retries);
  put<double>(out, frame.released != 0 ? frame.x : 0.0);
  put<double>(out, frame.released != 0 ? frame.y : 0.0);
}

util::Status try_decode(const std::uint8_t* data, std::size_t n,
                        Frame& out, std::size_t& consumed) {
  consumed = 0;
  if (n < kFrameHeaderBytes) return util::Status();  // need more
  std::size_t offset = 0;
  const std::uint16_t magic = get<std::uint16_t>(data, offset);
  if (magic != kWireMagic) {
    return util::Status::parse_error("wire frame has bad magic");
  }
  const std::uint8_t version = get<std::uint8_t>(data, offset);
  if (version != kWireVersion) {
    return util::Status::parse_error("wire frame has unknown version");
  }
  const std::uint8_t type = get<std::uint8_t>(data, offset);
  const std::uint32_t body_len = get<std::uint32_t>(data, offset);

  std::size_t expected = 0;
  switch (static_cast<FrameType>(type)) {
    case FrameType::kServeRequest:
      expected = kServeRequestBodyBytes;
      break;
    case FrameType::kServeResponse:
      expected = kServeResponseBodyBytes;
      break;
    default:
      return util::Status::parse_error("wire frame has unknown type");
  }
  if (body_len != expected) {
    return util::Status::parse_error("wire frame has wrong body length");
  }
  if (n < kFrameHeaderBytes + expected) return util::Status();  // need more

  out.type = static_cast<FrameType>(type);
  if (out.type == FrameType::kServeRequest) {
    out.request.request_id = get<std::uint64_t>(data, offset);
    out.request.user_id = get<std::uint64_t>(data, offset);
    out.request.x = get<double>(data, offset);
    out.request.y = get<double>(data, offset);
    out.request.time = get<std::int64_t>(data, offset);
  } else {
    out.response.request_id = get<std::uint64_t>(data, offset);
    out.response.outcome = get<std::uint8_t>(data, offset);
    out.response.kind = get<std::uint8_t>(data, offset);
    out.response.status_code = get<std::uint8_t>(data, offset);
    out.response.released = get<std::uint8_t>(data, offset);
    out.response.retries = get<std::uint32_t>(data, offset);
    out.response.x = get<double>(data, offset);
    out.response.y = get<double>(data, offset);
  }
  consumed = offset;
  return util::Status();
}

}  // namespace privlocad::net
