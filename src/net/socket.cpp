#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace privlocad::net {

namespace {

std::string errno_suffix() {
  return std::string(": ") + std::strerror(errno);
}

}  // namespace

void UniqueFd::reset() {
  if (fd_ < 0) return;
  // On Linux the fd is released even when close returns EINTR; retrying
  // would race a reused descriptor, so one close is the whole protocol.
  ::close(fd_);
  fd_ = -1;
}

util::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::io_error("fcntl(O_NONBLOCK) failed" +
                                  errno_suffix());
  }
  return util::Status();
}

util::Result<UniqueFd> listen_loopback(std::uint16_t port,
                                       std::uint16_t& bound_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return util::Status::io_error("socket() failed" + errno_suffix());
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return util::Status::io_error("bind(127.0.0.1:" + std::to_string(port) +
                                  ") failed" + errno_suffix());
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    return util::Status::io_error("listen() failed" + errno_suffix());
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return util::Status::io_error("getsockname() failed" + errno_suffix());
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

util::Result<UniqueFd> connect_loopback(std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return util::Status::io_error("socket() failed" + errno_suffix());
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return util::Status::io_error("connect(127.0.0.1:" +
                                  std::to_string(port) + ") failed" +
                                  errno_suffix());
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

util::Status write_all(int fd, const void* data, std::size_t n) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t remaining = n;
  while (remaining > 0) {
    const ssize_t wrote = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return util::Status::io_error("send() failed" + errno_suffix());
    }
    p += wrote;
    remaining -= static_cast<std::size_t>(wrote);
  }
  return util::Status();
}

}  // namespace privlocad::net
