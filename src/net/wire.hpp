// Compact binary wire format for edge_serverd (loopback serving).
//
// The paper's edge platform sits between mobile users and the LBA
// ecosystem; edge_serverd exposes ConcurrentEdge over a socket so an
// open-loop load generator can drive it like real traffic. The format is
// deliberately minimal: fixed-size little-endian frames, one request and
// one response type, no negotiation. Frames are HOST-endian -- the
// transport is loopback-only (bench + tests on one box), and the endian
// assumption is guarded the same way the snapshot format guards it: by
// the magic constant, which reads as garbage on a mismatched peer.
//
// Frame layout (8-byte header + fixed body):
//   u16 magic    0x4C50 ("PL")
//   u8  version  kWireVersion
//   u8  type     FrameType
//   u32 body_len body byte count (fixed per type; validated)
//
// Fail-private on the wire: a response for a dropped or failed request
// carries released=0 and ZEROED coordinates -- the serializer enforces
// it, so a raw coordinate cannot leak through the transport even if a
// buggy caller hands it a ServeResult it should not.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.hpp"

namespace privlocad::net {

inline constexpr std::uint16_t kWireMagic = 0x4C50;  // "PL"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8;

enum class FrameType : std::uint8_t {
  kServeRequest = 1,
  kServeResponse = 2,
};

/// One serve request: who, where (raw coordinates -- they never come
/// back), and when. `request_id` is echoed verbatim in the response so
/// a pipelining client can match out-of-order completions.
struct ServeRequestFrame {
  std::uint64_t request_id = 0;
  std::uint64_t user_id = 0;
  double x = 0.0;
  double y = 0.0;
  std::int64_t time = 0;
};
inline constexpr std::size_t kServeRequestBodyBytes = 40;

/// One serve response. `outcome` is the core::ServeOutcome enum value,
/// `status_code` the util::ErrorCode, `released` 1 iff an (obfuscated)
/// location was released -- when 0, x/y are zero by construction.
struct ServeResponseFrame {
  std::uint64_t request_id = 0;
  std::uint8_t outcome = 0;
  std::uint8_t kind = 0;
  std::uint8_t status_code = 0;
  std::uint8_t released = 0;
  std::uint32_t retries = 0;
  double x = 0.0;
  double y = 0.0;
};
inline constexpr std::size_t kServeResponseBodyBytes = 32;

/// Largest legal frame; incremental decoding rejects anything bigger
/// before buffering it (a garbage header cannot balloon the in-buffer).
inline constexpr std::size_t kMaxFrameBytes =
    kFrameHeaderBytes + kServeRequestBodyBytes;

void append_request(std::vector<std::uint8_t>& out,
                    const ServeRequestFrame& frame);
void append_response(std::vector<std::uint8_t>& out,
                     const ServeResponseFrame& frame);

/// One decoded frame; exactly one of the two bodies is meaningful,
/// selected by `type`.
struct Frame {
  FrameType type = FrameType::kServeRequest;
  ServeRequestFrame request{};
  ServeResponseFrame response{};
};

/// Incremental decoder over a byte window. Returns:
///   - ok() with consumed > 0: one frame decoded into `out`;
///   - ok() with consumed == 0: the window holds a frame prefix -- read
///     more bytes and call again;
///   - kParseError: the window cannot start a valid frame (bad magic,
///     version, type, or body length); the connection is poisoned.
util::Status try_decode(const std::uint8_t* data, std::size_t n,
                        Frame& out, std::size_t& consumed);

}  // namespace privlocad::net
