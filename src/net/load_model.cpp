#include "net/load_model.hpp"

#include <algorithm>
#include <cmath>

#include "trace/check_in.hpp"
#include "util/validation.hpp"

namespace privlocad::net {

void LoadPlanConfig::validate() const {
  util::require(target_rps > 0.0, "target_rps must be positive");
  util::require(duration_s > 0.0, "duration_s must be positive");
  util::require(users >= 1, "need at least one user");
  util::require(zipf_exponent > 0.0, "zipf_exponent must be positive");
  if (process == ArrivalProcess::kBursty) {
    util::require(burst_factor > 1.0, "burst_factor must exceed 1");
    util::require(burst_fraction > 0.0 && burst_fraction < 1.0,
                  "burst_fraction must lie in (0, 1)");
    util::require(burst_period_s > 0.0, "burst_period_s must be positive");
  }
  if (process == ArrivalProcess::kDiurnal) {
    util::require(diurnal_amplitude >= 0.0 && diurnal_amplitude < 1.0,
                  "diurnal_amplitude must lie in [0, 1)");
    util::require(diurnal_period_s > 0.0,
                  "diurnal_period_s must be positive");
    util::require(diurnal_phase >= 0.0 && diurnal_phase < 1.0,
                  "diurnal_phase must lie in [0, 1)");
  }
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  util::require(n >= 1, "zipf needs at least one rank");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // close the CDF despite rounding
}

std::size_t ZipfSampler::sample(rng::Engine& engine) const {
  const double u = engine.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

namespace {

/// Deterministic home location for (seed, user): a point in a ~10 km
/// square, the same scale the trace synthesizers use.
geo::Point home_of(std::uint64_t seed, std::uint64_t user) {
  std::uint64_t state = seed ^ (user * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t hx = rng::splitmix64(state);
  const std::uint64_t hy = rng::splitmix64(state);
  return {static_cast<double>(hx % 10000),
          static_cast<double>(hy % 10000)};
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// The base rate `b` such that the integral of
///   b * (1 + A * sin(2*pi*(t/P + phi)))
/// over [0, D] equals target_rps * D. The envelope integral is
///   D + (A*P / 2*pi) * (cos(2*pi*phi) - cos(2*pi*(D/P + phi))),
/// so partial cycles are compensated exactly, not just in the
/// full-cycle limit.
double diurnal_base_rate(const LoadPlanConfig& config) {
  const double d = config.duration_s;
  const double p = config.diurnal_period_s;
  const double a = config.diurnal_amplitude;
  const double phi = config.diurnal_phase;
  const double envelope_integral =
      d + a * p / kTwoPi *
              (std::cos(kTwoPi * phi) - std::cos(kTwoPi * (d / p + phi)));
  return config.target_rps * d / envelope_integral;
}

}  // namespace

double diurnal_rate_rps(const LoadPlanConfig& config, double t_s) {
  const double base = diurnal_base_rate(config);
  return base *
         (1.0 + config.diurnal_amplitude *
                    std::sin(kTwoPi * (t_s / config.diurnal_period_s +
                                       config.diurnal_phase)));
}

std::vector<TimedRequest> build_open_loop_plan(
    const LoadPlanConfig& config) {
  config.validate();
  rng::Engine arrivals = rng::Engine(config.seed).split(1);
  rng::Engine popularity = rng::Engine(config.seed).split(2);
  rng::Engine jitter = rng::Engine(config.seed).split(3);
  const ZipfSampler zipf(config.users, config.zipf_exponent);

  // Bursty: solve the off rate so the cycle MEAN equals target_rps:
  //   f * (F * r_off) + (1 - f) * r_off = target  =>
  //   r_off = target / (f*F + 1 - f).
  const double off_rate =
      config.process == ArrivalProcess::kBursty
          ? config.target_rps / (config.burst_fraction * config.burst_factor +
                                 1.0 - config.burst_fraction)
          : config.target_rps;
  const double on_rate = off_rate * config.burst_factor;

  std::vector<TimedRequest> plan;
  plan.reserve(static_cast<std::size_t>(config.target_rps *
                                        config.duration_s * 1.25) +
               16);
  // Diurnal: thin a homogeneous Poisson process at the envelope's peak
  // rate; a candidate at time t survives with probability rate(t)/peak.
  // Exact for an inhomogeneous Poisson process, and the normalized base
  // rate keeps the expected count at target_rps * duration_s.
  const double diurnal_base = config.process == ArrivalProcess::kDiurnal
                                  ? diurnal_base_rate(config)
                                  : 0.0;
  const double diurnal_peak =
      diurnal_base * (1.0 + config.diurnal_amplitude);

  double now = 0.0;
  std::uint64_t index = 0;
  while (true) {
    if (config.process == ArrivalProcess::kDiurnal) {
      now += -std::log(arrivals.uniform_positive()) / diurnal_peak;
      if (now >= config.duration_s) break;
      if (arrivals.uniform() * diurnal_peak >
          diurnal_rate_rps(config, now)) {
        continue;  // thinned candidate: not an arrival
      }
    } else {
      double rate = off_rate;
      if (config.process == ArrivalProcess::kBursty) {
        const double phase = std::fmod(now, config.burst_period_s);
        rate = phase < config.burst_fraction * config.burst_period_s
                   ? on_rate
                   : off_rate;
      }
      now += -std::log(arrivals.uniform_positive()) / rate;
      if (now >= config.duration_s) break;
    }

    const std::uint64_t user =
        static_cast<std::uint64_t>(zipf.sample(popularity)) + 1;
    const geo::Point home = home_of(config.seed, user);

    TimedRequest timed;
    timed.at_s = now;
    timed.request.request_id = index;
    timed.request.user_id = user;
    timed.request.x = home.x + jitter.uniform_in(-50.0, 50.0);
    timed.request.y = home.y + jitter.uniform_in(-50.0, 50.0);
    timed.request.time =
        trace::kStudyStart + static_cast<trace::Timestamp>(index);
    plan.push_back(timed);
    ++index;
  }
  return plan;
}

}  // namespace privlocad::net
