// Admission control for edge_serverd: bounded per-worker request queues
// with a pluggable shed policy.
//
// An open-loop arrival process does not slow down when the box saturates
// (that is the point of the harness), so the server must bound its own
// queueing or die by memory. Both policies decide AT PUSH TIME and shed
// requests get an immediate degraded_dropped response (fail private:
// nothing is released), tallied into the same edge.serve.degraded_dropped
// counter the fault paths use -- one box-level taxonomy for "dropped
// rather than leak".
//
//   kQueueCapacity -- PR 8's policy, fully deterministic: shed iff the
//     worker's queue is at capacity at admission time.
//   kLatencyBudget -- shed on PROJECTED QUEUE DELAY instead of raw queue
//     length: the workers feed back observed net.queue_delay_us samples
//     (normalized per queued item ahead at admission, EWMA-smoothed), and
//     an arrival is shed when depth x EWMA exceeds the configured budget.
//     A short latency budget sheds earlier than the capacity bound when
//     the serving path is slow, and never later: capacity stays the hard
//     backstop. The decision still happens entirely at push, so
//     served + shed == sent accounting is exact.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "net/wire.hpp"
#include "util/status.hpp"

namespace privlocad::net {

/// Which shed rule a BoundedRequestQueue applies at push.
enum class AdmissionPolicy : std::uint8_t {
  kQueueCapacity = 0,  ///< shed iff the queue is full (PR 8 semantics)
  kLatencyBudget = 1,  ///< shed when projected queue delay exceeds budget
};

/// "queue_capacity" | "latency_budget" -- stable names for flags, JSON
/// records, and log lines.
const char* admission_policy_name(AdmissionPolicy policy);

/// Parses a policy name; typed kParseError on anything else.
util::Result<AdmissionPolicy> parse_admission_policy(const char* name);

/// One admitted request waiting for a worker. `admitted` timestamps the
/// push so the worker can split queue delay from service time;
/// `depth_at_admit` is how many requests sat ahead, so the observed
/// delay can be normalized into a per-item cost for the EWMA.
struct PendingRequest {
  std::uint64_t conn_id = 0;
  ServeRequestFrame request{};
  std::chrono::steady_clock::time_point admitted{};
  std::size_t depth_at_admit = 0;
};

/// MPSC-ish bounded queue (one IO thread pushes, one worker pops; the
/// bound is what matters, not the concurrency shape). try_push never
/// blocks -- a false return is the shed decision, made at push time.
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(
      std::size_t capacity,
      AdmissionPolicy policy = AdmissionPolicy::kQueueCapacity,
      std::uint32_t latency_budget_us = 0);

  /// False iff the queue is at capacity, the policy projects the new
  /// arrival past its latency budget, or the queue is closed.
  bool try_push(PendingRequest request);

  /// Blocks until an item or close; false means closed AND drained.
  bool pop(PendingRequest& out);

  /// Wakes poppers; pop drains the backlog then returns false.
  void close();

  /// Worker feedback: the queue delay a popped request actually saw and
  /// the depth it was admitted behind. Folds delay/max(1,depth) -- the
  /// per-queued-item wait -- into the EWMA the latency-budget policy
  /// projects from. Called from the worker thread; lock-free.
  void observe_queue_delay_us(double delay_us, std::size_t depth_at_admit);

  /// The delay a request admitted right now is projected to wait:
  /// current depth x EWMA(per-item queue delay). What try_push compares
  /// against the budget under kLatencyBudget.
  double projected_delay_us() const;

  /// The smoothed per-queued-item delay estimate (microseconds).
  double ewma_item_delay_us() const {
    return ewma_item_delay_us_.load(std::memory_order_relaxed);
  }

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  AdmissionPolicy policy() const { return policy_; }
  std::uint32_t latency_budget_us() const { return latency_budget_us_; }

 private:
  const std::size_t capacity_;
  const AdmissionPolicy policy_;
  const std::uint32_t latency_budget_us_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
  /// EWMA over delay/max(1,depth) samples, alpha = 1/8. Atomic so the
  /// worker writes and the IO thread reads without taking the queue
  /// mutex on the serve path.
  std::atomic<double> ewma_item_delay_us_{0.0};
};

}  // namespace privlocad::net
