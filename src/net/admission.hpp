// Admission control for edge_serverd: bounded per-worker request queues.
//
// An open-loop arrival process does not slow down when the box saturates
// (that is the point of the harness), so the server must bound its own
// queueing or die by memory. The policy is deliberately simple and
// DETERMINISTIC: a request is shed if and only if its worker's queue is
// at capacity at admission time. Shed requests get an immediate
// degraded_dropped response (fail private: nothing is released) and are
// tallied into the same edge.serve.degraded_dropped counter the fault
// paths use -- one box-level taxonomy for "dropped rather than leak".
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "net/wire.hpp"

namespace privlocad::net {

/// One admitted request waiting for a worker. `admitted` timestamps the
/// push so the worker can split queue delay from service time.
struct PendingRequest {
  std::uint64_t conn_id = 0;
  ServeRequestFrame request{};
  std::chrono::steady_clock::time_point admitted{};
};

/// MPSC-ish bounded queue (one IO thread pushes, one worker pops; the
/// bound is what matters, not the concurrency shape). try_push never
/// blocks -- full means shed, decided at push time.
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(std::size_t capacity);

  /// False iff the queue is at capacity or closed (the shed decision).
  bool try_push(PendingRequest request);

  /// Blocks until an item or close; false means closed AND drained.
  bool pop(PendingRequest& out);

  /// Wakes poppers; pop drains the backlog then returns false.
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
};

}  // namespace privlocad::net
