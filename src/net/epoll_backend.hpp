// The PR 8 serving loop's IO mechanics, repackaged behind IoBackend:
// level-triggered epoll, readiness-driven recv/send, EPOLLOUT armed only
// while a backlog exists, EPOLLIN disarmed while the sink holds reads
// paused. Behavior- and metrics-identical to the pre-contract loop --
// the protocol core (net/server.cpp) makes every policy decision; this
// class only moves bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/io_backend.hpp"
#include "net/socket.hpp"

namespace privlocad::net {

class EpollBackend final : public IoBackend {
 public:
  EpollBackend() = default;

  IoBackendKind kind() const override { return IoBackendKind::kEpoll; }
  util::Status init(int listen_fd, int wake_fd, IoSink& sink) override;
  util::Status poll(int timeout_ms) override;
  void queue_send(std::uint64_t conn_id, const std::uint8_t* data,
                  std::size_t n) override;
  void flush(std::uint64_t conn_id) override;
  std::size_t outbound_bytes(std::uint64_t conn_id) const override;
  void pause_reads(std::uint64_t conn_id) override;
  void resume_reads(std::uint64_t conn_id) override;
  void close_connection(std::uint64_t conn_id) override;
  std::size_t open_connection_count() const override;
  void shutdown_flush() override;

 private:
  /// Per-connection IO state. `out` is head-indexed so flushing never
  /// memmoves the whole buffer per send; compaction happens when the
  /// head passes half the buffer (same policy as PR 8).
  struct Conn {
    UniqueFd fd;
    std::vector<std::uint8_t> out;
    std::size_t out_head = 0;
    bool want_write = false;   ///< EPOLLOUT currently armed
    bool read_paused = false;  ///< EPOLLIN disarmed by the sink
    bool dead = false;         ///< close at the end of this poll batch

    std::size_t out_backlog() const { return out.size() - out_head; }
    void compact_out();
  };

  void accept_all();
  /// Sends until EAGAIN; marks the conn dead on a hard error. Returns
  /// true when the backlog shrank.
  bool try_flush(Conn& conn);
  void update_interest(std::uint64_t id, Conn& conn);
  void handle_readable(std::uint64_t id, Conn& conn);
  void reap_dead();

  IoSink* sink_ = nullptr;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  UniqueFd epoll_fd_;
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 8;  ///< ids below 8 are reserved marks
  std::vector<std::uint8_t> read_chunk_;
};

}  // namespace privlocad::net
