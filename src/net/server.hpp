// edge_serverd's serving core: an epoll IO loop + worker pool wrapping
// ConcurrentEdge behind the wire format (net/wire.hpp), with bounded
// admission queues and byte-budgeted backpressure so an open-loop
// overload degrades into counted sheds instead of unbounded memory.
//
// Threading model:
//   - ONE IO thread owns every socket: accepts, reads, frames, admits,
//     and writes. No fd is ever touched off that thread, so connection
//     state needs no locking.
//   - N worker threads each own one BoundedRequestQueue and call
//     ConcurrentEdge::serve (itself shard-locked). Users hash to workers
//     with the SAME fibonacci multiply ConcurrentEdge uses for shards,
//     so one user's requests stay ordered end to end.
//   - Workers hand finished responses back through a mutex-swapped
//     vector + eventfd wakeup; the IO thread serializes them onto the
//     owning connection (or drops them if it has gone away).
//
// Overload behavior (the tentpole contract):
//   - A request whose worker queue is full is shed AT ADMISSION:
//     immediate degraded_dropped response, released=0, zero coordinates,
//     counted in net.shed AND edge.serve.degraded_dropped (the shared
//     registry), never queued. Deterministic: the decision is purely
//     queue-size-at-push.
//   - A connection whose outbound buffer exceeds max_outbound_bytes
//     stops being read (EPOLLIN disarmed) until the peer drains it below
//     half the cap -- TCP backpressure propagates to the client instead
//     of the server buffering without bound.
//   - net.queue_delay_us / net.service_time_us split every served
//     request's latency into time-waiting vs time-serving, so a bench
//     can tell queueing collapse from a slow serving path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/concurrent_edge.hpp"
#include "net/admission.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace privlocad::net {

/// Registry names for the server-side metrics, alongside edge_metrics in
/// the SAME registry (ConcurrentEdge's), so one JSON dump shows the whole
/// box: wire -> queue -> serve.
namespace net_metrics {
inline constexpr const char* kConnectionsOpened = "net.connections.opened";
inline constexpr const char* kConnectionsClosed = "net.connections.closed";
inline constexpr const char* kRequests = "net.requests";
inline constexpr const char* kResponses = "net.responses";
inline constexpr const char* kShed = "net.shed";
inline constexpr const char* kParseErrors = "net.parse_errors";
inline constexpr const char* kBackpressurePauses = "net.backpressure_pauses";
/// Time from admission to worker pickup (microseconds).
inline constexpr const char* kQueueDelayUs = "net.queue_delay_us";
/// Time inside ConcurrentEdge::serve (microseconds).
inline constexpr const char* kServiceTimeUs = "net.service_time_us";
/// Instantaneous total backlog across worker queues (sampled on admit).
inline constexpr const char* kQueueDepth = "net.queue_depth";
}  // namespace net_metrics

struct ServerConfig {
  /// Listen port; 0 = kernel-assigned (read it back via port()).
  std::uint16_t port = 0;
  /// Worker threads, one bounded queue each.
  std::size_t workers = 2;
  /// Per-worker queue bound: the admission-control knob.
  std::size_t queue_capacity = 1024;
  /// Outbound byte budget per connection before reads pause.
  std::size_t max_outbound_bytes = 1 << 20;
  /// Artificial per-request service delay (test hook: makes a tiny
  /// serve() long enough to force queueing/shedding deterministically).
  std::uint32_t service_delay_us = 0;

  /// Throws util::InvalidArgument on out-of-domain fields.
  void validate() const;
};

/// The server. start() spawns the threads; stop() (or the destructor)
/// drains and joins them. Between the two, clients connect to
/// 127.0.0.1:port() and speak the wire format.
class EdgeServer {
 public:
  EdgeServer(core::EdgeConfig edge_config, ServerConfig server_config);
  ~EdgeServer();
  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  util::Status start();

  /// Idempotent. Closes the admission queues (workers drain their
  /// backlog -- every admitted request still gets a response), then
  /// stops the IO thread after it has flushed what it can.
  void stop();

  /// The bound port; valid after start().
  std::uint16_t port() const { return port_; }

  core::ConcurrentEdge& edge() { return edge_; }
  /// The shared registry (edge_metrics + net_metrics).
  obs::MetricsRegistry& metrics() { return edge_.metrics(); }

 private:
  struct Connection;
  struct CompletedResponse {
    std::uint64_t conn_id = 0;
    ServeResponseFrame frame{};
  };

  void io_loop();
  void worker_loop(std::size_t worker_index);
  std::size_t worker_for(std::uint64_t user_id) const;

  ServerConfig config_;
  core::ConcurrentEdge edge_;

  UniqueFd listen_fd_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<BoundedRequestQueue>> queues_;
  std::vector<std::thread> workers_;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex completed_mutex_;
  std::vector<CompletedResponse> completed_;

  // Hot-path metric handles, resolved once in start().
  obs::Counter* connections_opened_ = nullptr;
  obs::Counter* connections_closed_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* responses_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* parse_errors_ = nullptr;
  obs::Counter* backpressure_pauses_ = nullptr;
  obs::Counter* degraded_dropped_ = nullptr;
  obs::LatencyHistogram* queue_delay_us_ = nullptr;
  obs::LatencyHistogram* service_time_us_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace privlocad::net
