// edge_serverd's serving core: ONE protocol state machine (framing,
// admission, worker hashing, byte-budget backpressure, metrics) written
// against the backend-neutral net::IoBackend contract, plus a worker
// pool wrapping ConcurrentEdge behind the wire format (net/wire.hpp).
// The IO engine underneath -- epoll readiness or io_uring completions --
// is a ServerConfig choice; see net/io_backend.hpp for the contract and
// the selection rules (PRIVLOCAD_NET_BACKEND, loud failure on an
// unsatisfiable explicit request).
//
// Threading model:
//   - ONE IO thread owns the backend and every connection: accepts,
//     reads, frames, admits, and writes all happen in IoSink callbacks
//     or between poll() batches on that thread, so connection state
//     needs no locking.
//   - N worker threads each own one BoundedRequestQueue and call
//     ConcurrentEdge::serve (itself shard-locked). Users hash to workers
//     with the SAME fibonacci multiply ConcurrentEdge uses for shards,
//     so one user's requests stay ordered end to end.
//   - Workers hand finished responses back through a mutex-swapped
//     vector + eventfd wakeup; the IO thread serializes them onto the
//     owning connection (or drops them if it has gone away).
//
// Overload behavior:
//   - A request is shed AT ADMISSION -- immediate degraded_dropped
//     response, released=0, zero coordinates, counted in net.shed AND
//     edge.serve.degraded_dropped (the shared registry), never queued.
//     Which arrivals shed is the AdmissionPolicy: queue_capacity (full
//     queue, PR 8 semantics) or latency_budget (projected queue delay
//     over budget; see net/admission.hpp). Either way the decision is
//     made at push, so served + shed == sent holds exactly.
//   - A connection whose outbound buffer exceeds max_outbound_bytes
//     stops being read (backend pause_reads) until the peer drains it
//     below half the cap -- TCP backpressure propagates to the client
//     instead of the server buffering without bound.
//   - net.queue_delay_us / net.service_time_us split every served
//     request's latency into time-waiting vs time-serving, so a bench
//     can tell queueing collapse from a slow serving path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/concurrent_edge.hpp"
#include "net/admission.hpp"
#include "net/io_backend.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace privlocad::net {

/// Registry names for the server-side metrics, alongside edge_metrics in
/// the SAME registry (ConcurrentEdge's), so one JSON dump shows the whole
/// box: wire -> queue -> serve.
namespace net_metrics {
inline constexpr const char* kConnectionsOpened = "net.connections.opened";
inline constexpr const char* kConnectionsClosed = "net.connections.closed";
inline constexpr const char* kRequests = "net.requests";
inline constexpr const char* kResponses = "net.responses";
inline constexpr const char* kShed = "net.shed";
inline constexpr const char* kParseErrors = "net.parse_errors";
inline constexpr const char* kBackpressurePauses = "net.backpressure_pauses";
/// Time from admission to worker pickup (microseconds).
inline constexpr const char* kQueueDelayUs = "net.queue_delay_us";
/// Time inside ConcurrentEdge::serve (microseconds).
inline constexpr const char* kServiceTimeUs = "net.service_time_us";
/// Instantaneous total backlog across worker queues (sampled on admit).
inline constexpr const char* kQueueDepth = "net.queue_depth";
/// The resolved IoBackendKind, as a gauge (1 = epoll, 2 = io_uring), so
/// a metrics dump says which engine actually served.
inline constexpr const char* kBackend = "net.backend";
}  // namespace net_metrics

/// Validated aggregate, EdgeConfig-style: mutate via the fluent with_*
/// copies, check with validated(), hand to EdgeServer::create (which
/// validates again -- an EdgeServer never exists around a bad config).
struct ServerConfig {
  /// Listen port; 0 = kernel-assigned (read it back via port()).
  /// Deliberately wider than uint16 so an out-of-range request is a
  /// typed validation error instead of a silent truncation.
  std::uint32_t port = 0;
  /// Worker threads, one bounded queue each.
  std::size_t workers = 2;
  /// Per-worker queue bound: the hard admission backstop.
  std::size_t queue_capacity = 1024;
  /// Outbound byte budget per connection before reads pause.
  std::size_t max_outbound_bytes = 1 << 20;
  /// Artificial per-request service delay (test hook: makes a tiny
  /// serve() long enough to force queueing/shedding deterministically).
  std::uint32_t service_delay_us = 0;
  /// Which IO engine serves the sockets. kAuto defers to
  /// PRIVLOCAD_NET_BACKEND and then capability; an explicit request this
  /// build/kernel cannot satisfy fails EdgeServer::create loudly.
  IoBackendKind backend = IoBackendKind::kAuto;
  /// Which shed rule the worker queues apply at admission.
  AdmissionPolicy admission = AdmissionPolicy::kQueueCapacity;
  /// The projected-queue-delay budget for kLatencyBudget (ignored by
  /// kQueueCapacity).
  std::uint32_t latency_budget_us = 20000;

  ServerConfig with_port(std::uint32_t value) const {
    ServerConfig copy = *this;
    copy.port = value;
    return copy;
  }
  ServerConfig with_workers(std::size_t value) const {
    ServerConfig copy = *this;
    copy.workers = value;
    return copy;
  }
  ServerConfig with_queue_capacity(std::size_t value) const {
    ServerConfig copy = *this;
    copy.queue_capacity = value;
    return copy;
  }
  ServerConfig with_max_outbound_bytes(std::size_t value) const {
    ServerConfig copy = *this;
    copy.max_outbound_bytes = value;
    return copy;
  }
  ServerConfig with_service_delay_us(std::uint32_t value) const {
    ServerConfig copy = *this;
    copy.service_delay_us = value;
    return copy;
  }
  ServerConfig with_backend(IoBackendKind value) const {
    ServerConfig copy = *this;
    copy.backend = value;
    return copy;
  }
  ServerConfig with_admission(AdmissionPolicy value) const {
    ServerConfig copy = *this;
    copy.admission = value;
    return copy;
  }
  ServerConfig with_latency_budget_us(std::uint32_t value) const {
    ServerConfig copy = *this;
    copy.latency_budget_us = value;
    return copy;
  }

  /// Typed kInvalidArgument naming the first out-of-domain field.
  util::Status validated() const;
};

/// The server. Construct through create() -- it validates the config,
/// resolves + constructs the IO backend, binds the socket, and returns a
/// typed Status for every failure (bad port, bind failure, unsatisfiable
/// backend request) instead of throwing. start() spawns the threads;
/// stop() (or the destructor) drains and joins them. Between the two,
/// clients connect to 127.0.0.1:port() and speak the wire format.
class EdgeServer final : private IoSink {
 public:
  static util::Result<std::unique_ptr<EdgeServer>> create(
      core::EdgeConfig edge_config, ServerConfig server_config);

  ~EdgeServer() override;
  EdgeServer(const EdgeServer&) = delete;
  EdgeServer& operator=(const EdgeServer&) = delete;

  /// Spawns the worker + IO threads. kFailedPrecondition if already
  /// started.
  util::Status start();

  /// Idempotent. Closes the admission queues (workers drain their
  /// backlog -- every admitted request still gets a response), then
  /// stops the IO thread after it has flushed what it can.
  void stop();

  /// The bound port; valid as soon as create() returns.
  std::uint16_t port() const { return port_; }

  /// The engine actually serving (resolved: kEpoll or kIoUring).
  IoBackendKind backend_kind() const { return backend_kind_; }

  core::ConcurrentEdge& edge() { return edge_; }
  /// The shared registry (edge_metrics + net_metrics).
  obs::MetricsRegistry& metrics() { return edge_.metrics(); }

 private:
  /// Protocol-side per-connection state: the inbound framing buffer and
  /// the core's own view of backpressure. The backend owns the fd and
  /// the outbound buffer. `in` is head-indexed so framing never
  /// memmoves the whole buffer per event.
  struct ConnState {
    std::vector<std::uint8_t> in;
    std::size_t in_head = 0;
    bool read_paused = false;

    void compact_in();
  };
  struct CompletedResponse {
    std::uint64_t conn_id = 0;
    ServeResponseFrame frame{};
  };

  EdgeServer(core::EdgeConfig edge_config, ServerConfig server_config,
             IoBackendKind backend_kind,
             std::unique_ptr<IoBackend> backend);

  // IoSink (all on the IO thread, from inside backend_->poll()).
  void on_accept(std::uint64_t conn_id) override;
  void on_data(std::uint64_t conn_id, const std::uint8_t* data,
               std::size_t n) override;
  void on_writable_resume(std::uint64_t conn_id) override;
  void on_closed(std::uint64_t conn_id) override;

  void io_loop();
  void worker_loop(std::size_t worker_index);
  std::size_t worker_for(std::uint64_t user_id) const;
  /// Serializes `frame` and queues it on `conn_id` (no flush).
  void queue_response(std::uint64_t conn_id,
                      const ServeResponseFrame& frame);
  /// Sink-initiated close: poisoned stream. Counts the close and drops
  /// both sides' state.
  void close_and_forget(std::uint64_t conn_id);
  /// Pause/resume decision against the byte budget after a flush.
  void reevaluate_backpressure(std::uint64_t conn_id);
  void drain_completed();

  ServerConfig config_;
  core::ConcurrentEdge edge_;
  IoBackendKind backend_kind_ = IoBackendKind::kEpoll;
  std::unique_ptr<IoBackend> backend_;

  UniqueFd listen_fd_;
  UniqueFd wake_fd_;
  std::uint16_t port_ = 0;

  std::unordered_map<std::uint64_t, ConnState> conn_states_;
  std::vector<std::uint8_t> encode_scratch_;
  std::vector<CompletedResponse> drain_scratch_;
  std::vector<std::uint64_t> flush_scratch_;

  std::vector<std::unique_ptr<BoundedRequestQueue>> queues_;
  std::vector<std::thread> workers_;
  std::thread io_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex completed_mutex_;
  std::vector<CompletedResponse> completed_;

  // Hot-path metric handles, resolved once in create().
  obs::Counter* connections_opened_ = nullptr;
  obs::Counter* connections_closed_ = nullptr;
  obs::Counter* requests_ = nullptr;
  obs::Counter* responses_ = nullptr;
  obs::Counter* shed_ = nullptr;
  obs::Counter* parse_errors_ = nullptr;
  obs::Counter* backpressure_pauses_ = nullptr;
  obs::Counter* degraded_dropped_ = nullptr;
  obs::LatencyHistogram* queue_delay_us_ = nullptr;
  obs::LatencyHistogram* service_time_us_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
};

}  // namespace privlocad::net
