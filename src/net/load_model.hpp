// Open-loop load models: arrival processes + user popularity.
//
// The bench needs traffic that looks like an advertising edge's: request
// INSTANTS from a stochastic arrival process pinned to a target rate
// (Poisson for steady load, an on/off modulated Poisson for bursts), and
// request USERS from a Zipf popularity law (a few hot users dominate, a
// long tail trickles -- the regime that stresses per-user shard/worker
// affinity). Everything is generated ahead of time from one seed, so a
// plan is a deterministic, replayable artifact: same config, same bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "rng/engine.hpp"

namespace privlocad::net {

enum class ArrivalProcess {
  kPoisson,  ///< exponential gaps at the target rate
  kBursty,   ///< on/off modulated Poisson (same mean rate, bursty peaks)
  kDiurnal,  ///< sinusoidal time-of-day envelope (same mean rate)
};

struct LoadPlanConfig {
  double target_rps = 1000.0;
  double duration_s = 1.0;
  ArrivalProcess process = ArrivalProcess::kPoisson;

  /// Bursty shape: the on-phase rate is `burst_factor` times the off
  /// rate; `burst_fraction` of each `burst_period_s` cycle is on. The
  /// off/on rates are solved so the MEAN rate stays target_rps.
  double burst_factor = 8.0;
  double burst_fraction = 0.125;
  double burst_period_s = 0.25;

  /// Diurnal shape: the instantaneous rate follows
  ///   base * (1 + amplitude * sin(2*pi*(t/period + phase)))
  /// where `base` is solved ANALYTICALLY so the expected request count
  /// over [0, duration_s] equals target_rps * duration_s for ANY
  /// duration (partial cycles included) -- the mean rate is preserved,
  /// only its time-of-day distribution changes. Arrivals are drawn by
  /// thinning a homogeneous Poisson process at the peak rate, which is
  /// exact for an inhomogeneous Poisson process.
  double diurnal_amplitude = 0.6;   ///< peak/trough swing, in [0, 1)
  double diurnal_period_s = 1.0;    ///< one synthetic "day"
  double diurnal_phase = 0.0;       ///< cycle offset, fraction in [0, 1)

  /// User population and Zipf skew (exponent ~1 = classic web skew).
  std::size_t users = 1000;
  double zipf_exponent = 1.1;

  std::uint64_t seed = 1;

  /// Throws util::InvalidArgument on out-of-domain fields.
  void validate() const;
};

/// One scheduled request: send at `at_s` seconds after the run starts.
struct TimedRequest {
  double at_s = 0.0;
  ServeRequestFrame request{};
};

/// Zipf(s) sampler over ranks [0, n): P(rank k) proportional to
/// 1/(k+1)^s, via a precomputed CDF + binary search. Deterministic given
/// the engine's state.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(rng::Engine& engine) const;

 private:
  std::vector<double> cdf_;
};

/// The instantaneous diurnal arrival rate (requests/second) at `t_s`
/// seconds into the run, for a kDiurnal config: the normalized envelope
/// whose integral over [0, duration_s] is exactly
/// target_rps * duration_s. Exposed so tests can check the mean-rate
/// preservation property analytically and benches can report the
/// peak/trough rates they actually drove.
double diurnal_rate_rps(const LoadPlanConfig& config, double t_s);

/// Builds the full request plan: arrival instants from the configured
/// process, users from Zipf rank, per-user home coordinates derived from
/// (seed, user) with small per-request jitter, timestamps advancing one
/// second per request from the study epoch. Sorted by at_s; request_id
/// is the plan index.
std::vector<TimedRequest> build_open_loop_plan(const LoadPlanConfig& config);

}  // namespace privlocad::net
