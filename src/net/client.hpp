// Client side of the wire format: a small blocking client for tests and
// tooling, plus the OPEN-LOOP runner that drives a load plan against a
// live server.
//
// Open loop means arrivals follow the schedule, not the server: a
// request is sent at its scheduled instant whether or not earlier
// responses have come back, so offered load stays fixed while the server
// saturates -- the regime where admission control earns its keep.
// Latency is measured from the SCHEDULED send time, not the actual one,
// so queueing in the client cannot hide server-side delay (no
// coordinated omission).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/load_model.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace privlocad::net {

/// Blocking request/response client (one connection). Supports
/// pipelining: send N, then receive N.
class BlockingClient {
 public:
  static util::Result<BlockingClient> connect(std::uint16_t port);

  util::Status send(const ServeRequestFrame& request);
  util::Result<ServeResponseFrame> receive();

  /// send + receive in one call.
  util::Result<ServeResponseFrame> call(const ServeRequestFrame& request);

 private:
  explicit BlockingClient(UniqueFd fd) : fd_(std::move(fd)) {}

  UniqueFd fd_;
  std::vector<std::uint8_t> in_;
  std::size_t in_head_ = 0;
};

struct OpenLoopConfig {
  std::uint16_t port = 0;
  /// Client connections the plan round-robins across (per-connection
  /// ordering would otherwise serialize the whole plan behind one TCP
  /// stream's backpressure).
  std::size_t connections = 4;
  /// Seconds to wait for stragglers after the last send.
  double drain_timeout_s = 3.0;

  void validate() const;
};

/// Everything one open-loop run observed. `offered` counts scheduled
/// requests, `sent` those actually written (equal unless a connection
/// died); per-outcome tallies partition `responses`; `missing` =
/// sent - responses after the drain window (0 in a healthy run: every
/// admitted request is answered, sheds immediately).
struct OpenLoopStats {
  std::uint64_t offered = 0;
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t served = 0;
  std::uint64_t served_after_retry = 0;
  std::uint64_t degraded_cached = 0;
  std::uint64_t degraded_dropped = 0;
  std::uint64_t failed = 0;
  /// Released responses whose coordinates bit-equal the raw request
  /// coordinates: the wire-level fail-private check. Must be 0.
  std::uint64_t raw_leaks = 0;
  std::uint64_t wire_errors = 0;
  std::uint64_t missing = 0;
  double wall_seconds = 0.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  ///< responses / wall
  /// Client-observed latency (microseconds) from SCHEDULED arrival to
  /// response -- includes any send-side slip, so no coordinated omission.
  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;

  double shed_fraction() const {
    return responses > 0
               ? static_cast<double>(degraded_dropped) /
                     static_cast<double>(responses)
               : 0.0;
  }
};

/// Runs `plan` against 127.0.0.1:config.port open-loop. Single-threaded:
/// one poll loop interleaves schedule-driven sends with response reads
/// across all connections.
util::Result<OpenLoopStats> run_open_loop(
    const OpenLoopConfig& config, const std::vector<TimedRequest>& plan);

}  // namespace privlocad::net
