// Thin RAII + typed-Status layer over the POSIX socket calls that
// edge_serverd and its clients share. Loopback (127.0.0.1) only: the
// serving surface this PR adds is a bench/test harness, not an exposed
// daemon, so there is no address configuration to get wrong.
//
// All helpers retry EINTR and report failures as util::Status with errno
// context -- the same taxonomy the rest of the serving stack uses, so a
// socket failure is programmatically distinguishable from a wire parse
// error or an admission drop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "util/status.hpp"

namespace privlocad::net {

/// Move-only owning fd. Close is EINTR-aware and swallowed: sockets here
/// carry no buffered user data at destruction time (flushing is explicit
/// on the write paths), so a close error has nothing left to lose.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

/// Sets O_NONBLOCK on `fd`.
util::Status set_nonblocking(int fd);

/// Listening TCP socket bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral); the bound port comes back in `bound_port`.
util::Result<UniqueFd> listen_loopback(std::uint16_t port,
                                       std::uint16_t& bound_port);

/// Blocking TCP connect to 127.0.0.1:`port` with TCP_NODELAY set (the
/// request/response frames are far smaller than a segment; Nagle would
/// serialize the whole bench behind delayed ACKs).
util::Result<UniqueFd> connect_loopback(std::uint16_t port);

/// Writes all `n` bytes to a BLOCKING fd, retrying EINTR/short writes.
util::Status write_all(int fd, const void* data, std::size_t n);

}  // namespace privlocad::net
