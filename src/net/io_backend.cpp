#include "net/io_backend.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "net/epoll_backend.hpp"
#include "net/io_uring_backend.hpp"

namespace privlocad::net {

const char* io_backend_kind_name(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kAuto:
      return "auto";
    case IoBackendKind::kEpoll:
      return "epoll";
    case IoBackendKind::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

util::Result<IoBackendKind> parse_io_backend_kind(const char* name) {
  if (name == nullptr || *name == '\0' ||
      std::strcmp(name, "auto") == 0) {
    return IoBackendKind::kAuto;
  }
  if (std::strcmp(name, "epoll") == 0) return IoBackendKind::kEpoll;
  if (std::strcmp(name, "io_uring") == 0) return IoBackendKind::kIoUring;
  return util::Status::parse_error(
      std::string("net backend must be auto | epoll | io_uring, got '") +
      name + "'");
}

namespace {

/// An explicit io_uring request that cannot be satisfied must fail
/// loudly (mirrors PRIVLOCAD_SIMD=avx2 on a scalar build): a bench must
/// never report io_uring numbers that were silently measured on epoll.
util::Status io_uring_unsatisfiable(const char* who) {
  if (!io_uring_compiled_in()) {
    return util::Status::failed_precondition(
        std::string(who) +
        ": io_uring requested but this binary was built without the "
        "io_uring backend (PRIVLOCAD_IO_URING=OFF or the configure "
        "probe failed)");
  }
  return util::Status::failed_precondition(
      std::string(who) +
      ": io_uring requested but the running kernel rejected the ring "
      "(io_uring_setup unavailable or missing EXT_ARG timed waits)");
}

}  // namespace

util::Result<IoBackendKind> resolve_io_backend(IoBackendKind requested) {
  if (requested == IoBackendKind::kIoUring) {
    if (!io_uring_available()) {
      return io_uring_unsatisfiable("ServerConfig.backend");
    }
    return IoBackendKind::kIoUring;
  }
  if (requested == IoBackendKind::kEpoll) return IoBackendKind::kEpoll;

  // kAuto: the environment decides, then capability.
  const char* env = std::getenv("PRIVLOCAD_NET_BACKEND");
  util::Result<IoBackendKind> from_env = parse_io_backend_kind(env);
  if (!from_env.ok()) {
    return util::Status::parse_error("PRIVLOCAD_NET_BACKEND: " +
                                     from_env.status().message());
  }
  if (from_env.value() == IoBackendKind::kIoUring) {
    if (!io_uring_available()) {
      return io_uring_unsatisfiable("PRIVLOCAD_NET_BACKEND");
    }
    return IoBackendKind::kIoUring;
  }
  if (from_env.value() == IoBackendKind::kEpoll) {
    return IoBackendKind::kEpoll;
  }
  return io_uring_available() ? IoBackendKind::kIoUring
                              : IoBackendKind::kEpoll;
}

util::Result<std::unique_ptr<IoBackend>> make_io_backend(
    IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kEpoll:
      return std::unique_ptr<IoBackend>(new EpollBackend());
    case IoBackendKind::kIoUring:
      if (!io_uring_available()) {
        return io_uring_unsatisfiable("make_io_backend");
      }
      return make_io_uring_backend();
    case IoBackendKind::kAuto:
      break;
  }
  return util::Status::invalid_argument(
      "make_io_backend needs a resolved kind (epoll or io_uring), got "
      "'auto' -- call resolve_io_backend first");
}

}  // namespace privlocad::net
