#include "net/server.hpp"

#include <errno.h>
#include <string.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <utility>

#include "core/telemetry.hpp"
#include "util/validation.hpp"

namespace privlocad::net {

namespace {

constexpr int kPollWaitMs = 50;

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// The immediate degraded_dropped response a shed request gets: nothing
/// leaves the edge, x/y stay zero.
ServeResponseFrame shed_response(const ServeRequestFrame& request) {
  ServeResponseFrame frame;
  frame.request_id = request.request_id;
  frame.outcome =
      static_cast<std::uint8_t>(core::ServeOutcome::kDegradedDropped);
  frame.status_code =
      static_cast<std::uint8_t>(util::ErrorCode::kResourceExhausted);
  frame.released = 0;
  return frame;
}

}  // namespace

util::Status ServerConfig::validated() const {
  if (port > 65535) {
    return util::Status::invalid_argument(
        "ServerConfig.port must fit a TCP port (0..65535), got " +
        std::to_string(port));
  }
  if (workers < 1) {
    return util::Status::invalid_argument(
        "ServerConfig.workers: server needs at least one worker");
  }
  if (queue_capacity < 1) {
    return util::Status::invalid_argument(
        "ServerConfig.queue_capacity must be >= 1");
  }
  if (max_outbound_bytes < kMaxFrameBytes) {
    return util::Status::invalid_argument(
        "ServerConfig.max_outbound_bytes must hold at least one frame (" +
        std::to_string(kMaxFrameBytes) + " bytes)");
  }
  if (admission == AdmissionPolicy::kLatencyBudget &&
      latency_budget_us < 1) {
    return util::Status::invalid_argument(
        "ServerConfig.latency_budget_us must be >= 1 under the "
        "latency_budget admission policy");
  }
  return util::Status();
}

void EdgeServer::ConnState::compact_in() {
  if (in_head > 0 && in_head * 2 >= in.size()) {
    in.erase(in.begin(), in.begin() + static_cast<std::ptrdiff_t>(in_head));
    in_head = 0;
  }
}

EdgeServer::EdgeServer(core::EdgeConfig edge_config,
                       ServerConfig server_config,
                       IoBackendKind backend_kind,
                       std::unique_ptr<IoBackend> backend)
    : config_(server_config),
      edge_(std::move(edge_config)),
      backend_kind_(backend_kind),
      backend_(std::move(backend)) {}

util::Result<std::unique_ptr<EdgeServer>> EdgeServer::create(
    core::EdgeConfig edge_config, ServerConfig server_config) {
  if (util::Status s = server_config.validated(); !s.ok()) return s;

  util::Result<IoBackendKind> resolved =
      resolve_io_backend(server_config.backend);
  if (!resolved.ok()) return resolved.status();
  util::Result<std::unique_ptr<IoBackend>> backend =
      make_io_backend(resolved.value());
  if (!backend.ok()) return backend.status();

  std::unique_ptr<EdgeServer> server(
      new EdgeServer(std::move(edge_config), server_config,
                     resolved.value(), std::move(backend.value())));

  obs::MetricsRegistry& registry = server->edge_.metrics();
  server->connections_opened_ =
      &registry.counter(net_metrics::kConnectionsOpened);
  server->connections_closed_ =
      &registry.counter(net_metrics::kConnectionsClosed);
  server->requests_ = &registry.counter(net_metrics::kRequests);
  server->responses_ = &registry.counter(net_metrics::kResponses);
  server->shed_ = &registry.counter(net_metrics::kShed);
  server->parse_errors_ = &registry.counter(net_metrics::kParseErrors);
  server->backpressure_pauses_ =
      &registry.counter(net_metrics::kBackpressurePauses);
  server->degraded_dropped_ =
      &registry.counter(core::edge_metrics::kDegradedDropped);
  server->queue_delay_us_ =
      &registry.histogram(net_metrics::kQueueDelayUs);
  server->service_time_us_ =
      &registry.histogram(net_metrics::kServiceTimeUs);
  server->queue_depth_ = &registry.gauge(net_metrics::kQueueDepth);
  registry.gauge(net_metrics::kBackend)
      .set(static_cast<double>(resolved.value()));

  util::Result<UniqueFd> listen = listen_loopback(
      static_cast<std::uint16_t>(server->config_.port), server->port_);
  if (!listen.ok()) return listen.status();
  server->listen_fd_ = std::move(listen.value());
  if (util::Status s = set_nonblocking(server->listen_fd_.get()); !s.ok()) {
    return s;
  }
  server->wake_fd_ = UniqueFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!server->wake_fd_.valid()) {
    return util::Status::io_error(std::string("eventfd failed: ") +
                                  std::strerror(errno));
  }
  if (util::Status s = server->backend_->init(server->listen_fd_.get(),
                                              server->wake_fd_.get(),
                                              *server);
      !s.ok()) {
    return s;
  }
  return server;
}

EdgeServer::~EdgeServer() { stop(); }

std::size_t EdgeServer::worker_for(std::uint64_t user_id) const {
  // Same multiply ConcurrentEdge::shard_for uses: a user's requests land
  // on one worker, so their serve order matches their arrival order.
  return static_cast<std::size_t>(
      (user_id * 0x9E3779B97F4A7C15ULL) % config_.workers);
}

util::Status EdgeServer::start() {
  if (started_) {
    return util::Status::failed_precondition(
        "EdgeServer::start called twice");
  }
  stopping_.store(false, std::memory_order_relaxed);
  queues_.clear();
  for (std::size_t i = 0; i < config_.workers; ++i) {
    queues_.push_back(std::make_unique<BoundedRequestQueue>(
        config_.queue_capacity, config_.admission,
        config_.latency_budget_us));
  }
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
  started_ = true;
  return util::Status();
}

void EdgeServer::stop() {
  if (!started_) return;
  // Workers first: closing the queues lets them drain every admitted
  // request (each still gets a response), then exit.
  for (auto& queue : queues_) queue->close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Then the IO thread: it sees stopping_, drains the completed
  // responses one last time, flushes best-effort, and exits.
  stopping_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
  io_thread_.join();
  queues_.clear();
  listen_fd_.reset();
  wake_fd_.reset();
  started_ = false;
}

void EdgeServer::worker_loop(std::size_t worker_index) {
  BoundedRequestQueue& queue = *queues_[worker_index];
  PendingRequest pending;
  while (queue.pop(pending)) {
    const auto picked_up = std::chrono::steady_clock::now();
    const double delay_us = us_between(pending.admitted, picked_up);
    queue_delay_us_->record(delay_us);
    queue.observe_queue_delay_us(delay_us, pending.depth_at_admit);

    if (config_.service_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.service_delay_us));
    }
    const core::ServeResult result =
        edge_.serve(pending.request.user_id,
                    {pending.request.x, pending.request.y},
                    pending.request.time);
    service_time_us_->record(
        us_between(picked_up, std::chrono::steady_clock::now()));

    ServeResponseFrame frame;
    frame.request_id = pending.request.request_id;
    frame.outcome = static_cast<std::uint8_t>(result.outcome);
    frame.kind = static_cast<std::uint8_t>(result.reported.kind);
    frame.status_code = static_cast<std::uint8_t>(result.status.code());
    frame.released = result.released() ? 1 : 0;
    frame.retries = result.retries;
    if (result.released()) {
      frame.x = result.reported.location.x;
      frame.y = result.reported.location.y;
    }
    {
      const std::lock_guard<std::mutex> lock(completed_mutex_);
      completed_.push_back({pending.conn_id, frame});
    }
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wake_fd_.get(), &one, sizeof(one));
  }
}

void EdgeServer::queue_response(std::uint64_t conn_id,
                                const ServeResponseFrame& frame) {
  encode_scratch_.clear();
  append_response(encode_scratch_, frame);
  backend_->queue_send(conn_id, encode_scratch_.data(),
                       encode_scratch_.size());
  responses_->add();
}

void EdgeServer::close_and_forget(std::uint64_t conn_id) {
  backend_->close_connection(conn_id);
  connections_closed_->add();
  conn_states_.erase(conn_id);
}

void EdgeServer::reevaluate_backpressure(std::uint64_t conn_id) {
  const auto it = conn_states_.find(conn_id);
  if (it == conn_states_.end()) return;
  ConnState& conn = it->second;
  const std::size_t backlog = backend_->outbound_bytes(conn_id);
  if (!conn.read_paused && backlog >= config_.max_outbound_bytes) {
    conn.read_paused = true;
    backpressure_pauses_->add();
    backend_->pause_reads(conn_id);
  } else if (conn.read_paused &&
             backlog < config_.max_outbound_bytes / 2) {
    conn.read_paused = false;
    backend_->resume_reads(conn_id);
  }
}

void EdgeServer::on_accept(std::uint64_t conn_id) {
  conn_states_[conn_id];  // default ConnState
  connections_opened_->add();
}

void EdgeServer::on_closed(std::uint64_t conn_id) {
  // Backend-detected close (peer EOF/error); the backend already dropped
  // its side.
  if (conn_states_.erase(conn_id) > 0) connections_closed_->add();
}

void EdgeServer::on_writable_resume(std::uint64_t conn_id) {
  reevaluate_backpressure(conn_id);
}

void EdgeServer::on_data(std::uint64_t conn_id, const std::uint8_t* data,
                         std::size_t n) {
  const auto it = conn_states_.find(conn_id);
  if (it == conn_states_.end()) return;  // already forgotten
  ConnState& conn = it->second;
  conn.in.insert(conn.in.end(), data, data + n);

  // Frame and admit everything buffered.
  while (true) {
    Frame frame;
    std::size_t consumed = 0;
    const util::Status parsed =
        try_decode(conn.in.data() + conn.in_head,
                   conn.in.size() - conn.in_head, frame, consumed);
    if (!parsed.ok() ||
        (consumed > 0 && frame.type != FrameType::kServeRequest)) {
      parse_errors_->add();
      close_and_forget(conn_id);  // poisoned stream: no resync point
      return;
    }
    if (consumed == 0) break;  // partial frame; wait for more bytes
    conn.in_head += consumed;
    requests_->add();
    const std::size_t worker = worker_for(frame.request.user_id);
    PendingRequest pending;
    pending.conn_id = conn_id;
    pending.request = frame.request;
    pending.admitted = std::chrono::steady_clock::now();
    if (!queues_[worker]->try_push(std::move(pending))) {
      // Admission shed: immediate degraded_dropped, counted in both the
      // net layer and the box-level serve taxonomy.
      shed_->add();
      degraded_dropped_->add();
      queue_response(conn_id, shed_response(frame.request));
    }
  }
  conn.compact_in();

  backend_->flush(conn_id);
  // flush() may have discovered a dead peer and fired on_closed, which
  // erased the state; re-evaluate against the map, not the stale ref.
  reevaluate_backpressure(conn_id);
}

void EdgeServer::drain_completed() {
  {
    const std::lock_guard<std::mutex> lock(completed_mutex_);
    drain_scratch_.swap(completed_);
  }
  if (drain_scratch_.empty()) return;
  for (const CompletedResponse& done : drain_scratch_) {
    if (conn_states_.find(done.conn_id) == conn_states_.end()) {
      continue;  // peer left; drop it
    }
    queue_response(done.conn_id, done.frame);
  }
  drain_scratch_.clear();
  // Flush after the batch (not per response) so pipelined completions
  // coalesce into large sends. Ids are collected first: a flush that
  // discovers a dead peer erases from conn_states_ via on_closed.
  flush_scratch_.clear();
  for (const auto& [id, conn] : conn_states_) {
    if (backend_->outbound_bytes(id) > 0) flush_scratch_.push_back(id);
  }
  for (const std::uint64_t id : flush_scratch_) {
    if (conn_states_.find(id) == conn_states_.end()) continue;
    backend_->flush(id);
    reevaluate_backpressure(id);
  }
}

void EdgeServer::io_loop() {
  while (true) {
    const util::Status polled = backend_->poll(kPollWaitMs);
    if (!polled.ok()) return;  // the engine itself broke: give up
    drain_completed();
    if (queue_depth_ != nullptr) {
      std::size_t depth = 0;
      for (const auto& queue : queues_) depth += queue->size();
      queue_depth_->set(static_cast<double>(depth));
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Workers are already joined, so completed_ is final: one more
      // drain + best-effort flush, then close everything.
      drain_completed();
      connections_closed_->add(backend_->open_connection_count());
      backend_->shutdown_flush();
      conn_states_.clear();
      return;
    }
  }
}

}  // namespace privlocad::net
