#include "net/server.hpp"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "core/telemetry.hpp"
#include "util/validation.hpp"

namespace privlocad::net {

namespace {

/// Epoll user-data ids below this are reserved (listen socket, wake fd);
/// connection ids count up from here.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnId = 8;

constexpr int kEpollWaitMs = 50;
constexpr std::size_t kReadChunkBytes = 64 * 1024;

double us_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

void ServerConfig::validate() const {
  util::require(workers >= 1, "server needs at least one worker");
  util::require(queue_capacity >= 1, "queue capacity must be >= 1");
  util::require(max_outbound_bytes >= kMaxFrameBytes,
                "outbound budget must hold at least one frame");
}

/// Per-connection state, owned exclusively by the IO thread. in/out are
/// head-indexed so framing and flushing never memmove the whole buffer
/// per event; compaction happens when the head passes half the buffer.
struct EdgeServer::Connection {
  UniqueFd fd;
  std::vector<std::uint8_t> in;
  std::size_t in_head = 0;
  std::vector<std::uint8_t> out;
  std::size_t out_head = 0;
  bool want_write = false;   ///< EPOLLOUT currently armed
  bool read_paused = false;  ///< EPOLLIN disarmed by backpressure
  bool dead = false;         ///< close at the end of this event batch

  std::size_t out_backlog() const { return out.size() - out_head; }
  void compact_in() {
    if (in_head > 0 && in_head * 2 >= in.size()) {
      in.erase(in.begin(),
               in.begin() + static_cast<std::ptrdiff_t>(in_head));
      in_head = 0;
    }
  }
  void compact_out() {
    if (out_head > 0 && out_head * 2 >= out.size()) {
      out.erase(out.begin(),
                out.begin() + static_cast<std::ptrdiff_t>(out_head));
      out_head = 0;
    }
  }
};

EdgeServer::EdgeServer(core::EdgeConfig edge_config,
                       ServerConfig server_config)
    : config_(server_config), edge_(std::move(edge_config)) {
  config_.validate();
}

EdgeServer::~EdgeServer() { stop(); }

std::size_t EdgeServer::worker_for(std::uint64_t user_id) const {
  // Same multiply ConcurrentEdge::shard_for uses: a user's requests land
  // on one worker, so their serve order matches their arrival order.
  return static_cast<std::size_t>(
      (user_id * 0x9E3779B97F4A7C15ULL) % config_.workers);
}

util::Status EdgeServer::start() {
  util::require(!started_, "EdgeServer::start called twice");

  obs::MetricsRegistry& registry = edge_.metrics();
  connections_opened_ =
      &registry.counter(net_metrics::kConnectionsOpened);
  connections_closed_ =
      &registry.counter(net_metrics::kConnectionsClosed);
  requests_ = &registry.counter(net_metrics::kRequests);
  responses_ = &registry.counter(net_metrics::kResponses);
  shed_ = &registry.counter(net_metrics::kShed);
  parse_errors_ = &registry.counter(net_metrics::kParseErrors);
  backpressure_pauses_ =
      &registry.counter(net_metrics::kBackpressurePauses);
  degraded_dropped_ =
      &registry.counter(core::edge_metrics::kDegradedDropped);
  queue_delay_us_ = &registry.histogram(net_metrics::kQueueDelayUs);
  service_time_us_ = &registry.histogram(net_metrics::kServiceTimeUs);
  queue_depth_ = &registry.gauge(net_metrics::kQueueDepth);

  util::Result<UniqueFd> listen = listen_loopback(config_.port, port_);
  if (!listen.ok()) return listen.status();
  listen_fd_ = std::move(listen.value());
  if (util::Status s = set_nonblocking(listen_fd_.get()); !s.ok()) return s;

  epoll_fd_ = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return util::Status::io_error(std::string("epoll_create1 failed: ") +
                                  std::strerror(errno));
  }
  wake_fd_ = UniqueFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd_.valid()) {
    return util::Status::io_error(std::string("eventfd failed: ") +
                                  std::strerror(errno));
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(), &ev) !=
      0) {
    return util::Status::io_error(std::string("epoll_ctl(listen) failed: ") +
                                  std::strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) !=
      0) {
    return util::Status::io_error(std::string("epoll_ctl(wake) failed: ") +
                                  std::strerror(errno));
  }

  stopping_.store(false, std::memory_order_relaxed);
  queues_.clear();
  for (std::size_t i = 0; i < config_.workers; ++i) {
    queues_.push_back(
        std::make_unique<BoundedRequestQueue>(config_.queue_capacity));
  }
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  io_thread_ = std::thread([this] { io_loop(); });
  started_ = true;
  return util::Status();
}

void EdgeServer::stop() {
  if (!started_) return;
  // Workers first: closing the queues lets them drain every admitted
  // request (each still gets a response), then exit.
  for (auto& queue : queues_) queue->close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // Then the IO thread: it sees stopping_, drains the completed
  // responses one last time, flushes best-effort, and exits.
  stopping_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
  io_thread_.join();
  queues_.clear();
  listen_fd_.reset();
  epoll_fd_.reset();
  wake_fd_.reset();
  started_ = false;
}

void EdgeServer::worker_loop(std::size_t worker_index) {
  BoundedRequestQueue& queue = *queues_[worker_index];
  PendingRequest pending;
  while (queue.pop(pending)) {
    const auto picked_up = std::chrono::steady_clock::now();
    queue_delay_us_->record(us_between(pending.admitted, picked_up));

    if (config_.service_delay_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(config_.service_delay_us));
    }
    const core::ServeResult result =
        edge_.serve(pending.request.user_id,
                    {pending.request.x, pending.request.y},
                    pending.request.time);
    service_time_us_->record(
        us_between(picked_up, std::chrono::steady_clock::now()));

    ServeResponseFrame frame;
    frame.request_id = pending.request.request_id;
    frame.outcome = static_cast<std::uint8_t>(result.outcome);
    frame.kind = static_cast<std::uint8_t>(result.reported.kind);
    frame.status_code = static_cast<std::uint8_t>(result.status.code());
    frame.released = result.released() ? 1 : 0;
    frame.retries = result.retries;
    if (result.released()) {
      frame.x = result.reported.location.x;
      frame.y = result.reported.location.y;
    }
    {
      const std::lock_guard<std::mutex> lock(completed_mutex_);
      completed_.push_back({pending.conn_id, frame});
    }
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wake_fd_.get(), &one, sizeof(one));
  }
}

void EdgeServer::io_loop() {
  std::unordered_map<std::uint64_t, Connection> connections;
  std::uint64_t next_conn_id = kFirstConnId;
  std::vector<CompletedResponse> drained;
  std::array<epoll_event, 64> events;

  const auto update_interest = [&](std::uint64_t id, Connection& conn) {
    epoll_event ev{};
    ev.events = (conn.read_paused ? 0u : static_cast<unsigned>(EPOLLIN)) |
                (conn.want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
  };

  const auto try_flush = [&](std::uint64_t id, Connection& conn) {
    while (conn.out_backlog() > 0) {
      const ssize_t wrote =
          ::send(conn.fd.get(), conn.out.data() + conn.out_head,
                 conn.out_backlog(), MSG_NOSIGNAL);
      if (wrote > 0) {
        conn.out_head += static_cast<std::size_t>(wrote);
        continue;
      }
      if (wrote < 0 && errno == EINTR) continue;
      if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn.dead = true;  // peer gone; drop the connection
      return;
    }
    conn.compact_out();
    const bool need_epollout = conn.out_backlog() > 0;
    const bool resume_reads =
        conn.read_paused &&
        conn.out_backlog() < config_.max_outbound_bytes / 2;
    if (need_epollout != conn.want_write || resume_reads) {
      conn.want_write = need_epollout;
      if (resume_reads) conn.read_paused = false;
      update_interest(id, conn);
    }
  };

  const auto shed_response = [](const ServeRequestFrame& request) {
    ServeResponseFrame frame;
    frame.request_id = request.request_id;
    frame.outcome =
        static_cast<std::uint8_t>(core::ServeOutcome::kDegradedDropped);
    frame.status_code =
        static_cast<std::uint8_t>(util::ErrorCode::kResourceExhausted);
    frame.released = 0;
    return frame;  // x/y stay zero: nothing leaves the edge on a shed
  };

  const auto handle_readable = [&](std::uint64_t id, Connection& conn) {
    while (true) {
      const std::size_t at = conn.in.size();
      conn.in.resize(at + kReadChunkBytes);
      const ssize_t got =
          ::recv(conn.fd.get(), conn.in.data() + at, kReadChunkBytes, 0);
      if (got > 0) {
        conn.in.resize(at + static_cast<std::size_t>(got));
        if (static_cast<std::size_t>(got) < kReadChunkBytes) break;
        continue;
      }
      conn.in.resize(at);
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn.dead = true;  // EOF or hard error
      return;
    }

    // Frame and admit everything buffered.
    while (!conn.dead) {
      Frame frame;
      std::size_t consumed = 0;
      const util::Status parsed =
          try_decode(conn.in.data() + conn.in_head,
                     conn.in.size() - conn.in_head, frame, consumed);
      if (!parsed.ok()) {
        parse_errors_->add();
        conn.dead = true;  // poisoned stream: no resync point
        return;
      }
      if (consumed == 0) break;  // partial frame; wait for more bytes
      conn.in_head += consumed;
      if (frame.type != FrameType::kServeRequest) {
        parse_errors_->add();
        conn.dead = true;
        return;
      }
      requests_->add();
      const std::size_t worker = worker_for(frame.request.user_id);
      PendingRequest pending;
      pending.conn_id = id;
      pending.request = frame.request;
      pending.admitted = std::chrono::steady_clock::now();
      if (!queues_[worker]->try_push(std::move(pending))) {
        // Admission shed: immediate degraded_dropped, counted in both
        // the net layer and the box-level serve taxonomy.
        shed_->add();
        degraded_dropped_->add();
        append_response(conn.out, shed_response(frame.request));
        responses_->add();
      }
    }
    conn.compact_in();

    if (conn.dead) return;
    try_flush(id, conn);
    if (!conn.read_paused &&
        conn.out_backlog() >= config_.max_outbound_bytes) {
      conn.read_paused = true;
      backpressure_pauses_->add();
      update_interest(id, conn);
    }
  };

  const auto accept_all = [&] {
    while (true) {
      const int raw = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (raw < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient accept error: epoll will re-arm
      }
      const int one = 1;
      ::setsockopt(raw, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const std::uint64_t id = next_conn_id++;
      Connection& conn = connections[id];
      conn.fd = UniqueFd(raw);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, raw, &ev);
      connections_opened_->add();
    }
  };

  const auto drain_completed = [&] {
    {
      const std::lock_guard<std::mutex> lock(completed_mutex_);
      drained.swap(completed_);
    }
    for (const CompletedResponse& done : drained) {
      const auto it = connections.find(done.conn_id);
      if (it == connections.end()) continue;  // peer left; drop it
      append_response(it->second.out, done.frame);
      responses_->add();
    }
    // Flush after the batch (not per response) so pipelined completions
    // coalesce into large sends.
    if (!drained.empty()) {
      for (auto& [id, conn] : connections) {
        if (!conn.dead && conn.out_backlog() > 0) try_flush(id, conn);
      }
    }
    drained.clear();
  };

  const auto reap_dead = [&] {
    for (auto it = connections.begin(); it != connections.end();) {
      if (it->second.dead) {
        ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second.fd.get(),
                    nullptr);
        connections_closed_->add();
        it = connections.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (true) {
    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()),
                               kEpollWaitMs);
    if (n < 0 && errno != EINTR) break;  // epoll itself broke: give up
    for (int i = 0; i < (n > 0 ? n : 0); ++i) {
      const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t mask =
          events[static_cast<std::size_t>(i)].events;
      if (id == kListenId) {
        accept_all();
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t drainv = 0;
        [[maybe_unused]] ssize_t r =
            ::read(wake_fd_.get(), &drainv, sizeof(drainv));
        continue;
      }
      const auto it = connections.find(id);
      if (it == connections.end()) continue;  // closed earlier this batch
      Connection& conn = it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        conn.dead = true;
        continue;
      }
      if ((mask & EPOLLOUT) != 0 && !conn.dead) try_flush(id, conn);
      if ((mask & EPOLLIN) != 0 && !conn.dead) handle_readable(id, conn);
    }
    drain_completed();
    reap_dead();
    if (queue_depth_ != nullptr) {
      std::size_t depth = 0;
      for (const auto& queue : queues_) depth += queue->size();
      queue_depth_->set(static_cast<double>(depth));
    }
    if (stopping_.load(std::memory_order_acquire)) {
      // Workers are already joined, so completed_ is final: one more
      // drain + best-effort flush, then close everything.
      drain_completed();
      for (auto& [id, conn] : connections) {
        if (!conn.dead) try_flush(id, conn);
        connections_closed_->add();
      }
      connections.clear();
      return;
    }
  }
}

}  // namespace privlocad::net
