// The backend-neutral IO contract edge_serverd's protocol core is
// written against.
//
// PR 8 welded the serving loop to epoll; this layer splits it the same
// way src/simd split kernels from call sites: ONE protocol state machine
// (framing, admission, worker hashing, byte-budget backpressure,
// metrics -- all in net/server.cpp) drives an IoBackend that owns the
// readiness/submission mechanics. Two implementations ship:
//
//   EpollBackend   -- the PR 8 loop, behavior- and metrics-identical:
//                     level-triggered epoll, readiness-driven recv/send,
//                     EPOLLIN disarm for backpressure.
//   IoUringBackend -- raw-syscall io_uring (no liburing dependency):
//                     multishot accept, one buffered recv + one send
//                     submission in flight per connection, eventfd and
//                     tick wakeups through the same ring. Compiled in
//                     only when the PRIVLOCAD_IO_URING configure probe
//                     passes; selected at runtime only when the kernel
//                     actually accepts the ring.
//
// Selection mirrors PRIVLOCAD_SIMD exactly: `auto` resolves to the best
// satisfiable backend, an explicit request that this build or kernel
// cannot satisfy fails LOUDLY with a typed Status (never a silent
// downgrade -- a bench must not report io_uring numbers measured on
// epoll), and the active choice is published as a gauge.
//
// Threading contract: every IoBackend method and every IoSink callback
// runs on the ONE IO thread. Backends own fds and outbound buffers; the
// protocol core owns inbound framing buffers and all policy decisions
// (when to shed, when to pause reads, when a connection is poisoned).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/status.hpp"

namespace privlocad::net {

/// Which IO engine serves the sockets. kAuto defers to the
/// PRIVLOCAD_NET_BACKEND environment variable and then to the best
/// engine this build + kernel supports.
enum class IoBackendKind : std::uint8_t {
  kAuto = 0,
  kEpoll = 1,
  kIoUring = 2,
};

/// "auto" | "epoll" | "io_uring" -- stable names for flags, env values,
/// JSON records, and log lines.
const char* io_backend_kind_name(IoBackendKind kind);

/// Parses a backend name ("auto" | "epoll" | "io_uring"); typed
/// kParseError on anything else.
util::Result<IoBackendKind> parse_io_backend_kind(const char* name);

/// True when this binary carries the io_uring backend TU (the
/// PRIVLOCAD_IO_URING configure probe passed).
bool io_uring_compiled_in();

/// True when io_uring is compiled in AND the running kernel accepts an
/// io_uring ring with the features the backend needs (EXT_ARG timed
/// waits). Probed once per process; a sandbox that blocks the syscall
/// reads as unavailable, not as an error.
bool io_uring_available();

/// Resolves `requested` (typically ServerConfig::backend) against the
/// environment and this machine:
///   - kEpoll / kIoUring: explicit request; io_uring that this build or
///     kernel cannot satisfy is a LOUD typed error, never a downgrade.
///   - kAuto: PRIVLOCAD_NET_BACKEND decides if set (same grammar,
///     malformed or unsatisfiable values error loudly, mirroring
///     PRIVLOCAD_SIMD); otherwise io_uring when available, else epoll.
/// Never returns kAuto.
util::Result<IoBackendKind> resolve_io_backend(IoBackendKind requested);

/// Events a backend delivers into the protocol core. All callbacks fire
/// on the IO thread, from inside IoBackend::poll().
class IoSink {
 public:
  virtual ~IoSink() = default;

  /// A new connection `conn_id` was accepted (ids are backend-assigned,
  /// unique per backend lifetime, never reused).
  virtual void on_accept(std::uint64_t conn_id) = 0;

  /// `n` received bytes for `conn_id`. The pointer is valid only for the
  /// duration of the call; the sink copies what it wants to keep. The
  /// sink may call close_connection(conn_id) from inside this callback.
  virtual void on_data(std::uint64_t conn_id, const std::uint8_t* data,
                       std::size_t n) = 0;

  /// The backend flushed outbound bytes for `conn_id` on its own
  /// (writability / send completion): the sink re-evaluates its
  /// byte-budget backpressure decision via outbound_bytes().
  virtual void on_writable_resume(std::uint64_t conn_id) = 0;

  /// The peer closed or the connection failed. The backend has already
  /// discarded its state for `conn_id`; this is the sink's cue to drop
  /// its own. Never fired for sink-initiated close_connection() calls.
  virtual void on_closed(std::uint64_t conn_id) = 0;
};

/// One serving IO engine. Lifecycle: init() once, poll() from the IO
/// loop until stop, shutdown_flush() last. See the header comment for
/// the threading contract.
class IoBackend {
 public:
  virtual ~IoBackend() = default;

  virtual IoBackendKind kind() const = 0;

  /// Takes (non-owning) the listening socket and the worker-completion
  /// eventfd, and the sink all events are delivered to. The listen fd
  /// must already be bound + listening; the backend sets whatever
  /// per-connection socket options it needs (TCP_NODELAY at accept).
  virtual util::Status init(int listen_fd, int wake_fd, IoSink& sink) = 0;

  /// One wait-and-dispatch batch: submits whatever is staged, waits up
  /// to `timeout_ms` for readiness/completions (the tick), and delivers
  /// every ready event through the sink. A wake_fd write from any thread
  /// interrupts the wait; the backend drains the eventfd counter itself
  /// (poll() returning IS the wake notification). Returns non-ok only
  /// when the engine itself broke (epoll_wait / io_uring_enter hard
  /// failure) -- per-connection errors surface as on_closed instead.
  virtual util::Status poll(int timeout_ms) = 0;

  /// Appends `n` bytes to `conn_id`'s outbound buffer. No flush
  /// guarantee until flush() -- callers batch appends per connection and
  /// flush once, so pipelined responses coalesce into large sends.
  /// Unknown ids are ignored (the peer may already be gone).
  virtual void queue_send(std::uint64_t conn_id, const std::uint8_t* data,
                          std::size_t n) = 0;

  /// Pushes `conn_id`'s outbound backlog toward the socket as far as it
  /// will go without blocking (epoll: send() until EAGAIN + EPOLLOUT
  /// arm; io_uring: stage a send submission).
  virtual void flush(std::uint64_t conn_id) = 0;

  /// Outbound bytes buffered for `conn_id` (the byte-budget input).
  virtual std::size_t outbound_bytes(std::uint64_t conn_id) const = 0;

  /// Stops/resumes delivering on_data for `conn_id`. Pausing does not
  /// discard bytes already received: one in-flight buffer may still be
  /// delivered after pause_reads (the bytes were on the wire; dropping
  /// them would poison the stream).
  virtual void pause_reads(std::uint64_t conn_id) = 0;
  virtual void resume_reads(std::uint64_t conn_id) = 0;

  /// Sink-initiated immediate close (poisoned stream, protocol error).
  /// Undelivered inbound bytes and unflushed outbound bytes are
  /// discarded; on_closed is NOT fired.
  virtual void close_connection(std::uint64_t conn_id) = 0;

  /// Connections currently open (accepted, not yet closed).
  virtual std::size_t open_connection_count() const = 0;

  /// Shutdown path: best-effort non-blocking flush of every outbound
  /// buffer, then closes every connection and the backend's own
  /// resources. poll() must not be called afterwards.
  virtual void shutdown_flush() = 0;
};

/// Constructs a backend of `kind` (which must be kEpoll or kIoUring --
/// resolve first). Requesting kIoUring when io_uring_available() is
/// false is a typed error.
util::Result<std::unique_ptr<IoBackend>> make_io_backend(
    IoBackendKind kind);

}  // namespace privlocad::net
