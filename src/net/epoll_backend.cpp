#include "net/epoll_backend.hpp"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstring>

namespace privlocad::net {

namespace {

/// Epoll user-data ids below this are reserved (listen socket, wake fd);
/// connection ids count up from here.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;

constexpr std::size_t kReadChunkBytes = 64 * 1024;

}  // namespace

void EpollBackend::Conn::compact_out() {
  if (out_head > 0 && out_head * 2 >= out.size()) {
    out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(out_head));
    out_head = 0;
  }
}

util::Status EpollBackend::init(int listen_fd, int wake_fd, IoSink& sink) {
  sink_ = &sink;
  listen_fd_ = listen_fd;
  wake_fd_ = wake_fd;
  read_chunk_.resize(kReadChunkBytes);

  epoll_fd_ = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return util::Status::io_error(std::string("epoll_create1 failed: ") +
                                  std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return util::Status::io_error(std::string("epoll_ctl(listen) failed: ") +
                                  std::strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return util::Status::io_error(std::string("epoll_ctl(wake) failed: ") +
                                  std::strerror(errno));
  }
  return util::Status();
}

void EpollBackend::update_interest(std::uint64_t id, Conn& conn) {
  epoll_event ev{};
  ev.events = (conn.read_paused ? 0u : static_cast<unsigned>(EPOLLIN)) |
              (conn.want_write ? static_cast<unsigned>(EPOLLOUT) : 0u);
  ev.data.u64 = id;
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
}

bool EpollBackend::try_flush(Conn& conn) {
  const std::size_t before = conn.out_backlog();
  while (conn.out_backlog() > 0) {
    const ssize_t wrote =
        ::send(conn.fd.get(), conn.out.data() + conn.out_head,
               conn.out_backlog(), MSG_NOSIGNAL);
    if (wrote > 0) {
      conn.out_head += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // peer gone; the caller reports the close
    return false;
  }
  conn.compact_out();
  const bool need_epollout = conn.out_backlog() > 0;
  if (need_epollout != conn.want_write) {
    conn.want_write = need_epollout;
    // The caller knows the id; re-arm via the map lookup the call sites
    // already hold. update_interest needs the id, so flush() and the
    // EPOLLOUT path call it directly.
  }
  return conn.out_backlog() < before;
}

void EpollBackend::queue_send(std::uint64_t conn_id,
                              const std::uint8_t* data, std::size_t n) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;  // peer already gone
  it->second.out.insert(it->second.out.end(), data, data + n);
}

void EpollBackend::flush(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  Conn& conn = it->second;
  const bool was_want_write = conn.want_write;
  const bool flushed = try_flush(conn);
  if (conn.dead) {
    if (sink_ != nullptr) sink_->on_closed(conn_id);
    return;
  }
  if (conn.want_write != was_want_write) update_interest(conn_id, conn);
  (void)flushed;
}

std::size_t EpollBackend::outbound_bytes(std::uint64_t conn_id) const {
  const auto it = conns_.find(conn_id);
  return it == conns_.end() ? 0 : it->second.out_backlog();
}

void EpollBackend::pause_reads(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  if (!it->second.read_paused) {
    it->second.read_paused = true;
    update_interest(conn_id, it->second);
  }
}

void EpollBackend::resume_reads(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  if (it->second.read_paused) {
    it->second.read_paused = false;
    update_interest(conn_id, it->second);
  }
}

void EpollBackend::close_connection(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second.dead = true;  // reaped at the end of the current poll batch
}

std::size_t EpollBackend::open_connection_count() const {
  std::size_t open = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn.dead) ++open;
  }
  return open;
}

void EpollBackend::accept_all() {
  while (true) {
    const int raw = ::accept4(listen_fd_, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (raw < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN or transient accept error: epoll will re-arm
    }
    const int one = 1;
    ::setsockopt(raw, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = UniqueFd(raw);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, raw, &ev);
    sink_->on_accept(id);
  }
}

void EpollBackend::handle_readable(std::uint64_t id, Conn& conn) {
  while (!conn.dead) {
    const ssize_t got =
        ::recv(conn.fd.get(), read_chunk_.data(), read_chunk_.size(), 0);
    if (got > 0) {
      sink_->on_data(id, read_chunk_.data(), static_cast<std::size_t>(got));
      // The sink may have poisoned the connection from inside on_data.
      if (conn.dead) return;
      if (static_cast<std::size_t>(got) < read_chunk_.size()) break;
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // EOF or hard error
    sink_->on_closed(id);
    return;
  }
}

void EpollBackend::reap_dead() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second.dead) {
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->second.fd.get(),
                  nullptr);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

util::Status EpollBackend::poll(int timeout_ms) {
  std::array<epoll_event, 64> events;
  const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  if (n < 0 && errno != EINTR) {
    return util::Status::io_error(std::string("epoll_wait failed: ") +
                                  std::strerror(errno));
  }
  for (int i = 0; i < (n > 0 ? n : 0); ++i) {
    const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
    const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
    if (id == kListenId) {
      accept_all();
      continue;
    }
    if (id == kWakeId) {
      std::uint64_t drained = 0;
      [[maybe_unused]] ssize_t r =
          ::read(wake_fd_, &drained, sizeof(drained));
      continue;  // poll() returning is the wake; the sink drains its work
    }
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // closed earlier this batch
    Conn& conn = it->second;
    if (conn.dead) continue;
    if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
      conn.dead = true;
      sink_->on_closed(id);
      continue;
    }
    if ((mask & EPOLLOUT) != 0) {
      const bool flushed = try_flush(conn);
      if (conn.dead) {
        sink_->on_closed(id);
        continue;
      }
      update_interest(id, conn);
      if (flushed) sink_->on_writable_resume(id);
    }
    if ((mask & EPOLLIN) != 0 && !conn.dead) handle_readable(id, conn);
  }
  reap_dead();
  return util::Status();
}

void EpollBackend::shutdown_flush() {
  for (auto& [id, conn] : conns_) {
    if (!conn.dead) try_flush(conn);  // best effort; EAGAIN just stops
  }
  conns_.clear();
  epoll_fd_.reset();
}

}  // namespace privlocad::net
