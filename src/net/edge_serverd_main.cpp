// edge_serverd: ConcurrentEdge behind a loopback socket.
//
// The serving daemon the open-loop bench and the ctest smoke drive. Two
// modes:
//   edge_serverd [--port N] [--shards N] [--workers N]
//                [--queue-capacity N] [--seed N]
//                [--backend=auto|epoll|io_uring]
//                [--admission=queue_capacity|latency_budget]
//                [--latency-budget-us N]
//     Runs until SIGINT/SIGTERM, then stops cleanly and dumps the
//     metrics registry to stdout.
//   edge_serverd --selftest[=N]
//     Boots on an ephemeral port, drives N requests through a loopback
//     client, verifies the fail-private wire contract and counter
//     consistency, shuts down, exits 0/1. This is the ctest smoke.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/telemetry.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "trace/check_in.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

/// `--name=V` or `--name V`; returns `fallback` when absent.
std::uint64_t flag_or(int argc, char** argv, const char* name,
                      std::uint64_t fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::strtoull(arg.c_str() + prefix.size(), nullptr, 10);
    }
    if (arg == name && i + 1 < argc) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

/// `--name=V` or `--name V` as a string; `fallback` when absent.
std::string string_flag_or(int argc, char** argv, const char* name,
                           const char* fallback) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == name && i + 1 < argc) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* name) {
  const std::string prefix = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == name || arg.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

int selftest(privlocad::net::EdgeServer& server, std::uint64_t requests) {
  using namespace privlocad;
  util::Result<net::BlockingClient> client =
      net::BlockingClient::connect(server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "selftest: connect failed: %s\n",
                 client.status().to_string().c_str());
    return 1;
  }
  std::uint64_t released = 0;
  for (std::uint64_t i = 0; i < requests; ++i) {
    net::ServeRequestFrame request;
    request.request_id = i;
    request.user_id = 1 + (i % 8);
    request.x = 1000.0 + static_cast<double>(i % 8) * 10.0;
    request.y = 2000.0;
    request.time = trace::kStudyStart + static_cast<std::int64_t>(i);
    util::Result<net::ServeResponseFrame> response =
        client->call(request);
    if (!response.ok()) {
      std::fprintf(stderr, "selftest: request %llu failed: %s\n",
                   static_cast<unsigned long long>(i),
                   response.status().to_string().c_str());
      return 1;
    }
    if (response->request_id != i) {
      std::fprintf(stderr, "selftest: response id mismatch\n");
      return 1;
    }
    if (response->released != 0) {
      ++released;
      // Fail-private: the released location must be obfuscated, never
      // the raw coordinates we sent.
      if (response->x == request.x && response->y == request.y) {
        std::fprintf(stderr, "selftest: raw coordinate leaked\n");
        return 1;
      }
    } else if (response->x != 0.0 || response->y != 0.0) {
      std::fprintf(stderr, "selftest: non-released frame carries coords\n");
      return 1;
    }
  }
  const std::uint64_t seen =
      server.metrics().counter_value(privlocad::net::net_metrics::kRequests);
  if (seen != requests || released == 0) {
    std::fprintf(stderr,
                 "selftest: counters inconsistent (requests=%llu "
                 "released=%llu)\n",
                 static_cast<unsigned long long>(seen),
                 static_cast<unsigned long long>(released));
    return 1;
  }
  std::printf("selftest: %llu requests, %llu released, all obfuscated\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(released));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace privlocad;

  core::EdgeConfig edge_config;
  edge_config.seed = flag_or(argc, argv, "--seed", 1);
  edge_config.shards =
      static_cast<std::size_t>(flag_or(argc, argv, "--shards", 4));

  const std::string backend_name =
      string_flag_or(argc, argv, "--backend", "auto");
  util::Result<net::IoBackendKind> backend =
      net::parse_io_backend_kind(backend_name.c_str());
  if (!backend.ok()) {
    std::fprintf(stderr, "edge_serverd: %s\n",
                 backend.status().to_string().c_str());
    return 1;
  }
  const std::string admission_name =
      string_flag_or(argc, argv, "--admission", "queue_capacity");
  util::Result<net::AdmissionPolicy> admission =
      net::parse_admission_policy(admission_name.c_str());
  if (!admission.ok()) {
    std::fprintf(stderr, "edge_serverd: %s\n",
                 admission.status().to_string().c_str());
    return 1;
  }

  const net::ServerConfig server_config =
      net::ServerConfig{}
          .with_port(
              static_cast<std::uint32_t>(flag_or(argc, argv, "--port", 0)))
          .with_workers(
              static_cast<std::size_t>(flag_or(argc, argv, "--workers", 2)))
          .with_queue_capacity(static_cast<std::size_t>(
              flag_or(argc, argv, "--queue-capacity", 1024)))
          .with_backend(backend.value())
          .with_admission(admission.value())
          .with_latency_budget_us(static_cast<std::uint32_t>(
              flag_or(argc, argv, "--latency-budget-us", 20000)));

  // No exceptions to catch: every failure (bad port, bind failure, an
  // unsatisfiable backend request) comes back as a typed Status.
  util::Result<std::unique_ptr<net::EdgeServer>> created =
      net::EdgeServer::create(edge_config, server_config);
  if (!created.ok()) {
    std::fprintf(stderr, "edge_serverd: create failed: %s\n",
                 created.status().to_string().c_str());
    return 1;
  }
  net::EdgeServer& server = *created.value();
  if (util::Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "edge_serverd: start failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }

  if (has_flag(argc, argv, "--selftest")) {
    const std::uint64_t n = flag_or(argc, argv, "--selftest", 32);
    const int rc = selftest(server, n == 0 ? 32 : n);
    server.stop();
    return rc;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("edge_serverd listening on 127.0.0.1:%u (%s backend, %s "
              "admission)\n",
              static_cast<unsigned>(server.port()),
              net::io_backend_kind_name(server.backend_kind()),
              net::admission_policy_name(server_config.admission));
  std::fflush(stdout);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  std::printf("%s", server.metrics().to_string().c_str());
  return 0;
}
