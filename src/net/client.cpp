#include "net/client.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "core/edge_device.hpp"
#include "stats/quantiles.hpp"
#include "util/validation.hpp"

namespace privlocad::net {

util::Result<BlockingClient> BlockingClient::connect(std::uint16_t port) {
  util::Result<UniqueFd> fd = connect_loopback(port);
  if (!fd.ok()) return fd.status();
  return BlockingClient(std::move(fd.value()));
}

util::Status BlockingClient::send(const ServeRequestFrame& request) {
  std::vector<std::uint8_t> buffer;
  append_request(buffer, request);
  return write_all(fd_.get(), buffer.data(), buffer.size());
}

util::Result<ServeResponseFrame> BlockingClient::receive() {
  while (true) {
    Frame frame;
    std::size_t consumed = 0;
    if (util::Status s =
            try_decode(in_.data() + in_head_, in_.size() - in_head_, frame,
                       consumed);
        !s.ok()) {
      return s;
    }
    if (consumed > 0) {
      in_head_ += consumed;
      if (in_head_ * 2 >= in_.size()) {
        in_.erase(in_.begin(),
                  in_.begin() + static_cast<std::ptrdiff_t>(in_head_));
        in_head_ = 0;
      }
      if (frame.type != FrameType::kServeResponse) {
        return util::Status::parse_error(
            "client received a non-response frame");
      }
      return frame.response;
    }
    std::uint8_t chunk[4096];
    ssize_t got;
    do {
      got = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    } while (got < 0 && errno == EINTR);
    if (got == 0) {
      return util::Status::unavailable("server closed the connection");
    }
    if (got < 0) {
      return util::Status::io_error(std::string("recv() failed: ") +
                                    std::strerror(errno));
    }
    in_.insert(in_.end(), chunk, chunk + got);
  }
}

util::Result<ServeResponseFrame> BlockingClient::call(
    const ServeRequestFrame& request) {
  if (util::Status s = send(request); !s.ok()) return s;
  return receive();
}

void OpenLoopConfig::validate() const {
  util::require(connections >= 1, "need at least one connection");
  util::require(drain_timeout_s >= 0.0, "drain timeout must be >= 0");
}

namespace {

/// Per-connection nonblocking state for the open-loop runner.
struct LoopConn {
  UniqueFd fd;
  std::vector<std::uint8_t> in;
  std::size_t in_head = 0;
  std::vector<std::uint8_t> out;
  std::size_t out_head = 0;
  bool dead = false;

  std::size_t out_backlog() const { return out.size() - out_head; }
};

/// What the runner remembers about one in-flight request: when it was
/// SCHEDULED (latency baseline) and the raw coordinates it sent (leak
/// check baseline).
struct SentRecord {
  double scheduled_s = 0.0;
  std::uint64_t raw_x_bits = 0;
  std::uint64_t raw_y_bits = 0;
};

void pump_writes(LoopConn& conn) {
  while (!conn.dead && conn.out_backlog() > 0) {
    const ssize_t wrote =
        ::send(conn.fd.get(), conn.out.data() + conn.out_head,
               conn.out_backlog(), MSG_NOSIGNAL);
    if (wrote > 0) {
      conn.out_head += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;
  }
  if (conn.out_head > 0 && conn.out_head * 2 >= conn.out.size()) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() +
                       static_cast<std::ptrdiff_t>(conn.out_head));
    conn.out_head = 0;
  }
}

bool pump_reads(LoopConn& conn) {
  bool got_bytes = false;
  while (!conn.dead) {
    std::uint8_t chunk[16 * 1024];
    const ssize_t got = ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
    if (got > 0) {
      conn.in.insert(conn.in.end(), chunk, chunk + got);
      got_bytes = true;
      if (static_cast<std::size_t>(got) < sizeof(chunk)) break;
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // EOF or hard error
  }
  return got_bytes;
}

}  // namespace

util::Result<OpenLoopStats> run_open_loop(
    const OpenLoopConfig& config, const std::vector<TimedRequest>& plan) {
  config.validate();
  using Clock = std::chrono::steady_clock;

  std::vector<LoopConn> conns(config.connections);
  for (LoopConn& conn : conns) {
    util::Result<UniqueFd> fd = connect_loopback(config.port);
    if (!fd.ok()) return fd.status();
    conn.fd = std::move(fd.value());
    if (util::Status s = set_nonblocking(conn.fd.get()); !s.ok()) return s;
  }

  OpenLoopStats stats;
  stats.offered = plan.size();
  std::unordered_map<std::uint64_t, SentRecord> in_flight;
  in_flight.reserve(plan.size());
  std::vector<double> latencies_us;
  latencies_us.reserve(plan.size());

  const auto t0 = Clock::now();
  const auto elapsed_s = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  std::size_t next = 0;  // next plan entry to send
  const auto handle_frames = [&](LoopConn& conn) {
    while (true) {
      Frame frame;
      std::size_t consumed = 0;
      const util::Status parsed =
          try_decode(conn.in.data() + conn.in_head,
                     conn.in.size() - conn.in_head, frame, consumed);
      if (!parsed.ok()) {
        ++stats.wire_errors;
        conn.dead = true;
        return;
      }
      if (consumed == 0) break;
      conn.in_head += consumed;
      if (frame.type != FrameType::kServeResponse) {
        ++stats.wire_errors;
        conn.dead = true;
        return;
      }
      const ServeResponseFrame& r = frame.response;
      const auto it = in_flight.find(r.request_id);
      if (it == in_flight.end()) {
        ++stats.wire_errors;  // duplicate or unknown id
        continue;
      }
      ++stats.responses;
      latencies_us.push_back((elapsed_s() - it->second.scheduled_s) * 1e6);
      switch (static_cast<core::ServeOutcome>(r.outcome)) {
        case core::ServeOutcome::kServed:
          ++stats.served;
          break;
        case core::ServeOutcome::kServedAfterRetry:
          ++stats.served_after_retry;
          break;
        case core::ServeOutcome::kDegradedCached:
          ++stats.degraded_cached;
          break;
        case core::ServeOutcome::kDegradedDropped:
          ++stats.degraded_dropped;
          break;
        case core::ServeOutcome::kFailed:
          ++stats.failed;
          break;
      }
      // Wire-level fail-private audit: a released location must never
      // bit-equal the raw coordinates we sent; a non-released response
      // must carry zeroed coordinates.
      const std::uint64_t rx = std::bit_cast<std::uint64_t>(r.x);
      const std::uint64_t ry = std::bit_cast<std::uint64_t>(r.y);
      if (r.released != 0) {
        if (rx == it->second.raw_x_bits && ry == it->second.raw_y_bits) {
          ++stats.raw_leaks;
        }
      } else if (r.x != 0.0 || r.y != 0.0) {
        ++stats.raw_leaks;
      }
      in_flight.erase(it);
    }
    if (conn.in_head > 0 && conn.in_head * 2 >= conn.in.size()) {
      conn.in.erase(conn.in.begin(),
                    conn.in.begin() +
                        static_cast<std::ptrdiff_t>(conn.in_head));
      conn.in_head = 0;
    }
  };

  // Phase 1: the scheduled send loop. Requests go out at their plan
  // instants regardless of outstanding responses (open loop); responses
  // are drained opportunistically so the in-buffers stay small.
  while (next < plan.size()) {
    const double now_s = elapsed_s();
    bool progressed = false;
    while (next < plan.size() && plan[next].at_s <= now_s) {
      const TimedRequest& timed = plan[next];
      LoopConn& conn = conns[next % conns.size()];
      if (!conn.dead) {
        append_request(conn.out, timed.request);
        in_flight.emplace(
            timed.request.request_id,
            SentRecord{timed.at_s,
                       std::bit_cast<std::uint64_t>(timed.request.x),
                       std::bit_cast<std::uint64_t>(timed.request.y)});
        ++stats.sent;
        pump_writes(conn);
      }
      ++next;
      progressed = true;
    }
    for (LoopConn& conn : conns) {
      if (conn.dead) continue;
      pump_writes(conn);
      if (pump_reads(conn)) {
        handle_frames(conn);
        progressed = true;
      }
    }
    if (!progressed && next < plan.size()) {
      const double sleep_s =
          std::min(plan[next].at_s - elapsed_s(), 0.001);
      if (sleep_s > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_s));
      }
    }
  }

  // Phase 2: drain. Finish flushing queued sends, then wait for the
  // stragglers up to the timeout.
  const double drain_deadline = elapsed_s() + config.drain_timeout_s;
  while (!in_flight.empty() && elapsed_s() < drain_deadline) {
    bool any_alive = false;
    for (LoopConn& conn : conns) {
      if (conn.dead) continue;
      any_alive = true;
      pump_writes(conn);
      if (pump_reads(conn)) handle_frames(conn);
    }
    if (!any_alive) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  stats.missing = in_flight.size();
  stats.wall_seconds = elapsed_s();
  stats.offered_rps =
      plan.empty() ? 0.0
                   : static_cast<double>(plan.size()) / stats.wall_seconds;
  stats.achieved_rps =
      static_cast<double>(stats.responses) / stats.wall_seconds;
  if (!latencies_us.empty()) {
    double sum = 0.0;
    for (const double v : latencies_us) sum += v;
    stats.latency_mean_us = sum / static_cast<double>(latencies_us.size());
    stats.latency_p50_us = stats::quantile(latencies_us, 0.50);
    stats.latency_p95_us = stats::quantile(latencies_us, 0.95);
    stats.latency_p99_us = stats::quantile(latencies_us, 0.99);
  }
  return stats;
}

}  // namespace privlocad::net
