#include "net/admission.hpp"

#include "util/validation.hpp"

namespace privlocad::net {

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity)
    : capacity_(capacity) {
  util::require(capacity >= 1, "request queue capacity must be >= 1");
}

bool BoundedRequestQueue::try_push(PendingRequest request) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(request));
  }
  ready_.notify_one();
  return true;
}

bool BoundedRequestQueue::pop(PendingRequest& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void BoundedRequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t BoundedRequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

}  // namespace privlocad::net
