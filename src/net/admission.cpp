#include "net/admission.hpp"

#include <cstring>
#include <string>

#include "util/validation.hpp"

namespace privlocad::net {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kQueueCapacity:
      return "queue_capacity";
    case AdmissionPolicy::kLatencyBudget:
      return "latency_budget";
  }
  return "unknown";
}

util::Result<AdmissionPolicy> parse_admission_policy(const char* name) {
  if (name != nullptr && std::strcmp(name, "queue_capacity") == 0) {
    return AdmissionPolicy::kQueueCapacity;
  }
  if (name != nullptr && std::strcmp(name, "latency_budget") == 0) {
    return AdmissionPolicy::kLatencyBudget;
  }
  return util::Status::parse_error(
      std::string(
          "admission policy must be queue_capacity | latency_budget, "
          "got '") +
      (name == nullptr ? "" : name) + "'");
}

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity,
                                         AdmissionPolicy policy,
                                         std::uint32_t latency_budget_us)
    : capacity_(capacity),
      policy_(policy),
      latency_budget_us_(latency_budget_us) {
  util::require(capacity >= 1, "request queue capacity must be >= 1");
  util::require(policy != AdmissionPolicy::kLatencyBudget ||
                    latency_budget_us >= 1,
                "latency_budget admission needs a budget >= 1us");
}

bool BoundedRequestQueue::try_push(PendingRequest request) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    if (policy_ == AdmissionPolicy::kLatencyBudget) {
      const double projected =
          static_cast<double>(items_.size()) *
          ewma_item_delay_us_.load(std::memory_order_relaxed);
      if (projected > static_cast<double>(latency_budget_us_)) {
        return false;
      }
    }
    request.depth_at_admit = items_.size();
    items_.push_back(std::move(request));
  }
  ready_.notify_one();
  return true;
}

bool BoundedRequestQueue::pop(PendingRequest& out) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  out = std::move(items_.front());
  items_.pop_front();
  return true;
}

void BoundedRequestQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

void BoundedRequestQueue::observe_queue_delay_us(
    double delay_us, std::size_t depth_at_admit) {
  if (delay_us < 0.0) delay_us = 0.0;
  const double sample =
      delay_us / static_cast<double>(depth_at_admit > 0 ? depth_at_admit
                                                        : std::size_t{1});
  double current = ewma_item_delay_us_.load(std::memory_order_relaxed);
  double next = current + (sample - current) / 8.0;
  while (!ewma_item_delay_us_.compare_exchange_weak(
      current, next, std::memory_order_relaxed,
      std::memory_order_relaxed)) {
    next = current + (sample - current) / 8.0;
  }
}

double BoundedRequestQueue::projected_delay_us() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<double>(items_.size()) *
         ewma_item_delay_us_.load(std::memory_order_relaxed);
}

std::size_t BoundedRequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

}  // namespace privlocad::net
