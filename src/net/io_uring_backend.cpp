#include "net/io_uring_backend.hpp"

#ifdef PRIVLOCAD_HAVE_IO_URING

#include <errno.h>
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/socket.hpp"

namespace privlocad::net {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit,
                       unsigned min_complete, unsigned flags,
                       const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd,
                                    to_submit, min_complete, flags, arg,
                                    argsz));
}

/// user_data tag in the top byte; connection id (always < 2^56) below.
constexpr std::uint64_t kTagShift = 56;
constexpr std::uint64_t kIdMask = (std::uint64_t{1} << kTagShift) - 1;
constexpr std::uint64_t kTagAccept = 1;
constexpr std::uint64_t kTagWake = 2;
constexpr std::uint64_t kTagRecv = 3;
constexpr std::uint64_t kTagSend = 4;

constexpr std::uint64_t tagged(std::uint64_t tag, std::uint64_t id) {
  return (tag << kTagShift) | (id & kIdMask);
}

constexpr unsigned kSqEntries = 256;
constexpr unsigned kCqEntries = 4096;
constexpr std::size_t kRecvBufBytes = 64 * 1024;

}  // namespace

class IoUringBackend final : public IoBackend {
 public:
  IoUringBackend() = default;
  ~IoUringBackend() override { teardown_ring(); }

  IoBackendKind kind() const override { return IoBackendKind::kIoUring; }
  util::Status init(int listen_fd, int wake_fd, IoSink& sink) override;
  util::Status poll(int timeout_ms) override;
  void queue_send(std::uint64_t conn_id, const std::uint8_t* data,
                  std::size_t n) override;
  void flush(std::uint64_t conn_id) override;
  std::size_t outbound_bytes(std::uint64_t conn_id) const override;
  void pause_reads(std::uint64_t conn_id) override;
  void resume_reads(std::uint64_t conn_id) override;
  void close_connection(std::uint64_t conn_id) override;
  std::size_t open_connection_count() const override;
  void shutdown_flush() override;

 private:
  /// Per-connection state. `rbuf` backs the single in-flight recv; its
  /// heap storage must stay put while a recv is submitted, so it is
  /// sized once at accept and never resized. Outbound bytes double-
  /// buffer: `sending` is the stable region an in-flight send reads
  /// from, `pending` is where queue_send appends; they swap when a send
  /// chain starts, so queue_send can never reallocate memory the kernel
  /// is reading.
  struct Conn {
    UniqueFd fd;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> sending;
    std::size_t sent_head = 0;
    std::vector<std::uint8_t> pending;
    bool recv_inflight = false;
    bool send_inflight = false;
    bool read_paused = false;
    bool dead = false;

    std::size_t out_backlog() const {
      return (sending.size() - sent_head) + pending.size();
    }
  };

  io_uring_sqe* get_sqe();
  void push_sqe();
  void submit_staged();
  util::Status wait_cqes(int timeout_ms);
  unsigned cq_ready() const;
  void drain_cq();
  void handle_cqe(std::uint64_t user_data, std::int32_t res,
                  std::uint32_t flags);
  void on_accept_cqe(std::int32_t res, std::uint32_t flags);
  void on_recv_cqe(std::uint64_t id, std::int32_t res);
  void on_send_cqe(std::uint64_t id, std::int32_t res);
  void arm_accept();
  void arm_wake();
  void arm_recv(std::uint64_t id, Conn& conn);
  void arm_send(std::uint64_t id, Conn& conn);
  /// Drains the socket synchronously as far as it will go without
  /// blocking; returns false on a hard error (conn marked dead).
  bool direct_send(Conn& conn);
  void begin_teardown(std::uint64_t id, Conn& conn);
  void maybe_finalize(std::uint64_t id);
  void drain_inflight_for_shutdown();
  void teardown_ring();

  IoSink* sink_ = nullptr;
  int listen_fd_ = -1;
  int wake_fd_ = -1;

  UniqueFd ring_fd_;
  unsigned sq_entries_ = 0;
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  bool single_mmap_ = false;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  unsigned sq_tail_local_ = 0;
  unsigned to_submit_ = 0;

  bool multishot_accept_ok_ = true;
  bool accept_ever_ok_ = false;
  bool accept_armed_ = false;
  bool wake_armed_ = false;
  bool shutting_down_ = false;
  std::uint64_t wake_buf_ = 0;

  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 8;  ///< ids below 8 are reserved marks
};

util::Status IoUringBackend::init(int listen_fd, int wake_fd,
                                  IoSink& sink) {
  sink_ = &sink;
  listen_fd_ = listen_fd;
  wake_fd_ = wake_fd;

  io_uring_params params{};
  params.flags = IORING_SETUP_CQSIZE;
  params.cq_entries = kCqEntries;
  const int fd = sys_io_uring_setup(kSqEntries, &params);
  if (fd < 0) {
    return util::Status::io_error(std::string("io_uring_setup failed: ") +
                                  std::strerror(errno));
  }
  ring_fd_ = UniqueFd(fd);
  if ((params.features & IORING_FEAT_EXT_ARG) == 0) {
    return util::Status::failed_precondition(
        "io_uring lacks IORING_FEAT_EXT_ARG timed waits on this kernel");
  }
  sq_entries_ = params.sq_entries;
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;

  sq_ring_bytes_ =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  if (single_mmap_ && cq_ring_bytes_ > sq_ring_bytes_) {
    sq_ring_bytes_ = cq_ring_bytes_;
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_.get(),
                    IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    return util::Status::io_error("io_uring SQ ring mmap failed");
  }
  if (single_mmap_) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_.get(),
                      IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      return util::Status::io_error("io_uring CQ ring mmap failed");
    }
  }
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_.get(), IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    return util::Status::io_error("io_uring SQE array mmap failed");
  }

  auto* sq = static_cast<std::uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  auto* cq = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
  sq_tail_local_ = *sq_tail_;

  arm_accept();
  arm_wake();
  return util::Status();
}

io_uring_sqe* IoUringBackend::get_sqe() {
  const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
  if (sq_tail_local_ - head >= sq_entries_) {
    // SQ full: push what is staged so the kernel frees slots. The SQ is
    // 256 deep and submissions are bounded per connection, so this is a
    // backstop, not a steady state.
    submit_staged();
  }
  io_uring_sqe* sqe = &sqes_[sq_tail_local_ & *sq_mask_];
  std::memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

void IoUringBackend::push_sqe() {
  sq_array_[sq_tail_local_ & *sq_mask_] = sq_tail_local_ & *sq_mask_;
  ++sq_tail_local_;
  __atomic_store_n(sq_tail_, sq_tail_local_, __ATOMIC_RELEASE);
  ++to_submit_;
}

void IoUringBackend::submit_staged() {
  while (to_submit_ > 0) {
    const int rc =
        sys_io_uring_enter(ring_fd_.get(), to_submit_, 0, 0, nullptr, 0);
    if (rc >= 0) {
      to_submit_ -= static_cast<unsigned>(rc);
      if (rc == 0) break;  // nothing consumed; avoid a spin
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EBUSY) {
      // CQ is saturated; drain and retry once the consumer caught up.
      drain_cq();
      continue;
    }
    break;  // hard submit error; poll() surfaces engine failures
  }
}

unsigned IoUringBackend::cq_ready() const {
  return __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE) - *cq_head_;
}

util::Status IoUringBackend::wait_cqes(int timeout_ms) {
  __kernel_timespec ts{};
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000LL;
  io_uring_getevents_arg arg{};
  arg.ts = reinterpret_cast<std::uint64_t>(&ts);
  const int rc = sys_io_uring_enter(
      ring_fd_.get(), to_submit_, 1,
      IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg, sizeof(arg));
  if (rc >= 0) {
    to_submit_ -= static_cast<unsigned>(rc);
    return util::Status();
  }
  if (errno == EINTR || errno == ETIME || errno == EBUSY) {
    return util::Status();  // tick expiry / signal: poll() just returns
  }
  return util::Status::io_error(std::string("io_uring_enter failed: ") +
                                std::strerror(errno));
}

void IoUringBackend::drain_cq() {
  unsigned head = *cq_head_;
  unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  while (head != tail) {
    while (head != tail) {
      const io_uring_cqe& cqe = cqes_[head & *cq_mask_];
      const std::uint64_t user_data = cqe.user_data;
      const std::int32_t res = cqe.res;
      const std::uint32_t flags = cqe.flags;
      ++head;
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      handle_cqe(user_data, res, flags);
    }
    tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  }
}

void IoUringBackend::handle_cqe(std::uint64_t user_data, std::int32_t res,
                                std::uint32_t flags) {
  const std::uint64_t tag = user_data >> kTagShift;
  const std::uint64_t id = user_data & kIdMask;
  switch (tag) {
    case kTagAccept:
      on_accept_cqe(res, flags);
      return;
    case kTagWake:
      // The 8-byte read consumed the eventfd counter; that IS the drain.
      wake_armed_ = false;
      if (!shutting_down_) arm_wake();
      return;
    case kTagRecv:
      on_recv_cqe(id, res);
      return;
    case kTagSend:
      on_send_cqe(id, res);
      return;
    default:
      return;  // stale tag from a prior generation; nothing to do
  }
}

void IoUringBackend::arm_accept() {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_ACCEPT;
  sqe->fd = listen_fd_;
  sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
  if (multishot_accept_ok_) sqe->ioprio = IORING_ACCEPT_MULTISHOT;
  sqe->user_data = tagged(kTagAccept, 0);
  push_sqe();
  accept_armed_ = true;
}

void IoUringBackend::arm_wake() {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_READ;
  sqe->fd = wake_fd_;
  sqe->addr = reinterpret_cast<std::uint64_t>(&wake_buf_);
  sqe->len = sizeof(wake_buf_);
  sqe->user_data = tagged(kTagWake, 1);
  push_sqe();
  wake_armed_ = true;
}

void IoUringBackend::arm_recv(std::uint64_t id, Conn& conn) {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = conn.fd.get();
  sqe->addr = reinterpret_cast<std::uint64_t>(conn.rbuf.data());
  sqe->len = static_cast<std::uint32_t>(conn.rbuf.size());
  sqe->user_data = tagged(kTagRecv, id);
  push_sqe();
  conn.recv_inflight = true;
}

void IoUringBackend::arm_send(std::uint64_t id, Conn& conn) {
  io_uring_sqe* sqe = get_sqe();
  sqe->opcode = IORING_OP_SEND;
  sqe->fd = conn.fd.get();
  sqe->addr =
      reinterpret_cast<std::uint64_t>(conn.sending.data() + conn.sent_head);
  sqe->len =
      static_cast<std::uint32_t>(conn.sending.size() - conn.sent_head);
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = tagged(kTagSend, id);
  push_sqe();
  conn.send_inflight = true;
}

void IoUringBackend::on_accept_cqe(std::int32_t res,
                                   std::uint32_t flags) {
  accept_armed_ = (flags & IORING_CQE_F_MORE) != 0;
  if (shutting_down_) {
    if (res >= 0) ::close(res);  // late arrival; the server is going away
    return;
  }
  if (res >= 0) {
    accept_ever_ok_ = true;
    const int one = 1;
    ::setsockopt(res, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    Conn& conn = conns_[id];
    conn.fd = UniqueFd(res);
    conn.rbuf.resize(kRecvBufBytes);
    arm_recv(id, conn);
    if (!shutting_down_) sink_->on_accept(id);
  } else if (res == -EINVAL && !accept_ever_ok_ && multishot_accept_ok_) {
    // Pre-5.19 kernel without multishot accept: degrade to per-CQE
    // re-arm. Selection already guaranteed the ring itself works.
    multishot_accept_ok_ = false;
  }
  if (!accept_armed_ && !shutting_down_) arm_accept();
}

void IoUringBackend::on_recv_cqe(std::uint64_t id, std::int32_t res) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  conn.recv_inflight = false;
  if (conn.dead || shutting_down_) {
    maybe_finalize(id);
    return;
  }
  if (res > 0) {
    sink_->on_data(id, conn.rbuf.data(), static_cast<std::size_t>(res));
    // The sink may have poisoned the connection from inside on_data;
    // re-look it up before touching state (close_connection may even
    // have erased it).
    const auto again = conns_.find(id);
    if (again == conns_.end()) return;
    Conn& now = again->second;
    if (now.dead) {
      maybe_finalize(id);
      return;
    }
    if (!now.read_paused) arm_recv(id, now);
    return;
  }
  // EOF (0) or error (<0): the peer is gone.
  conn.dead = true;
  sink_->on_closed(id);
  begin_teardown(id, conn);
}

void IoUringBackend::on_send_cqe(std::uint64_t id, std::int32_t res) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  conn.send_inflight = false;
  if (conn.dead || shutting_down_) {
    maybe_finalize(id);
    return;
  }
  if (res <= 0) {
    conn.dead = true;
    sink_->on_closed(id);
    begin_teardown(id, conn);
    return;
  }
  conn.sent_head += static_cast<std::size_t>(res);
  if (conn.sent_head >= conn.sending.size()) {
    conn.sending.clear();
    conn.sent_head = 0;
    if (!conn.pending.empty()) {
      conn.sending.swap(conn.pending);
    }
  }
  if (conn.sent_head < conn.sending.size()) arm_send(id, conn);
  sink_->on_writable_resume(id);
}

void IoUringBackend::queue_send(std::uint64_t conn_id,
                                const std::uint8_t* data, std::size_t n) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;  // peer already gone
  it->second.pending.insert(it->second.pending.end(), data, data + n);
}

bool IoUringBackend::direct_send(Conn& conn) {
  while (conn.sent_head < conn.sending.size()) {
    const ssize_t wrote = ::send(
        conn.fd.get(), conn.sending.data() + conn.sent_head,
        conn.sending.size() - conn.sent_head, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (wrote > 0) {
      conn.sent_head += static_cast<std::size_t>(wrote);
      continue;
    }
    if (wrote < 0 && errno == EINTR) continue;
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    conn.dead = true;  // peer gone; the caller reports the close
    return false;
  }
  if (conn.sent_head >= conn.sending.size()) {
    conn.sending.clear();
    conn.sent_head = 0;
  }
  return true;
}

void IoUringBackend::flush(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  Conn& conn = it->second;
  if (conn.send_inflight) return;  // the completion chain continues it
  if (conn.sending.empty()) {
    if (conn.pending.empty()) return;
    conn.sending.swap(conn.pending);
    conn.sent_head = 0;
  }
  // Uncongested fast path: one direct non-blocking send usually drains
  // the whole backlog without touching the ring.
  if (!direct_send(conn)) {
    sink_->on_closed(conn_id);
    begin_teardown(conn_id, conn);
    return;
  }
  if (conn.sending.empty() && !conn.pending.empty()) {
    conn.sending.swap(conn.pending);
    if (!direct_send(conn)) {
      sink_->on_closed(conn_id);
      begin_teardown(conn_id, conn);
      return;
    }
  }
  if (!conn.sending.empty()) arm_send(conn_id, conn);
}

std::size_t IoUringBackend::outbound_bytes(std::uint64_t conn_id) const {
  const auto it = conns_.find(conn_id);
  return it == conns_.end() ? 0 : it->second.out_backlog();
}

void IoUringBackend::pause_reads(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  // The in-flight recv (if any) still delivers once -- those bytes were
  // on the wire; the contract allows one post-pause delivery.
  it->second.read_paused = true;
}

void IoUringBackend::resume_reads(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  Conn& conn = it->second;
  if (!conn.read_paused) return;
  conn.read_paused = false;
  if (!conn.recv_inflight) arm_recv(conn_id, conn);
}

void IoUringBackend::close_connection(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) return;
  it->second.dead = true;
  begin_teardown(conn_id, it->second);
}

void IoUringBackend::begin_teardown(std::uint64_t id, Conn& conn) {
  // shutdown(2) forces any in-flight recv/send to complete promptly;
  // the fd and state drop only once the last completion lands, so the
  // kernel never writes into freed buffers.
  ::shutdown(conn.fd.get(), SHUT_RDWR);
  maybe_finalize(id);
}

void IoUringBackend::maybe_finalize(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const Conn& conn = it->second;
  if (conn.dead && !conn.recv_inflight && !conn.send_inflight) {
    conns_.erase(it);  // UniqueFd closes the socket
  }
}

std::size_t IoUringBackend::open_connection_count() const {
  std::size_t open = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn.dead) ++open;
  }
  return open;
}

util::Status IoUringBackend::poll(int timeout_ms) {
  if (cq_ready() == 0) {
    util::Status wait = wait_cqes(timeout_ms);
    if (!wait.ok()) return wait;
  } else {
    submit_staged();
  }
  drain_cq();
  // Push re-arms and sink-queued sends staged during dispatch so they
  // make progress before the next wait.
  submit_staged();
  return util::Status();
}

void IoUringBackend::drain_inflight_for_shutdown() {
  // Bounded: shutdown(2) on every socket forces recv/send completions,
  // so the in-flight count reaches zero within a few waits.
  for (int round = 0; round < 64; ++round) {
    bool inflight = false;
    for (const auto& [id, conn] : conns_) {
      if (conn.recv_inflight || conn.send_inflight) {
        inflight = true;
        break;
      }
    }
    if (!inflight) return;
    submit_staged();
    __kernel_timespec ts{};
    ts.tv_nsec = 20 * 1000000LL;  // 20ms per wait round
    io_uring_getevents_arg arg{};
    arg.ts = reinterpret_cast<std::uint64_t>(&ts);
    (void)sys_io_uring_enter(
        ring_fd_.get(), 0, 1,
        IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg, sizeof(arg));
    drain_cq();
  }
}

void IoUringBackend::shutdown_flush() {
  shutting_down_ = true;
  for (auto& [id, conn] : conns_) {
    if (conn.dead || conn.send_inflight) continue;
    if (conn.sending.empty()) {
      conn.sending.swap(conn.pending);
      conn.sent_head = 0;
    }
    (void)direct_send(conn);  // best effort; EAGAIN just stops
    conn.dead = true;
    ::shutdown(conn.fd.get(), SHUT_RDWR);
  }
  for (auto& [id, conn] : conns_) {
    if (!conn.dead) {
      conn.dead = true;
      ::shutdown(conn.fd.get(), SHUT_RDWR);
    }
  }
  drain_inflight_for_shutdown();
  conns_.clear();
  teardown_ring();
}

void IoUringBackend::teardown_ring() {
  if (sqes_ != nullptr) {
    ::munmap(sqes_, sqes_bytes_);
    sqes_ = nullptr;
  }
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  cq_ring_ = nullptr;
  if (sq_ring_ != nullptr) {
    ::munmap(sq_ring_, sq_ring_bytes_);
    sq_ring_ = nullptr;
  }
  ring_fd_.reset();
}

bool io_uring_compiled_in() { return true; }

bool io_uring_available() {
  static const bool available = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(2, &params);
    if (fd < 0) return false;  // sandboxed/disabled kernels read as absent
    const bool ok = (params.features & IORING_FEAT_EXT_ARG) != 0 &&
                    (params.features & IORING_FEAT_NODROP) != 0;
    ::close(fd);
    return ok;
  }();
  return available;
}

util::Result<std::unique_ptr<IoBackend>> make_io_uring_backend() {
  if (!io_uring_available()) {
    return util::Status::failed_precondition(
        "io_uring backend compiled in but the running kernel rejected "
        "the ring (io_uring_setup unavailable or missing EXT_ARG)");
  }
  return std::unique_ptr<IoBackend>(new IoUringBackend());
}

}  // namespace privlocad::net

#else  // !PRIVLOCAD_HAVE_IO_URING

namespace privlocad::net {

bool io_uring_compiled_in() { return false; }

bool io_uring_available() { return false; }

util::Result<std::unique_ptr<IoBackend>> make_io_uring_backend() {
  return util::Status::failed_precondition(
      "this binary was built without the io_uring backend "
      "(PRIVLOCAD_IO_URING=OFF or the configure probe failed); only "
      "epoll is available");
}

}  // namespace privlocad::net

#endif  // PRIVLOCAD_HAVE_IO_URING
