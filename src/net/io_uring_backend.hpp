// io_uring serving backend: completion-based IO through one raw-syscall
// ring (no liburing dependency -- the container bakes in only the
// kernel headers).
//
// Submission shape, per the IoBackend contract:
//   - multishot accept on the listen socket (one standing submission
//     produces a CQE per connection; re-armed if the kernel ends the
//     multishot, degraded to single-shot re-arm on pre-5.19 kernels);
//   - one buffered recv in flight per connection, into a per-connection
//     owned buffer, re-armed on completion unless the sink holds reads
//     paused;
//   - at most one send in flight per connection covering the current
//     backlog head; completions advance the head and chain the next
//     send, then report on_writable_resume so the sink can re-evaluate
//     backpressure. An uncongested flush() short-circuits the ring with
//     one direct non-blocking send();
//   - the worker-completion eventfd is a standing 8-byte read;
//   - the tick is the EXT_ARG timeout on io_uring_enter (no timer SQEs).
//
// Close protocol: a dying connection is shutdown(2) first, which forces
// any in-flight recv/send to complete; the fd closes and the state
// drops only when the in-flight count reaches zero, so the kernel never
// writes into freed buffers.
//
// This TU compiles to the real backend only under PRIVLOCAD_HAVE_IO_URING
// (the configure probe); otherwise to a loud stub whose availability
// check reports false and whose factory returns a typed error.
#pragma once

#include <memory>

#include "net/io_backend.hpp"

namespace privlocad::net {

/// Real backend when compiled in and the kernel cooperates; typed
/// kFailedPrecondition otherwise. Use make_io_backend / resolve first --
/// this is the implementation hook, exposed for the conformance tests.
util::Result<std::unique_ptr<IoBackend>> make_io_uring_backend();

}  // namespace privlocad::net
