#include "fault/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metrics.hpp"
#include "rng/engine.hpp"
#include "util/strings.hpp"

namespace privlocad::fault {
namespace {

constexpr std::array<const char*, kSiteCount> kSiteNames = {
    "table_store", "profile_store", "exchange", "serve"};

/// Deterministic uniform in [0, 1) for arrival `n` at `site`: two
/// SplitMix64 rounds over the mixed (seed, site, n) word give full
/// avalanche, so per-site streams are independent and order-free.
double schedule_uniform(std::uint64_t seed, std::size_t site,
                        std::uint64_t n) {
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * (site + 1);
  state ^= n * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL;
  rng::splitmix64(state);
  const std::uint64_t bits = rng::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

util::Status parse_site_entry(FaultPlan& plan, const std::string& entry) {
  const auto colon = entry.find(':');
  if (colon == std::string::npos) {
    return util::Status::parse_error("fault spec entry '" + entry +
                                     "' is not seed=N or site:k=v[,k=v]");
  }
  const std::string name(util::trim(entry.substr(0, colon)));
  const std::optional<Site> site = site_from_name(name);
  if (!site) {
    return util::Status::parse_error("unknown fault site '" + name + "'");
  }
  SiteSpec& spec = plan.site(*site);
  for (const std::string& kv_raw :
       util::split(entry.substr(colon + 1), ',')) {
    const std::string kv(util::trim(kv_raw));
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      return util::Status::parse_error("fault spec option '" + kv +
                                       "' is not key=value");
    }
    const std::string key(util::trim(kv.substr(0, eq)));
    const std::string value(util::trim(kv.substr(eq + 1)));
    try {
      if (key == "p" || key == "probability") {
        spec.probability = util::parse_double(value);
        if (!(spec.probability >= 0.0 && spec.probability <= 1.0)) {
          return util::Status::parse_error(
              "fault probability must be in [0, 1], got " + value);
        }
      } else if (key == "latency_us") {
        spec.latency_us = util::parse_double(value);
        if (spec.latency_us < 0.0) {
          return util::Status::parse_error(
              "fault latency_us must be >= 0, got " + value);
        }
      } else if (key == "code") {
        if (value == "unavailable") {
          spec.code = util::ErrorCode::kUnavailable;
        } else if (value == "timeout") {
          spec.code = util::ErrorCode::kTimeout;
        } else if (value == "resource_exhausted") {
          spec.code = util::ErrorCode::kResourceExhausted;
        } else {
          return util::Status::parse_error(
              "fault code must be unavailable | timeout | "
              "resource_exhausted, got '" +
              value + "'");
        }
      } else {
        return util::Status::parse_error("unknown fault spec key '" + key +
                                         "'");
      }
    } catch (const util::InvalidArgument& error) {
      return util::Status::parse_error("fault spec option '" + kv +
                                       "': " + error.what());
    }
  }
  return util::Status();
}

}  // namespace

const char* site_name(Site site) {
  return kSiteNames[static_cast<std::size_t>(site)];
}

std::optional<Site> site_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  return std::nullopt;
}

bool FaultPlan::any() const {
  for (const SiteSpec& spec : sites) {
    if (spec.probability > 0.0) return true;
  }
  return false;
}

util::Result<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& entry_raw : util::split(spec, ';')) {
    const std::string entry(util::trim(entry_raw));
    if (entry.empty()) continue;
    if (entry.rfind("seed=", 0) == 0) {
      try {
        plan.seed = static_cast<std::uint64_t>(
            util::parse_int(entry.substr(5)));
      } catch (const util::InvalidArgument& error) {
        return util::Status::parse_error("fault spec seed: " +
                                         std::string(error.what()));
      }
      continue;
    }
    if (const util::Status status = parse_site_entry(plan, entry);
        !status.ok()) {
      return status;
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("PRIVLOCAD_FAULTS");
  if (spec == nullptr || *spec == '\0') return FaultPlan{};
  util::Result<FaultPlan> plan = FaultPlan::parse(spec);
  if (!plan.ok()) {
    throw util::StatusError(util::Status::parse_error(
        "PRIVLOCAD_FAULTS: " + plan.status().message()));
  }
  return *std::move(plan);
}

std::string FaultPlan::summary() const {
  if (!any()) return "faults: disabled";
  std::string out = "faults: seed=" + std::to_string(seed);
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (sites[i].probability <= 0.0) continue;
    out += ", " + std::string(kSiteNames[i]) + " p=" +
           util::format_double(sites[i].probability, 2) + " (" +
           util::error_code_name(sites[i].code) + ")";
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : enabled_(plan.any()), plan_(plan) {}

util::Status FaultInjector::check(Site site) noexcept {
  if (!enabled_) return util::Status();
  const auto index = static_cast<std::size_t>(site);
  SiteState& state = state_[index];
  state.checks.fetch_add(1, std::memory_order_relaxed);
  const SiteSpec& spec = plan_.sites[index];
  if (spec.probability <= 0.0) return util::Status();
  const std::uint64_t n =
      state.arrivals.fetch_add(1, std::memory_order_relaxed);
  if (schedule_uniform(plan_.seed, index, n) >= spec.probability) {
    return util::Status();
  }
  state.injected.fetch_add(1, std::memory_order_relaxed);
  if (spec.latency_us > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(spec.latency_us));
  }
  return util::Status(spec.code, std::string("injected fault at ") +
                                     site_name(site) + " (arrival " +
                                     std::to_string(n) + ")");
}

std::uint64_t FaultInjector::checks(Site site) const noexcept {
  return state_[static_cast<std::size_t>(site)].checks.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(Site site) const noexcept {
  return state_[static_cast<std::size_t>(site)].injected.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const noexcept {
  std::uint64_t total = 0;
  for (const SiteState& state : state_) {
    total += state.injected.load(std::memory_order_relaxed);
  }
  return total;
}

void FaultInjector::publish(obs::MetricsRegistry& registry) const {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const std::string prefix = std::string("fault.") + kSiteNames[i];
    registry.gauge(prefix + ".checks")
        .set(static_cast<double>(checks(static_cast<Site>(i))));
    registry.gauge(prefix + ".injected")
        .set(static_cast<double>(injected(static_cast<Site>(i))));
  }
  registry.gauge("fault.injected_total")
      .set(static_cast<double>(injected_total()));
}

FaultInjector& FaultInjector::global() {
  static FaultInjector instance(FaultPlan::from_env());
  return instance;
}

}  // namespace privlocad::fault
