// Deterministic fault injection for the serving surface.
//
// The paper's privacy argument (Thm. 2, Alg. 4) only holds if the edge
// stands between the user's raw top locations and the ad network on EVERY
// request -- including the ones where a store is unreachable or the
// exchange times out. This module makes those failure seams testable: a
// FaultPlan assigns each injection site (table store, profile store,
// exchange, edge serving) a seeded probability/latency/error schedule, and
// a FaultInjector replays that schedule deterministically -- the i-th check
// at a site fires or not as a pure function of (plan seed, site, i), so a
// fixed seed reproduces the exact fault mix and therefore the exact serving
// outcomes, across runs and independently of the other sites.
//
// Cost model: injection is OFF by default. A disabled injector's check()
// is an inline branch on one bool -- no atomics, no RNG -- so the serving
// hot path pays nothing when faults are not requested. Enable globally via
// the PRIVLOCAD_FAULTS environment variable (see FaultPlan::parse for the
// grammar) or per component by handing a FaultInjector* through the
// config/API parameter that every wired site exposes.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/status.hpp"

namespace privlocad::obs {
class MetricsRegistry;
}

namespace privlocad::fault {

/// Every operation boundary faults can be injected into.
enum class Site : std::size_t {
  kTableStore = 0,  ///< obfuscation-table persistence (load/save)
  kProfileStore,    ///< profile persistence (load/save)
  kExchange,        ///< adnet exchange / ad-network round trip
  kServe,           ///< edge obfuscation-input acquisition in serve()
};
inline constexpr std::size_t kSiteCount = 4;

/// Stable lowercase name ("table_store", ...) used by the spec grammar,
/// metric names, and error messages.
const char* site_name(Site site);

/// Inverse of site_name; nullopt for an unknown name.
std::optional<Site> site_from_name(const std::string& name);

/// One site's schedule parameters.
struct SiteSpec {
  /// Probability that one check() at this site fails, in [0, 1].
  double probability = 0.0;

  /// Stall applied to a firing check() before it reports the error,
  /// modelling a slow failure (timeout-like) rather than a fast one.
  double latency_us = 0.0;

  /// The error a firing check() reports. Must be a transient code --
  /// injected faults model backend hiccups, not corrupt input.
  util::ErrorCode code = util::ErrorCode::kUnavailable;
};

/// A complete seeded fault schedule over all sites.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::array<SiteSpec, kSiteCount> sites{};

  SiteSpec& site(Site s) { return sites[static_cast<std::size_t>(s)]; }
  const SiteSpec& site(Site s) const {
    return sites[static_cast<std::size_t>(s)];
  }

  /// True when any site has a non-zero probability.
  bool any() const;

  /// Parses a spec string. Grammar (';'-separated entries):
  ///   seed=<uint>
  ///   <site>:p=<prob>[,latency_us=<us>][,code=<name>]
  /// where <site> is table_store | profile_store | exchange | serve and
  /// <name> is unavailable | timeout | resource_exhausted. Example:
  ///   "seed=42;serve:p=0.3;exchange:p=0.25,latency_us=50,code=timeout"
  /// Returns kParseError with the offending entry on a malformed spec.
  static util::Result<FaultPlan> parse(const std::string& spec);

  /// The plan in $PRIVLOCAD_FAULTS; a disabled (all-zero) plan when the
  /// variable is unset or empty. Throws StatusError on a malformed spec:
  /// a typo must fail the run loudly, not silently disable the fault mix
  /// an experiment claims to have survived.
  static FaultPlan from_env();

  /// One-line human-readable summary ("faults: serve p=0.30, ...").
  std::string summary() const;
};

/// Thread-safe deterministic injector over one FaultPlan.
///
/// Each site keeps an atomic arrival counter; the decision for arrival i
/// hashes (seed, site, i) through SplitMix64, so the schedule is a pure
/// function of the plan and the per-site arrival order. Single-threaded
/// drivers therefore see bit-identical fault sequences across runs;
/// concurrent drivers see an identical multiset of decisions.
class FaultInjector {
 public:
  /// A disabled injector: check() always passes, costs one branch.
  FaultInjector() = default;

  explicit FaultInjector(FaultPlan plan);

  bool enabled() const noexcept { return enabled_; }

  /// Draws the site's next scheduled decision. Returns ok() when no fault
  /// fires; otherwise stalls for the site's latency and returns its error.
  util::Status check(Site site) noexcept;

  /// Decisions drawn / faults fired at `site` since construction.
  std::uint64_t checks(Site site) const noexcept;
  std::uint64_t injected(Site site) const noexcept;
  std::uint64_t injected_total() const noexcept;

  const FaultPlan& plan() const { return plan_; }

  /// Publishes the per-site tallies as gauges (`fault.<site>.injected`,
  /// `fault.<site>.checks`) plus `fault.injected_total`. Gauges, not
  /// counters: publishing is an idempotent snapshot, safe to repeat.
  void publish(obs::MetricsRegistry& registry) const;

  /// Process-wide injector, configured from PRIVLOCAD_FAULTS at first
  /// use. Components default to this one when no injector is passed.
  static FaultInjector& global();

 private:
  struct alignas(64) SiteState {
    std::atomic<std::uint64_t> arrivals{0};
    std::atomic<std::uint64_t> checks{0};
    std::atomic<std::uint64_t> injected{0};
  };

  bool enabled_ = false;
  FaultPlan plan_{};
  std::array<SiteState, kSiteCount> state_{};
};

}  // namespace privlocad::fault
