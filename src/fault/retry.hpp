// Capped exponential backoff with jitter, over the Status taxonomy.
//
// One policy shape for every fallible backend call (store load/save,
// exchange round trip, obfuscation-input acquisition): attempt, and on a
// TRANSIENT status (util::is_transient -- unavailable/timeout/resource
// exhausted) wait delay_i = min(max, initial * multiplier^i) scaled by a
// seeded jitter factor, then retry, up to max_attempts total attempts.
// Non-transient statuses (parse errors, invalid arguments) return
// immediately: retrying corrupt input burns the deadline and cannot
// succeed. Jitter draws from the caller's rng::Engine, so a fixed seed
// reproduces the exact backoff (and therefore downstream random-stream)
// sequence -- the same determinism contract the rest of the repo keeps.
#pragma once

#include <chrono>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <utility>

#include "rng/engine.hpp"
#include "util/status.hpp"

namespace privlocad::fault {

/// Backoff parameters; defaults suit in-process stores (tens of
/// microseconds) rather than network RPCs -- tune deadline-style waits up.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retrying.
  std::size_t max_attempts = 3;

  double initial_backoff_us = 50.0;
  double backoff_multiplier = 2.0;
  double max_backoff_us = 5000.0;

  /// Each delay is scaled by a uniform factor in [1 - jitter, 1 + jitter]
  /// to decorrelate retry storms; must lie in [0, 1].
  double jitter = 0.5;

  /// Throws util::InvalidArgument on out-of-domain parameters.
  void validate() const;
};

/// The jittered delay before retry number `retry` (0-based), in
/// microseconds: min(max, initial * multiplier^retry) scaled by the
/// jitter factor. Computed in closed form, so it is O(1) and saturates at
/// max_backoff_us for ANY retry count -- a SIZE_MAX retry index neither
/// overflows nor spins. Consumes one engine draw iff jitter > 0.
double backoff_delay_us(const RetryPolicy& policy, std::size_t retry,
                        rng::Engine& engine);

namespace detail {
inline bool outcome_ok(const util::Status& status) { return status.ok(); }
inline util::Status outcome_status(const util::Status& status) {
  return status;
}
template <typename T>
bool outcome_ok(const util::Result<T>& result) {
  return result.ok();
}
template <typename T>
util::Status outcome_status(const util::Result<T>& result) {
  return result.status();
}
}  // namespace detail

/// Runs `op` (returning util::Status or util::Result<T>) under `policy`.
/// Retries only transient failures; returns the final outcome. When
/// `retries_out` is non-null it receives the number of retries performed
/// (0 = first attempt settled it).
template <typename Fn>
auto retry_with_backoff(const RetryPolicy& policy, rng::Engine& engine,
                        Fn&& op, std::size_t* retries_out = nullptr)
    -> std::invoke_result_t<Fn> {
  auto outcome = op();
  std::size_t retries = 0;
  while (!detail::outcome_ok(outcome) &&
         detail::outcome_status(outcome).transient() &&
         retries + 1 < policy.max_attempts) {
    const double delay_us = backoff_delay_us(policy, retries, engine);
    if (delay_us > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(delay_us));
    }
    ++retries;
    outcome = op();
  }
  if (retries_out != nullptr) *retries_out = retries;
  return outcome;
}

}  // namespace privlocad::fault
