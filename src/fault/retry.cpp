#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::fault {

void RetryPolicy::validate() const {
  util::require(max_attempts >= 1, "retry max_attempts must be >= 1");
  util::require_non_negative(initial_backoff_us, "retry initial_backoff_us");
  util::require_non_negative(max_backoff_us, "retry max_backoff_us");
  util::require(std::isfinite(backoff_multiplier) &&
                    backoff_multiplier >= 1.0,
                "retry backoff_multiplier must be >= 1");
  util::require(std::isfinite(jitter) && jitter >= 0.0 && jitter <= 1.0,
                "retry jitter must lie in [0, 1]");
}

double backoff_delay_us(const RetryPolicy& policy, std::size_t retry,
                        rng::Engine& engine) {
  // Closed-form min(max, initial * multiplier^retry). The obvious
  // multiply-until-capped loop is O(retry) and, worse, never reaches the
  // cap when the delay cannot grow (initial == 0, multiplier == 1, or a
  // multiplier so close to 1 the product creeps): with "retry forever"
  // policies passing retry counts in the billions that loop spins the
  // serving thread instead of sleeping. std::pow saturates to +inf rather
  // than overflowing, and the min() folds the saturation back to the cap,
  // so the delay is exact for small retry counts (integer powers of the
  // multiplier are computed exactly) and safely capped for any count.
  double delay = policy.initial_backoff_us;
  if (retry > 0 && delay > 0.0 && policy.backoff_multiplier > 1.0) {
    // Guarded so 0 * inf (a NaN) cannot be formed; growth >= 1 here.
    const double growth =
        std::pow(policy.backoff_multiplier, static_cast<double>(retry));
    delay = std::min(delay * growth, policy.max_backoff_us);
  }
  delay = std::min(delay, policy.max_backoff_us);
  if (policy.jitter > 0.0) {
    delay *= engine.uniform_in(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return delay;
}

}  // namespace privlocad::fault
