#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::fault {

void RetryPolicy::validate() const {
  util::require(max_attempts >= 1, "retry max_attempts must be >= 1");
  util::require_non_negative(initial_backoff_us, "retry initial_backoff_us");
  util::require_non_negative(max_backoff_us, "retry max_backoff_us");
  util::require(std::isfinite(backoff_multiplier) &&
                    backoff_multiplier >= 1.0,
                "retry backoff_multiplier must be >= 1");
  util::require(std::isfinite(jitter) && jitter >= 0.0 && jitter <= 1.0,
                "retry jitter must lie in [0, 1]");
}

double backoff_delay_us(const RetryPolicy& policy, std::size_t retry,
                        rng::Engine& engine) {
  double delay = policy.initial_backoff_us;
  for (std::size_t i = 0; i < retry && delay < policy.max_backoff_us; ++i) {
    delay *= policy.backoff_multiplier;
  }
  delay = std::min(delay, policy.max_backoff_us);
  if (policy.jitter > 0.0) {
    delay *= engine.uniform_in(1.0 - policy.jitter, 1.0 + policy.jitter);
  }
  return delay;
}

}  // namespace privlocad::fault
