#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace privlocad::simd {
namespace {

void publish_level(DispatchLevel level) {
  obs::MetricsRegistry::global()
      .gauge("simd.dispatch_avx2")
      .set(level == DispatchLevel::kAvx2 ? 1.0 : 0.0);
}

/// Parses PRIVLOCAD_SIMD and resolves "auto" against what this binary and
/// CPU can actually run. Malformed or unsatisfiable requests throw: an
/// experiment must never silently run a different kernel set than its
/// environment claims.
DispatchLevel level_from_env() {
  const char* env = std::getenv("PRIVLOCAD_SIMD");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "auto") == 0) {
    return avx2_available() ? DispatchLevel::kAvx2 : DispatchLevel::kScalar;
  }
  if (std::strcmp(env, "scalar") == 0) return DispatchLevel::kScalar;
  if (std::strcmp(env, "avx2") == 0) {
    if (!avx2_compiled_in()) {
      throw util::StatusError(util::Status::parse_error(
          "PRIVLOCAD_SIMD: avx2 requested but this binary was built "
          "without the AVX2 kernel TU (PRIVLOCAD_NATIVE_ARCH=OFF)"));
    }
    if (!cpu_supports_avx2()) {
      throw util::StatusError(util::Status::parse_error(
          "PRIVLOCAD_SIMD: avx2 requested but the CPU does not report "
          "AVX2 support"));
    }
    return DispatchLevel::kAvx2;
  }
  throw util::StatusError(util::Status::parse_error(
      std::string("PRIVLOCAD_SIMD must be auto | avx2 | scalar, got '") +
      env + "'"));
}

std::atomic<DispatchLevel>& level_slot() {
  static std::atomic<DispatchLevel> slot{[] {
    const DispatchLevel level = level_from_env();
    publish_level(level);
    return level;
  }()};
  return slot;
}

}  // namespace

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  // The builtin folds in the cpuid leaf-7 check and the xgetbv ymm-state
  // check (OS support), which a raw cpuid probe is easy to get wrong.
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool avx2_compiled_in() {
#ifdef PRIVLOCAD_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

bool avx2_available() { return avx2_compiled_in() && cpu_supports_avx2(); }

DispatchLevel active_dispatch_level() {
  return level_slot().load(std::memory_order_relaxed);
}

void set_dispatch_level(DispatchLevel level) {
  if (level == DispatchLevel::kAvx2 && !avx2_available()) {
    throw util::InvalidArgument(
        avx2_compiled_in()
            ? "set_dispatch_level(kAvx2): CPU does not support AVX2"
            : "set_dispatch_level(kAvx2): AVX2 kernels not compiled in "
              "(PRIVLOCAD_NATIVE_ARCH=OFF)");
  }
  level_slot().store(level, std::memory_order_relaxed);
  publish_level(level);
}

const char* dispatch_level_name(DispatchLevel level) {
  return level == DispatchLevel::kAvx2 ? "avx2" : "scalar";
}

std::string cpu_features_string() {
  std::string out;
#if defined(__x86_64__) || defined(__i386__)
  const auto append = [&out](bool supported, const char* name) {
    if (!supported) return;
    if (!out.empty()) out += ',';
    out += name;
  };
  // __builtin_cpu_supports takes only string literals, hence the unroll.
  append(__builtin_cpu_supports("sse2") != 0, "sse2");
  append(__builtin_cpu_supports("sse4.2") != 0, "sse4.2");
  append(__builtin_cpu_supports("avx") != 0, "avx");
  append(__builtin_cpu_supports("avx2") != 0, "avx2");
  append(__builtin_cpu_supports("fma") != 0, "fma");
  append(__builtin_cpu_supports("avx512f") != 0, "avx512f");
#endif
  if (out.empty()) out = "none";
  return out;
}

void publish_dispatch_gauge(obs::MetricsRegistry& registry) {
  registry.gauge("simd.dispatch_avx2")
      .set(active_dispatch_level() == DispatchLevel::kAvx2 ? 1.0 : 0.0);
}

}  // namespace privlocad::simd
