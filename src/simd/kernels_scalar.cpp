// Scalar kernel implementations + the dispatch-level entry points.
//
// This TU compiles with -ffp-contract=off (see src/simd/CMakeLists.txt):
// the scalar loops below are the reference semantics the AVX2 lanes must
// reproduce bit-for-bit, so the compiler must not fuse any mul+add into
// an FMA here while the vector TU keeps them separate (or vice versa).
#include "simd/kernels.hpp"

#include "simd/dispatch.hpp"

namespace privlocad::simd {

std::size_t scan_slots_within_scalar(const double* xs, const double* ys,
                                     const std::uint8_t* alive,
                                     std::uint32_t begin, std::uint32_t end,
                                     double qx, double qy, double r2,
                                     std::uint32_t* hit_slots,
                                     double* hit_d2) {
  std::size_t hits = 0;
  for (std::uint32_t s = begin; s < end; ++s) {
    if (!alive[s]) continue;
    const double dx = xs[s] - qx;
    const double dy = ys[s] - qy;
    const double d2 = dx * dx + dy * dy;
    if (d2 <= r2) {
      hit_slots[hits] = s;
      hit_d2[hits] = d2;
      ++hits;
    }
  }
  return hits;
}

double posterior_log_densities_scalar(const double* xs, const double* ys,
                                      std::size_t n, double mx, double my,
                                      double denom, double* out) {
  double max_log = -1e300;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    const double d2 = dx * dx + dy * dy;
    out[i] = -d2 / denom;
    if (out[i] > max_log) max_log = out[i];
  }
  return max_log;
}

void apply_noise_pairs_scalar(const double* samples, std::size_t n_pairs,
                              double sigma, double cx, double cy,
                              double* out_xy) {
  const std::size_t n_flat = 2 * n_pairs;
  for (std::size_t j = 0; j < n_flat; ++j) {
    out_xy[j] = ((j & 1) != 0 ? cy : cx) + sigma * samples[j];
  }
}

// ------------------------------------------- dispatch-level entry points

std::size_t scan_slots_within(const double* xs, const double* ys,
                              const std::uint8_t* alive, std::uint32_t begin,
                              std::uint32_t end, double qx, double qy,
                              double r2, std::uint32_t* hit_slots,
                              double* hit_d2) {
  if (active_dispatch_level() == DispatchLevel::kAvx2) {
    return scan_slots_within_avx2(xs, ys, alive, begin, end, qx, qy, r2,
                                  hit_slots, hit_d2);
  }
  return scan_slots_within_scalar(xs, ys, alive, begin, end, qx, qy, r2,
                                  hit_slots, hit_d2);
}

double posterior_log_densities(const double* xs, const double* ys,
                               std::size_t n, double mx, double my,
                               double denom, double* out) {
  if (active_dispatch_level() == DispatchLevel::kAvx2) {
    return posterior_log_densities_avx2(xs, ys, n, mx, my, denom, out);
  }
  return posterior_log_densities_scalar(xs, ys, n, mx, my, denom, out);
}

void apply_noise_pairs(const double* samples, std::size_t n_pairs,
                       double sigma, double cx, double cy, double* out_xy) {
  if (active_dispatch_level() == DispatchLevel::kAvx2) {
    apply_noise_pairs_avx2(samples, n_pairs, sigma, cx, cy, out_xy);
    return;
  }
  apply_noise_pairs_scalar(samples, n_pairs, sigma, cx, cy, out_xy);
}

}  // namespace privlocad::simd
