// Structure-of-arrays views over 2-D points.
//
// The SIMD kernels consume coordinates as two contiguous double arrays
// (xs[] / ys[]) so a 4-wide lane is two vector loads, not a gather over
// AoS geo::Point objects. PointSpan is the non-owning view the kernels
// take; SoaPoints is the owning scratch that converts an AoS
// vector<Point> into that layout while reusing its capacity across
// calls (the same pattern DeobfuscationWorkspace uses for the attack's
// scratch). These spans are the native view type the ROADMAP's columnar
// data plane will expose directly, at which point the conversion step
// disappears for stores that are already columnar.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::simd {

/// Non-owning SoA view: n points whose coordinates live at xs[i], ys[i].
/// Plain pointers + size (not std::span) so the kernel ABI stays C-like
/// across the scalar and -mavx2 translation units.
struct PointSpan {
  const double* xs = nullptr;
  const double* ys = nullptr;
  std::size_t size = 0;
};

/// Owning SoA scratch with capacity reuse. assign() is the AoS -> SoA
/// conversion edge; keep one instance alive (thread_local or in a
/// workspace) so steady-state conversions allocate nothing.
class SoaPoints {
 public:
  void clear() {
    xs_.clear();
    ys_.clear();
  }

  void assign(const std::vector<geo::Point>& points) {
    xs_.resize(points.size());
    ys_.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      xs_[i] = points[i].x;
      ys_[i] = points[i].y;
    }
  }

  void push_back(geo::Point p) {
    xs_.push_back(p.x);
    ys_.push_back(p.y);
  }

  geo::Point at(std::size_t i) const { return {xs_[i], ys_[i]}; }

  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  const double* xs() const { return xs_.data(); }
  const double* ys() const { return ys_.data(); }

  PointSpan span() const { return {xs_.data(), ys_.data(), xs_.size()}; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

}  // namespace privlocad::simd
