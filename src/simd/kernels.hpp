// The SIMD hot kernels: distance scans, posterior scoring, noise pairing.
//
// These are the inner loops the paper's pipeline actually spends time in
// (see ISSUE 6 / ROADMAP "SIMD hot-kernel pass"):
//
//   - scan_slots_within: the GridIndex 3x3-neighborhood candidate walk
//     (paper Alg. 1 stage 1 and the connectivity clustering it shares);
//   - posterior_log_densities: Eq. 17-18 output-selection scoring;
//   - apply_noise_pairs: the n-fold Gaussian release's scale-and-offset
//     pass over batched ziggurat variates (lppm/gaussian,
//     core/obfuscation_table via rng::fill_gaussian_noise_2d).
//
// Each kernel has a scalar and an AVX2 implementation; the unsuffixed
// entry point dispatches on simd::active_dispatch_level(). Both variants
// are always declared -- when the AVX2 TU is compiled out
// (PRIVLOCAD_NATIVE_ARCH=OFF) the _avx2 symbols forward to scalar and
// the dispatcher never selects them.
//
// BIT-AGREEMENT CONTRACT (tested per kernel in tests/property_test.cpp):
//   - scan_slots_within: identical hit slots, identical order (ascending
//     slot), identical d2 bits. d2 = (x-qx)*(x-qx) + (y-qy)*(y-qy),
//     evaluated sub/mul/mul/add with no FMA contraction in either
//     variant (kernel TUs build with -ffp-contract=off and the AVX2 TU
//     without -mfma).
//   - posterior_log_densities: identical out[] bits; the max reduction
//     is order-independent over finite doubles (values are -(d2)/denom
//     with denom > 0), so the 4-lane tree max equals the scalar running
//     max. The exp/sum normalization stays with the caller, in scalar
//     order.
//   - apply_noise_pairs: identical output bits; each element is the
//     independent sub/mul/add chain center + sigma * z.
#pragma once

#include <cstddef>
#include <cstdint>

namespace privlocad::simd {

/// Scans CSR slots [begin, end) of a slot-ordered SoA point array and
/// appends every live point with squared distance to (qx, qy) <= r2 to
/// hit_slots/hit_d2, in ascending slot order. alive is indexed by slot
/// (0 = tombstoned). The hit buffers must hold at least end - begin
/// entries. Returns the hit count.
std::size_t scan_slots_within(const double* xs, const double* ys,
                              const std::uint8_t* alive, std::uint32_t begin,
                              std::uint32_t end, double qx, double qy,
                              double r2, std::uint32_t* hit_slots,
                              double* hit_d2);
std::size_t scan_slots_within_scalar(const double* xs, const double* ys,
                                     const std::uint8_t* alive,
                                     std::uint32_t begin, std::uint32_t end,
                                     double qx, double qy, double r2,
                                     std::uint32_t* hit_slots, double* hit_d2);
std::size_t scan_slots_within_avx2(const double* xs, const double* ys,
                                   const std::uint8_t* alive,
                                   std::uint32_t begin, std::uint32_t end,
                                   double qx, double qy, double r2,
                                   std::uint32_t* hit_slots, double* hit_d2);

/// Writes out[i] = -((xs[i]-mx)^2 + (ys[i]-my)^2) / denom for i in
/// [0, n) and returns max(-1e300, max_i out[i]) (the -1e300 floor keeps
/// the legacy scalar seed value observable when every density
/// underflows to -inf). denom must be > 0.
double posterior_log_densities(const double* xs, const double* ys,
                               std::size_t n, double mx, double my,
                               double denom, double* out);
double posterior_log_densities_scalar(const double* xs, const double* ys,
                                      std::size_t n, double mx, double my,
                                      double denom, double* out);
double posterior_log_densities_avx2(const double* xs, const double* ys,
                                    std::size_t n, double mx, double my,
                                    double denom, double* out);

/// The 2-D noise pairing pass: for j in [0, 2 * n_pairs),
///   out_xy[j] = (j even ? cx : cy) + sigma * samples[j].
/// out_xy is the interleaved x0,y0,x1,y1,... layout of a geo::Point
/// array (two doubles, no padding -- static_asserted at the call site).
void apply_noise_pairs(const double* samples, std::size_t n_pairs,
                       double sigma, double cx, double cy, double* out_xy);
void apply_noise_pairs_scalar(const double* samples, std::size_t n_pairs,
                              double sigma, double cx, double cy,
                              double* out_xy);
void apply_noise_pairs_avx2(const double* samples, std::size_t n_pairs,
                            double sigma, double cx, double cy,
                            double* out_xy);

}  // namespace privlocad::simd
