// AVX2 kernel implementations (4-wide double lanes).
//
// This is the ONLY translation unit built with -mavx2, and it is built
// WITHOUT -mfma and with -ffp-contract=off: every lane must execute the
// same sub/mul/mul/add chain as the scalar reference in
// kernels_scalar.cpp so the two dispatch levels agree bit-for-bit (the
// property tests enforce this). Intrinsics stay inside this file; the
// shared headers carry no vector types, so the rest of the build remains
// portable baseline x86-64 (or any other arch, where this TU degrades to
// the scalar forwarders below).
//
// When PRIVLOCAD_NATIVE_ARCH=OFF the PRIVLOCAD_HAVE_AVX2 macro is absent
// and the _avx2 symbols forward to the scalar kernels; the dispatcher
// never selects kAvx2 in that configuration (avx2_compiled_in() is
// false), so the forwarders exist only to keep the link closed.
#include "simd/kernels.hpp"

#ifdef PRIVLOCAD_HAVE_AVX2

#include <immintrin.h>

namespace privlocad::simd {

std::size_t scan_slots_within_avx2(const double* xs, const double* ys,
                                   const std::uint8_t* alive,
                                   std::uint32_t begin, std::uint32_t end,
                                   double qx, double qy, double r2,
                                   std::uint32_t* hit_slots,
                                   double* hit_d2) {
  std::size_t hits = 0;
  const __m256d vqx = _mm256_set1_pd(qx);
  const __m256d vqy = _mm256_set1_pd(qy);
  const __m256d vr2 = _mm256_set1_pd(r2);
  std::uint32_t s = begin;
  for (; s + 4 <= end; s += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + s), vqx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + s), vqy);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    // Four alive bytes -> 4x64 lane mask, ANDed into the radius compare.
    std::uint32_t alive4;
    __builtin_memcpy(&alive4, alive + s, sizeof(alive4));
    const __m256i alive64 = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(alive4)));
    const __m256d keep = _mm256_and_pd(
        _mm256_cmp_pd(d2, vr2, _CMP_LE_OQ),
        _mm256_castsi256_pd(
            _mm256_cmpgt_epi64(alive64, _mm256_setzero_si256())));
    int mask = _mm256_movemask_pd(keep);
    if (mask == 0) continue;
    alignas(32) double d2_lanes[4];
    _mm256_store_pd(d2_lanes, d2);
    // Compact set lanes in ascending order: same visit order as scalar.
    do {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      mask &= mask - 1;
      hit_slots[hits] = s + static_cast<std::uint32_t>(lane);
      hit_d2[hits] = d2_lanes[lane];
      ++hits;
    } while (mask != 0);
  }
  // Tail (< 4 slots): the scalar reference loop, bit-identical by
  // construction.
  for (; s < end; ++s) {
    if (!alive[s]) continue;
    const double dx = xs[s] - qx;
    const double dy = ys[s] - qy;
    const double d2 = dx * dx + dy * dy;
    if (d2 <= r2) {
      hit_slots[hits] = s;
      hit_d2[hits] = d2;
      ++hits;
    }
  }
  return hits;
}

double posterior_log_densities_avx2(const double* xs, const double* ys,
                                    std::size_t n, double mx, double my,
                                    double denom, double* out) {
  const __m256d vmx = _mm256_set1_pd(mx);
  const __m256d vmy = _mm256_set1_pd(my);
  const __m256d vden = _mm256_set1_pd(denom);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d vmax = _mm256_set1_pd(-1e300);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vmx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vmy);
    const __m256d d2 =
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    // -(d2) / denom: sign flip is exact, division is correctly rounded,
    // so each lane matches the scalar expression bit-for-bit.
    const __m256d logd =
        _mm256_div_pd(_mm256_xor_pd(d2, sign_mask), vden);
    _mm256_storeu_pd(out + i, logd);
    vmax = _mm256_max_pd(vmax, logd);
  }
  // Horizontal max of the 4 lanes; max over finite doubles is
  // order-independent, so this equals the scalar running max.
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  double max_log = lanes[0];
  if (lanes[1] > max_log) max_log = lanes[1];
  if (lanes[2] > max_log) max_log = lanes[2];
  if (lanes[3] > max_log) max_log = lanes[3];
  for (; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    const double d2 = dx * dx + dy * dy;
    out[i] = -d2 / denom;
    if (out[i] > max_log) max_log = out[i];
  }
  return max_log;
}

void apply_noise_pairs_avx2(const double* samples, std::size_t n_pairs,
                            double sigma, double cx, double cy,
                            double* out_xy) {
  const std::size_t n_flat = 2 * n_pairs;
  const __m256d vsigma = _mm256_set1_pd(sigma);
  // Lane pattern over the interleaved x,y layout: [cx, cy, cx, cy]
  // (_mm256_set_pd lists lanes high-to-low).
  const __m256d vcenter = _mm256_set_pd(cy, cx, cy, cx);
  std::size_t j = 0;
  for (; j + 4 <= n_flat; j += 4) {
    const __m256d z = _mm256_loadu_pd(samples + j);
    _mm256_storeu_pd(out_xy + j,
                     _mm256_add_pd(vcenter, _mm256_mul_pd(vsigma, z)));
  }
  for (; j < n_flat; ++j) {
    out_xy[j] = ((j & 1) != 0 ? cy : cx) + sigma * samples[j];
  }
}

}  // namespace privlocad::simd

#else  // !PRIVLOCAD_HAVE_AVX2: scalar forwarders keep the link closed.

namespace privlocad::simd {

std::size_t scan_slots_within_avx2(const double* xs, const double* ys,
                                   const std::uint8_t* alive,
                                   std::uint32_t begin, std::uint32_t end,
                                   double qx, double qy, double r2,
                                   std::uint32_t* hit_slots,
                                   double* hit_d2) {
  return scan_slots_within_scalar(xs, ys, alive, begin, end, qx, qy, r2,
                                  hit_slots, hit_d2);
}

double posterior_log_densities_avx2(const double* xs, const double* ys,
                                    std::size_t n, double mx, double my,
                                    double denom, double* out) {
  return posterior_log_densities_scalar(xs, ys, n, mx, my, denom, out);
}

void apply_noise_pairs_avx2(const double* samples, std::size_t n_pairs,
                            double sigma, double cx, double cy,
                            double* out_xy) {
  apply_noise_pairs_scalar(samples, n_pairs, sigma, cx, cy, out_xy);
}

}  // namespace privlocad::simd

#endif  // PRIVLOCAD_HAVE_AVX2
