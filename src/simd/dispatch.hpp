// Runtime CPU-feature dispatch for the SIMD kernel layer.
//
// The hot kernels in simd/kernels.hpp exist in two implementations: a
// portable scalar one and an AVX2 one compiled into its own translation
// unit with -mavx2 (gated by the PRIVLOCAD_NATIVE_ARCH CMake option).
// Which one runs is a process-wide dispatch level, decided once at
// startup:
//
//   - PRIVLOCAD_SIMD=auto (or unset): AVX2 when both compiled in and
//     supported by the CPU, scalar otherwise.
//   - PRIVLOCAD_SIMD=avx2: force AVX2; fails LOUDLY (StatusError) when
//     the binary or the CPU cannot honor it, rather than silently
//     running a different kernel than the experiment claims.
//   - PRIVLOCAD_SIMD=scalar: force the scalar fallbacks.
//   - anything else: loud parse failure (same contract as
//     PRIVLOCAD_SAMPLER / PRIVLOCAD_FAULTS).
//
// DETERMINISM CONTRACT. Scalar and AVX2 kernels agree BIT-FOR-BIT: every
// lane performs the same sub/mul/add/div sequence as the scalar loop (no
// FMA contraction -- the kernel TUs compile with -ffp-contract=off and
// without -mfma), order-sensitive reductions stay scalar, and the only
// vector reduction (a max over finite values) is order-independent.
// tests/property_test.cpp asserts the agreement over randomized inputs,
// so switching dispatch levels never changes attack inference or
// obfuscation streams -- only throughput. The chosen level is published
// as the `simd.dispatch_avx2` gauge and recorded in every BENCH_*.json.
#pragma once

#include <string>

namespace privlocad::obs {
class MetricsRegistry;
}

namespace privlocad::simd {

/// Kernel implementation the process dispatches to.
enum class DispatchLevel {
  kScalar = 0,  ///< portable scalar loops (always available)
  kAvx2 = 1,    ///< 4-wide AVX2 lanes (needs -mavx2 TU + CPU support)
};

/// True when the running CPU reports AVX2 (cpuid, OS-saved ymm state).
bool cpu_supports_avx2();

/// True when the AVX2 kernel TU was compiled in (PRIVLOCAD_NATIVE_ARCH).
bool avx2_compiled_in();

/// True when kAvx2 is selectable: compiled in AND supported by the CPU.
bool avx2_available();

/// The process-wide dispatch level. Initialized once from PRIVLOCAD_SIMD
/// (see file comment); throws util::StatusError on a malformed value or
/// an unsatisfiable "avx2" request.
DispatchLevel active_dispatch_level();

/// Overrides the process-wide level (tests and A/B benches). Throws
/// util::InvalidArgument when kAvx2 is requested but unavailable.
/// Thread-safe, but not intended to be flipped mid-query.
void set_dispatch_level(DispatchLevel level);

/// "scalar" | "avx2".
const char* dispatch_level_name(DispatchLevel level);

/// Comma-separated runtime CPU feature list ("sse4.2,avx,avx2,fma,...")
/// for perf-record provenance: BENCH_*.json numbers are only comparable
/// across machines when the records say what the machines were.
std::string cpu_features_string();

/// Publishes the active level as the `simd.dispatch_avx2` gauge (1 when
/// AVX2, 0 when scalar). active_dispatch_level() publishes to the global
/// registry on first use and on every set_dispatch_level().
void publish_dispatch_gauge(obs::MetricsRegistry& registry);

}  // namespace privlocad::simd
