// A metro-area cluster of edge devices (paper Section V-A: "edge devices
// provide services to nearby mobile users whose locations are closely
// distributed").
//
// The cluster partitions the study area into square cells, one edge device
// per cell; an LBA request is served by the device owning the user's
// current cell. Because a moving user touches several devices, each device
// only sees a local profile slice; the cluster periodically merges the
// slices (core/profile_merge.hpp) into a global profile and pushes the
// resulting top-location set back so every device answers from the same
// permanent obfuscation state.
//
// This models the deployment topology the paper's scalability evaluation
// (Tables II/III) assumes, and lets the benches measure per-device load.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/edge_device.hpp"

namespace privlocad::core {

struct EdgeClusterConfig {
  EdgeConfig edge;            ///< per-device configuration
  double cell_size_m = 20000; ///< side of one device's service cell

  /// Fluent copy setting the per-device base seed (edge.seed).
  EdgeClusterConfig with_seed(std::uint64_t s) const {
    EdgeClusterConfig copy = *this;
    copy.edge.seed = s;
    return copy;
  }
};

class EdgeCluster {
 public:
  /// Per-device seeds derive from config.edge.seed and the cell key.
  explicit EdgeCluster(EdgeClusterConfig config);

  /// Typed serving through the device owning the location's cell. Never
  /// throws (see EdgeDevice::serve).
  ServeResult serve(std::uint64_t user_id, geo::Point true_location,
                    trace::Timestamp time);

  /// Legacy throwing wrapper; throws util::StatusError on a dropped or
  /// failed request (never happens with fault injection disabled).
  ReportedLocation report_location(std::uint64_t user_id,
                                   geo::Point true_location,
                                   trace::Timestamp time);

  /// Ad filtering is stateless w.r.t. the device; any device can do it.
  std::vector<adnet::Ad> filter_ads(const std::vector<adnet::Ad>& ads,
                                    geo::Point true_location) const;

  /// Number of devices that have served at least one request.
  std::size_t active_devices() const { return devices_.size(); }

  /// Requests served by the device at cell (cx, cy); 0 if none.
  std::size_t requests_served(std::int32_t cx, std::int32_t cy) const;

  /// One active cell and its request count.
  struct CellLoad {
    std::int32_t cx = 0;
    std::int32_t cy = 0;
    std::size_t requests = 0;
  };

  /// Every cell that served at least one request, sorted by (cx, cy) --
  /// the complete load map, however far the population wandered (load
  /// stats must not silently miss devices outside a fixed scan window).
  std::vector<CellLoad> cell_loads() const;

  /// The device owning `location`'s cell, created on first use.
  EdgeDevice& device_for(geo::Point location);

 private:
  using CellKey = std::uint64_t;
  CellKey key_for(geo::Point location) const;

  EdgeClusterConfig config_;
  std::uint64_t seed_;
  std::unordered_map<CellKey, std::unique_ptr<EdgeDevice>> devices_;
  std::unordered_map<CellKey, std::size_t> served_;
};

}  // namespace privlocad::core
