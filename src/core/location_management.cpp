#include "core/location_management.hpp"

#include "util/validation.hpp"

namespace privlocad::core {

LocationManager::LocationManager(LocationManagementConfig config)
    : config_(config) {
  util::require(config.window_seconds > 0, "window_seconds must be > 0");
  util::require_positive(config.profiling_threshold_m,
                         "profiling threshold");
  util::require(config.eta_fraction > 0.0 && config.eta_fraction <= 1.0,
                "eta_fraction must be in (0, 1]");
}

bool LocationManager::record(geo::Point position, trace::Timestamp time) {
  bool rebuilt = false;
  if (!window_start_.has_value()) {
    window_start_ = time;
  } else if (time - *window_start_ >= config_.window_seconds &&
             window_points_.size() >= config_.min_window_check_ins) {
    rebuild_now();
    window_start_ = time;
    rebuilt = true;
  }
  window_points_.push_back(position);
  ++total_recorded_;
  return rebuilt;
}

void LocationManager::restore(attack::LocationProfile profile,
                              std::vector<attack::ProfileEntry> top) {
  if (profile_.has_value()) {
    throw util::PreconditionViolation(
        "cannot restore a profile over live management state");
  }
  profile_ = std::move(profile);
  top_locations_ = std::move(top);
}

void LocationManager::rebuild_now() {
  // The window restarts at the next recorded check-in; without this reset a
  // bulk import followed by live traffic would immediately re-trigger a
  // rebuild from a nearly-empty window and wipe the top-location set.
  window_start_.reset();
  if (window_points_.empty()) return;
  profile_ =
      attack::build_profile(window_points_, config_.profiling_threshold_m);

  std::vector<attack::ProfileEntry> top =
      eta_frequent_set_fraction(*profile_, config_.eta_fraction);
  // Filter sparse one-off entries the eta prefix may have dragged in.
  std::erase_if(top, [&](const attack::ProfileEntry& e) {
    return e.frequency < config_.min_top_frequency;
  });
  top_locations_ = std::move(top);
  window_points_.clear();
}

}  // namespace privlocad::core
