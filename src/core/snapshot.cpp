#include "core/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace privlocad::core::snapshot {

namespace {

/// The write path buffers this much before hitting the kernel: column
/// writes arrive as many small u64/extent pieces, and a syscall per piece
/// would dominate a million-user save.
constexpr std::size_t kWriterBufferBytes = 256 * 1024;

std::string errno_suffix() {
  return std::string(" (") + std::strerror(errno) + ")";
}

/// ::open with the EINTR retry loop POSIX allows it to need.
int open_retry(const char* path, int flags, mode_t mode = 0) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

/// Full-buffer ::write: retries EINTR and continues after short writes.
bool write_all(int fd, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd, bytes, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

/// Full-buffer ::pwrite at `offset`, with the same retry discipline.
bool pwrite_all(int fd, const void* data, std::size_t n, off_t offset) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t written = ::pwrite(fd, bytes, n, offset);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes += written;
    n -= static_cast<std::size_t>(written);
    offset += written;
  }
  return true;
}

bool fsync_retry(int fd) {
  int rc = -1;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc == 0;
}

/// One ::close, checked. On Linux the descriptor is released even when
/// close reports EINTR, so retrying would race a concurrent open; EINTR
/// therefore counts as released, any other error is reported.
bool close_checked(int fd) {
  const int rc = ::close(fd);
  return rc == 0 || errno == EINTR;
}

/// fsyncs the directory holding `path` so a just-renamed entry survives a
/// crash. Returns false only when the directory opened but would not sync.
bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return true;  // e.g. search-only dir permissions: best effort
  const bool synced = fsync_retry(fd);
  close_checked(fd);  // read-only directory fd: nothing to lose on error
  return synced;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t state) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= bytes[i];
    state *= 0x100000001B3ULL;
  }
  return state;
}

// ------------------------------------------------------------------ Writer

Writer::Writer(const std::string& path, std::uint32_t shard_count)
    : path_(path), tmp_path_(path + ".tmp"), shard_count_(shard_count) {
  fd_ = open_retry(tmp_path_.c_str(),
                   O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    status_ = util::Status::io_error("cannot open snapshot temp file: " +
                                     tmp_path_ + errno_suffix());
    return;
  }
  buffer_.reserve(kWriterBufferBytes);
  // Header placeholder; finish() patches the real one with pwrite.
  buffer_.assign(kHeaderBytes, 0);
}

Writer::~Writer() {
  // Abandoned mid-save (caller error path or crash-unwinding): the target
  // path is untouched by construction; drop the partial temp file.
  if (!finished_) discard();
}

void Writer::discard() {
  if (fd_ >= 0) {
    close_checked(fd_);
    fd_ = -1;
    ::unlink(tmp_path_.c_str());
  }
}

void Writer::flush_buffer() {
  if (!status_.ok() || buffer_.empty()) return;
  if (!write_all(fd_, buffer_.data(), buffer_.size())) {
    status_ = util::Status::io_error("cannot write snapshot: " + tmp_path_ +
                                     errno_suffix());
  }
  buffer_.clear();
}

void Writer::write_bytes(const void* data, std::size_t n) {
  if (!status_.ok() || n == 0) return;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + n);
  if (buffer_.size() >= kWriterBufferBytes) flush_buffer();
  if (!status_.ok()) return;
  checksum_ = fnv1a64(data, n, checksum_);
  payload_bytes_ += n;
}

void Writer::write_u64(std::uint64_t value) {
  write_bytes(&value, sizeof(value));
}

void Writer::pad_to_alignment() {
  static const char zeros[8] = {};
  const std::size_t rem = payload_bytes_ % 8;
  if (rem != 0) write_bytes(zeros, 8 - rem);
}

util::Status Writer::finish() {
  if (finished_) return status_;
  finished_ = true;
  flush_buffer();
  if (status_.ok()) {
    std::uint8_t header[kHeaderBytes] = {};
    std::size_t off = 0;
    const auto put = [&](const void* v, std::size_t n) {
      std::memcpy(header + off, v, n);
      off += n;
    };
    const std::uint64_t magic = kMagic;
    const std::uint32_t version = kFormatVersion;
    const std::uint32_t endian = kEndianTag;
    const std::uint32_t reserved = 0;
    put(&magic, 8);
    put(&version, 4);
    put(&endian, 4);
    put(&shard_count_, 4);
    put(&reserved, 4);
    put(&payload_bytes_, 8);
    put(&checksum_, 8);
    if (!pwrite_all(fd_, header, kHeaderBytes, 0)) {
      status_ = util::Status::io_error("cannot patch snapshot header: " +
                                       tmp_path_ + errno_suffix());
    }
  }
  // Data must be durable BEFORE the rename makes it visible: rename-then-
  // sync can surface a complete-looking file whose pages never hit disk.
  if (status_.ok() && !fsync_retry(fd_)) {
    status_ = util::Status::io_error("cannot fsync snapshot: " + tmp_path_ +
                                     errno_suffix());
  }
  if (fd_ >= 0) {
    if (!close_checked(fd_) && status_.ok()) {
      // A deferred write error can surface only at close; ignoring it
      // would publish a snapshot whose tail silently never landed.
      status_ = util::Status::io_error("cannot close snapshot: " +
                                       tmp_path_ + errno_suffix());
    }
    fd_ = -1;
  }
  if (status_.ok() && ::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    status_ = util::Status::io_error("cannot publish snapshot (rename " +
                                     tmp_path_ + " -> " + path_ + ")" +
                                     errno_suffix());
  }
  if (!status_.ok()) {
    ::unlink(tmp_path_.c_str());
    return status_;
  }
  if (!fsync_parent_dir(path_)) {
    status_ = util::Status::io_error(
        "cannot fsync snapshot directory for: " + path_ + errno_suffix());
  }
  return status_;
}

// ----------------------------------------------------------------- Mapping

Mapping::~Mapping() {
  if (base_ != nullptr && size_ > 0) {
    ::munmap(const_cast<std::uint8_t*>(base_), size_);
  }
}

util::Result<std::shared_ptr<Mapping>> map_file(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::io_error("cannot open snapshot: " + path +
                                  errno_suffix());
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    close_checked(fd);
    return util::Status::io_error("cannot stat snapshot: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    close_checked(fd);
    return util::Status::parse_error("snapshot file is empty: " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping keeps its own reference to the pages; a read-only close
  // has no buffered data to lose, so its result is advisory only.
  close_checked(fd);
  if (base == MAP_FAILED) {
    return util::Status::io_error("cannot mmap snapshot: " + path + " (" +
                                  std::strerror(errno) + ")");
  }
  return std::shared_ptr<Mapping>(
      new Mapping(static_cast<const std::uint8_t*>(base), size));
}

util::Result<OpenedSnapshot> open_validated(const std::string& path) {
  util::Result<std::shared_ptr<Mapping>> mapped = map_file(path);
  if (!mapped.ok()) return mapped.status();
  const std::shared_ptr<Mapping>& mapping = mapped.value();
  if (mapping->size() < kHeaderBytes) {
    return util::Status::parse_error("snapshot truncated before the header: " +
                                     path);
  }
  const std::uint8_t* h = mapping->data();
  const auto get_u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    std::memcpy(&v, h + off, 8);
    return v;
  };
  const auto get_u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    std::memcpy(&v, h + off, 4);
    return v;
  };
  if (get_u64(0) != kMagic) {
    return util::Status::parse_error("not a PrivLocAd snapshot (bad magic): " +
                                     path);
  }
  if (get_u32(8) != kFormatVersion) {
    return util::Status::parse_error(
        "unsupported snapshot format version " +
        std::to_string(get_u32(8)) + " (this build reads version " +
        std::to_string(kFormatVersion) + "): " + path);
  }
  if (get_u32(12) != kEndianTag) {
    return util::Status::parse_error(
        "snapshot was written with a different byte order: " + path);
  }
  const std::uint32_t shards = get_u32(16);
  const std::uint64_t payload_bytes = get_u64(24);
  const std::uint64_t stored_checksum = get_u64(32);
  if (payload_bytes != mapping->size() - kHeaderBytes) {
    return util::Status::parse_error(
        "snapshot payload size disagrees with the file size: " + path);
  }
  const std::uint64_t computed =
      fnv1a64(mapping->data() + kHeaderBytes, payload_bytes);
  if (computed != stored_checksum) {
    return util::Status::parse_error(
        "snapshot checksum mismatch (corrupt payload): " + path);
  }
  OpenedSnapshot opened;
  opened.mapping = mapping;
  opened.shard_count = shards;
  opened.payload_offset = kHeaderBytes;
  opened.payload_end = kHeaderBytes + payload_bytes;
  return opened;
}

// ------------------------------------------------------------------ Reader

util::Status Reader::read_u64(std::uint64_t& out) {
  if (end_ - offset_ < sizeof(out)) {
    return util::Status::parse_error("snapshot section truncated");
  }
  std::memcpy(&out, mapping_->data() + offset_, sizeof(out));
  offset_ += sizeof(out);
  return util::Status();
}

}  // namespace privlocad::core::snapshot
