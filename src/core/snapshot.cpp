#include "core/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace privlocad::core::snapshot {

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t state) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    state ^= bytes[i];
    state *= 0x100000001B3ULL;
  }
  return state;
}

// ------------------------------------------------------------------ Writer

Writer::Writer(const std::string& path, std::uint32_t shard_count)
    : path_(path), shard_count_(shard_count) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = util::Status::io_error("cannot open snapshot for writing: " +
                                     path + " (" + std::strerror(errno) + ")");
    return;
  }
  // Header placeholder; finish() seeks back and patches the real one.
  const char zeros[kHeaderBytes] = {};
  if (std::fwrite(zeros, 1, kHeaderBytes, file_) != kHeaderBytes) {
    status_ = util::Status::io_error("cannot write snapshot header: " + path);
  }
}

Writer::~Writer() {
  if (file_ != nullptr) std::fclose(file_);
}

void Writer::write_bytes(const void* data, std::size_t n) {
  if (!status_.ok() || n == 0) return;
  if (std::fwrite(data, 1, n, file_) != n) {
    status_ = util::Status::io_error("short write to snapshot: " + path_);
    return;
  }
  checksum_ = fnv1a64(data, n, checksum_);
  payload_bytes_ += n;
}

void Writer::write_u64(std::uint64_t value) {
  write_bytes(&value, sizeof(value));
}

void Writer::pad_to_alignment() {
  static const char zeros[8] = {};
  const std::size_t rem = payload_bytes_ % 8;
  if (rem != 0) write_bytes(zeros, 8 - rem);
}

util::Status Writer::finish() {
  if (finished_) return status_;
  finished_ = true;
  if (status_.ok()) {
    std::uint8_t header[kHeaderBytes] = {};
    std::size_t off = 0;
    const auto put = [&](const void* v, std::size_t n) {
      std::memcpy(header + off, v, n);
      off += n;
    };
    const std::uint64_t magic = kMagic;
    const std::uint32_t version = kFormatVersion;
    const std::uint32_t endian = kEndianTag;
    const std::uint32_t reserved = 0;
    put(&magic, 8);
    put(&version, 4);
    put(&endian, 4);
    put(&shard_count_, 4);
    put(&reserved, 4);
    put(&payload_bytes_, 8);
    put(&checksum_, 8);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(header, 1, kHeaderBytes, file_) != kHeaderBytes) {
      status_ = util::Status::io_error("cannot patch snapshot header: " +
                                       path_);
    }
  }
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0 && status_.ok()) {
      status_ = util::Status::io_error("cannot close snapshot: " + path_);
    }
    file_ = nullptr;
  }
  return status_;
}

// ----------------------------------------------------------------- Mapping

Mapping::~Mapping() {
  if (base_ != nullptr && size_ > 0) {
    ::munmap(const_cast<std::uint8_t*>(base_), size_);
  }
}

util::Result<std::shared_ptr<Mapping>> map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::io_error("cannot open snapshot: " + path + " (" +
                                  std::strerror(errno) + ")");
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::io_error("cannot stat snapshot: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return util::Status::parse_error("snapshot file is empty: " + path);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the pages
  if (base == MAP_FAILED) {
    return util::Status::io_error("cannot mmap snapshot: " + path + " (" +
                                  std::strerror(errno) + ")");
  }
  return std::shared_ptr<Mapping>(
      new Mapping(static_cast<const std::uint8_t*>(base), size));
}

util::Result<OpenedSnapshot> open_validated(const std::string& path) {
  util::Result<std::shared_ptr<Mapping>> mapped = map_file(path);
  if (!mapped.ok()) return mapped.status();
  const std::shared_ptr<Mapping>& mapping = mapped.value();
  if (mapping->size() < kHeaderBytes) {
    return util::Status::parse_error("snapshot truncated before the header: " +
                                     path);
  }
  const std::uint8_t* h = mapping->data();
  const auto get_u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    std::memcpy(&v, h + off, 8);
    return v;
  };
  const auto get_u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    std::memcpy(&v, h + off, 4);
    return v;
  };
  if (get_u64(0) != kMagic) {
    return util::Status::parse_error("not a PrivLocAd snapshot (bad magic): " +
                                     path);
  }
  if (get_u32(8) != kFormatVersion) {
    return util::Status::parse_error(
        "unsupported snapshot format version " +
        std::to_string(get_u32(8)) + " (this build reads version " +
        std::to_string(kFormatVersion) + "): " + path);
  }
  if (get_u32(12) != kEndianTag) {
    return util::Status::parse_error(
        "snapshot was written with a different byte order: " + path);
  }
  const std::uint32_t shards = get_u32(16);
  const std::uint64_t payload_bytes = get_u64(24);
  const std::uint64_t stored_checksum = get_u64(32);
  if (payload_bytes != mapping->size() - kHeaderBytes) {
    return util::Status::parse_error(
        "snapshot payload size disagrees with the file size: " + path);
  }
  const std::uint64_t computed =
      fnv1a64(mapping->data() + kHeaderBytes, payload_bytes);
  if (computed != stored_checksum) {
    return util::Status::parse_error(
        "snapshot checksum mismatch (corrupt payload): " + path);
  }
  OpenedSnapshot opened;
  opened.mapping = mapping;
  opened.shard_count = shards;
  opened.payload_offset = kHeaderBytes;
  opened.payload_end = kHeaderBytes + payload_bytes;
  return opened;
}

// ------------------------------------------------------------------ Reader

util::Status Reader::read_u64(std::uint64_t& out) {
  if (end_ - offset_ < sizeof(out)) {
    return util::Status::parse_error("snapshot section truncated");
  }
  std::memcpy(&out, mapping_->data() + offset_, sizeof(out));
  offset_ += sizeof(out);
  return util::Status();
}

}  // namespace privlocad::core::snapshot
