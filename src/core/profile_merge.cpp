#include "core/profile_merge.hpp"

#include <algorithm>

#include "util/validation.hpp"

namespace privlocad::core {

attack::LocationProfile merge_profiles(
    const std::vector<attack::LocationProfile>& slices, double threshold_m) {
  util::require_positive(threshold_m, "merge threshold");

  struct Accumulator {
    geo::Point weighted_sum{};   // sum of location * frequency
    std::uint64_t frequency = 0;

    geo::Point centroid() const {
      return weighted_sum / static_cast<double>(frequency);
    }
  };

  std::vector<Accumulator> merged;
  for (const attack::LocationProfile& slice : slices) {
    for (const attack::ProfileEntry& entry : slice.entries()) {
      // Find an existing accumulator whose current centroid is close
      // enough; greedy first-match keeps the merge deterministic and
      // O(entries^2), fine for per-user profile sizes (tens of entries).
      Accumulator* host = nullptr;
      for (Accumulator& acc : merged) {
        if (geo::distance(acc.centroid(), entry.location) <= threshold_m) {
          host = &acc;
          break;
        }
      }
      if (host == nullptr) {
        merged.push_back({});
        host = &merged.back();
      }
      host->weighted_sum =
          host->weighted_sum +
          entry.location * static_cast<double>(entry.frequency);
      host->frequency += entry.frequency;
    }
  }

  std::vector<attack::ProfileEntry> entries;
  entries.reserve(merged.size());
  for (const Accumulator& acc : merged) {
    entries.push_back({acc.centroid(), acc.frequency});
  }
  std::sort(entries.begin(), entries.end(),
            [](const attack::ProfileEntry& a, const attack::ProfileEntry& b) {
              return a.frequency > b.frequency;
            });
  return attack::LocationProfile(std::move(entries));
}

}  // namespace privlocad::core
