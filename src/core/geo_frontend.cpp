#include "core/geo_frontend.hpp"

#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

GeoFrontend::GeoFrontend(EdgePrivLocAd& system,
                         geo::LocalProjection projection,
                         geo::GeoBox service_area)
    : system_(system), projection_(projection), service_area_(service_area) {}

GeoServedAds GeoFrontend::on_lba_request(std::uint64_t user_id,
                                         geo::LatLon where,
                                         trace::Timestamp time) {
  util::require(service_area_.contains(where),
                "location (" + util::format_double(where.lat_deg, 4) + ", " +
                    util::format_double(where.lon_deg, 4) +
                    ") is outside this edge's service area");

  const ServedAds served =
      system_.on_lba_request(user_id, projection_.to_local(where), time);

  GeoServedAds geo_served;
  geo_served.outcome = served.outcome;
  geo_served.status = served.status;
  geo_served.ad_path_degraded = served.ad_path_degraded;
  if (!served.location_released()) return geo_served;
  geo_served.reported_location = projection_.to_geo(served.reported.location);
  geo_served.report_kind = served.reported.kind;
  geo_served.delivered.reserve(served.delivered.size());
  for (const adnet::Ad& ad : served.delivered) {
    geo_served.delivered.push_back(
        {ad.advertiser_id, projection_.to_geo(ad.business_location),
         ad.category});
  }
  return geo_served;
}

void GeoFrontend::import_history(
    std::uint64_t user_id,
    const std::vector<std::pair<geo::LatLon, trace::Timestamp>>& visits) {
  trace::UserTrace history;
  history.user_id = user_id;
  history.check_ins.reserve(visits.size());
  for (const auto& [where, time] : visits) {
    util::require(service_area_.contains(where),
                  "history visit outside this edge's service area");
    history.check_ins.push_back({projection_.to_local(where), time});
  }
  system_.edge().import_history(user_id, history);
}

GeoFrontend shanghai_frontend(EdgePrivLocAd& system) {
  return GeoFrontend(system, geo::shanghai_projection(),
                     geo::shanghai_geo_box());
}

}  // namespace privlocad::core
