// Location-privacy risk assessment (paper Section I: "We use edge devices
// to assess the risk of location privacy breaches, create user dynamic
// location statistics, and adopt the appropriate LPPM").
//
// The longitudinal threat to a user grows with (a) how concentrated their
// mobility is -- low location entropy means a few high-value targets --
// (b) how often they report -- more observations shrink the attacker's
// error as ~1/sqrt(N) -- and (c) how much privacy budget their one-time
// releases have already burned. This module folds those three signals
// into an interpretable score plus a recommended action, and is the
// "adopt the appropriate LPPM" switch: high-risk users should be moved to
// permanent obfuscation and/or stricter parameters.
#pragma once

#include <cstdint>
#include <string>

#include "attack/profile.hpp"
#include "lppm/accountant.hpp"
#include "lppm/privacy_params.hpp"

namespace privlocad::core {

enum class RiskLevel { kLow, kMedium, kHigh };

/// Human-readable label of a risk level.
std::string to_string(RiskLevel level);

struct RiskAssessment {
  RiskLevel level = RiskLevel::kLow;
  double score = 0.0;              ///< 0 (safe) .. 1 (maximal risk)
  double entropy_signal = 0.0;     ///< concentration contribution
  double exposure_signal = 0.0;    ///< observation-count contribution
  double budget_signal = 0.0;      ///< spent-privacy contribution
  /// Action the edge should take, e.g. "move top locations to permanent
  /// obfuscation" -- free text for logs/operator dashboards.
  std::string recommendation;
};

struct RiskConfig {
  /// Entropy (nats) at or below which a profile counts as fully
  /// concentrated. 2.0 matches the paper's Fig.-3 threshold.
  double entropy_floor = 2.0;

  /// Check-in count at which longitudinal exposure saturates the signal.
  /// ~1k matches the paper's 2-year per-user average.
  double exposure_saturation = 1000.0;

  /// Basic-composition epsilon at which the budget signal saturates.
  double budget_saturation_eps = 10.0;

  /// Score thresholds for the qualitative levels.
  double medium_threshold = 0.35;
  double high_threshold = 0.65;
};

/// Assesses one user from their profile, observed check-in count, and
/// accumulated privacy spend. Any profile may be empty (new user).
RiskAssessment assess_risk(const attack::LocationProfile& profile,
                           std::uint64_t observed_check_ins,
                           const lppm::PrivacySpend& spend,
                           const RiskConfig& config = {});

/// The "adopt the appropriate LPPM" policy (paper Section I): derives the
/// parameters a user's FUTURE top-location tables should use from their
/// risk level. kLow keeps `current`; kMedium halves epsilon (more noise);
/// kHigh halves epsilon AND doubles n (more noise, but more candidates to
/// preserve utilization). Changes only apply to tables not yet frozen --
/// see EdgeDevice::set_user_privacy.
lppm::BoundedGeoIndParams recommended_params(
    const RiskAssessment& assessment,
    const lppm::BoundedGeoIndParams& current);

}  // namespace privlocad::core
