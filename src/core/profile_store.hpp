// Durable storage for per-user location profiles.
//
// Completes the edge-restart story: table_store preserves the PRIVACY
// state (permanent candidates); this module preserves the MANAGEMENT
// state (profiles and top-location sets), so a restarted device resumes
// serving top-location requests immediately instead of reporting every
// user nomadically until a full window of fresh check-ins accumulates.
// Unlike tables, losing profiles is only a utility regression, never a
// privacy one -- but a regression users would feel for up to a window.
//
// Format, one row per profile entry:
//   user_id,entry_index,x,y,frequency,is_top
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "attack/profile.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "util/status.hpp"

namespace privlocad::core {

/// One user's persisted management state.
struct StoredProfile {
  attack::LocationProfile profile;
  /// Indices into profile.entries() that form the top-location set.
  std::vector<std::size_t> top_indices;
};

using ProfileSnapshot = std::map<std::uint64_t, StoredProfile>;

/// Writes every user's profile to `out`.
void save_profiles(std::ostream& out, const ProfileSnapshot& profiles);

/// Reads profiles back. Throws util::InvalidArgument on malformed rows,
/// out-of-order entries, or top indices past the profile size.
ProfileSnapshot load_profiles(std::istream& in);

/// File-path convenience wrappers; throw util::IoError (a
/// std::runtime_error) when the file cannot be opened.
void save_profiles_file(const std::string& path,
                        const ProfileSnapshot& profiles);
ProfileSnapshot load_profiles_file(const std::string& path);

/// Fault-aware non-throwing variants: each attempt first consults the
/// injector's `profile_store` site (nullptr selects the process-global
/// injector), and transient faults are retried under `policy`. Corrupt
/// input and IO errors fail fast with the typed status.
util::Result<ProfileSnapshot> try_load_profiles_file(
    const std::string& path, const fault::RetryPolicy& policy = {},
    fault::FaultInjector* faults = nullptr);
util::Status try_save_profiles_file(const std::string& path,
                                    const ProfileSnapshot& profiles,
                                    const fault::RetryPolicy& policy = {},
                                    fault::FaultInjector* faults = nullptr);

}  // namespace privlocad::core
