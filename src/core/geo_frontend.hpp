// Geographic front-end: the WGS-84-facing API of Edge-PrivLocAd.
//
// Everything inside the library runs on a local metric plane (meters),
// where the paper's privacy parameters live. Real clients speak latitude/
// longitude. This wrapper owns the projection and converts at the
// boundary, so integrators never touch geo::Point directly. It also
// validates that incoming coordinates fall inside the configured service
// area -- an edge device for Shanghai should reject a check-in from Paris
// instead of silently projecting it 9,000 km onto the plane.
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "geo/bounding_box.hpp"
#include "geo/projection.hpp"

namespace privlocad::core {

/// One ad as the client sees it: geographic coordinates.
struct GeoAd {
  std::uint64_t advertiser_id = 0;
  geo::LatLon business_location;
  std::string category;
};

/// `reported_location`/`report_kind` are meaningful only when
/// location_released(); a dropped or failed round carries the typed
/// cause in `status` and delivers nothing.
struct GeoServedAds {
  geo::LatLon reported_location{};
  ReportKind report_kind = ReportKind::kNomadic;
  std::vector<GeoAd> delivered;
  ServeOutcome outcome = ServeOutcome::kServed;
  util::Status status{};
  bool ad_path_degraded = false;

  bool location_released() const {
    return outcome == ServeOutcome::kServed ||
           outcome == ServeOutcome::kServedAfterRetry ||
           outcome == ServeOutcome::kDegradedCached;
  }
};

class GeoFrontend {
 public:
  /// Wraps `system` (not owned; must outlive the frontend) with the given
  /// projection and geographic service area.
  GeoFrontend(EdgePrivLocAd& system, geo::LocalProjection projection,
              geo::GeoBox service_area);

  /// Full LBA round trip in geographic coordinates. Throws
  /// util::InvalidArgument when `where` is outside the service area.
  GeoServedAds on_lba_request(std::uint64_t user_id, geo::LatLon where,
                              trace::Timestamp time);

  /// Bulk geographic history import (registration flow).
  void import_history(std::uint64_t user_id,
                      const std::vector<std::pair<geo::LatLon,
                                                  trace::Timestamp>>& visits);

  const geo::LocalProjection& projection() const { return projection_; }
  const geo::GeoBox& service_area() const { return service_area_; }

 private:
  EdgePrivLocAd& system_;
  geo::LocalProjection projection_;
  geo::GeoBox service_area_;
};

/// Frontend pre-configured for the paper's Shanghai study area.
GeoFrontend shanghai_frontend(EdgePrivLocAd& system);

}  // namespace privlocad::core
