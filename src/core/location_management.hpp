// Location management module (paper Section V-B).
//
// Runs on the trusted edge device. Passively collects a user's raw
// check-ins as LBA requests arrive, and at the end of each configurable
// time window rebuilds the user's location profile (connectivity
// clustering, 50 m threshold) and recomputes the eta-frequent top-location
// set. Profiles are rebuilt periodically because users occasionally change
// their top locations (move home, switch jobs).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "attack/profile.hpp"
#include "core/eta_frequent.hpp"
#include "trace/check_in.hpp"

namespace privlocad::core {

struct LocationManagementConfig {
  /// Profile rebuild period. The paper's prototype uses three months.
  trace::Timestamp window_seconds = 90 * trace::kSecondsPerDay;

  /// Connectivity threshold for profiling (meters).
  double profiling_threshold_m = attack::kDefaultProfilingThresholdM;

  /// Fraction of activity the eta-frequent set must cover.
  double eta_fraction = 0.8;

  /// Ignore locations visited fewer than this many times even when the
  /// eta prefix would include them (guards against one-off spikes in
  /// sparse windows).
  std::uint64_t min_top_frequency = 2;

  /// A window boundary only triggers a rebuild once this many check-ins
  /// accumulated; sparser windows keep accumulating (and the previous
  /// top-location set keeps serving). Without this guard a single
  /// check-in straddling a boundary would replace a rich profile with a
  /// near-empty one and silently drop every top location.
  std::size_t min_window_check_ins = 10;
};

/// Per-user location manager.
class LocationManager {
 public:
  explicit LocationManager(LocationManagementConfig config);

  /// Records one raw check-in. If the check-in's time crosses the current
  /// window boundary, the profile and top-location set are rebuilt from
  /// the completed window first. Returns true when a rebuild happened.
  bool record(geo::Point position, trace::Timestamp time);

  /// Forces a rebuild from everything recorded in the current window
  /// (e.g. at system startup after a bulk history import).
  void rebuild_now();

  /// Restores persisted management state (startup flow): the profile and
  /// the top-location set become current as if a rebuild had produced
  /// them. Throws PreconditionViolation if a profile already exists.
  void restore(attack::LocationProfile profile,
               std::vector<attack::ProfileEntry> top_locations);

  /// Current top locations (empty before the first rebuild).
  const std::vector<attack::ProfileEntry>& top_locations() const {
    return top_locations_;
  }

  /// The most recent full profile, if any rebuild has happened yet.
  const std::optional<attack::LocationProfile>& profile() const {
    return profile_;
  }

  /// Check-ins recorded since the last rebuild.
  std::size_t pending_check_ins() const { return window_points_.size(); }

  /// Total check-ins ever recorded (longitudinal exposure counter).
  std::uint64_t total_check_ins() const { return total_recorded_; }

  const LocationManagementConfig& config() const { return config_; }

 private:
  LocationManagementConfig config_;
  std::vector<geo::Point> window_points_;
  std::optional<trace::Timestamp> window_start_;
  std::optional<attack::LocationProfile> profile_;
  std::vector<attack::ProfileEntry> top_locations_;
  std::uint64_t total_recorded_ = 0;
};

}  // namespace privlocad::core
