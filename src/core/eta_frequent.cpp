#include "core/eta_frequent.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::core {

std::vector<attack::ProfileEntry> eta_frequent_set(
    const attack::LocationProfile& profile, std::uint64_t eta) {
  util::require(eta > 0, "eta must be > 0");
  std::vector<attack::ProfileEntry> set;
  std::uint64_t accumulated = 0;
  for (const attack::ProfileEntry& entry : profile.entries()) {
    accumulated += entry.frequency;
    set.push_back(entry);
    if (accumulated >= eta) break;
  }
  return set;
}

std::vector<attack::ProfileEntry> eta_frequent_set_fraction(
    const attack::LocationProfile& profile, double fraction) {
  util::require(fraction > 0.0 && fraction <= 1.0,
                "eta fraction must be in (0, 1]");
  util::require(!profile.empty(), "eta-frequent set of empty profile");
  const auto eta = static_cast<std::uint64_t>(std::ceil(
      fraction * static_cast<double>(profile.total_frequency())));
  return eta_frequent_set(profile, std::max<std::uint64_t>(eta, 1));
}

}  // namespace privlocad::core
