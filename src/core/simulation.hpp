// Scenario driver: the whole paper in one harness.
//
// Drives a synthetic population through the full Edge-PrivLocAd request
// flow (edge -> ad network -> edge filter), then plays the longitudinal
// adversary against the ad network's own bid log and scores it against the
// population's ground truth. This is the highest-fidelity evaluation in
// the repository: unlike the mechanism-level benches, every number here
// passed through the real system path (profile windows, obfuscation
// table, output selection, nomadic fallback, ad matching, filtering).
#pragma once

#include <cstdint>
#include <vector>

#include "attack/evaluation.hpp"
#include "core/system.hpp"
#include "core/telemetry.hpp"
#include "trace/synthetic.hpp"

namespace privlocad::core {

struct SimulationConfig {
  EdgeConfig edge{};

  /// Synthetic population parameters.
  trace::SyntheticConfig population{};
  std::size_t user_count = 100;

  /// Campaign count for the ad network.
  std::size_t advertiser_count = 1000;

  /// The first `history_fraction` of the study window is imported as
  /// registration history; the rest is served as live requests.
  double history_fraction = 0.5;

  /// Attack evaluation: ranks and distance thresholds.
  std::size_t attack_ranks = 2;
  std::vector<double> attack_thresholds_m{200.0, 500.0};

  std::uint64_t seed = 1;
};

struct SimulationResult {
  /// Operational counters of the edge device.
  EdgeTelemetry telemetry;

  /// Attack success rates measured on the REAL bid log.
  attack::SuccessRateAccumulator attack_rates{1, {200.0}};

  /// Ads matched / delivered per live request (relevance picture).
  double ads_matched_per_request = 0.0;
  double ads_delivered_per_request = 0.0;

  /// Fraction of live requests answered from permanent candidates.
  double top_report_ratio = 0.0;

  std::size_t live_requests = 0;
  std::size_t users = 0;
};

/// Runs the scenario start-to-finish. Deterministic for a fixed config.
SimulationResult run_simulation(const SimulationConfig& config);

}  // namespace privlocad::core
