#include "core/system.hpp"

namespace privlocad::core {

EdgePrivLocAd::EdgePrivLocAd(EdgeConfig config,
                             std::vector<adnet::Advertiser> advertisers)
    : edge_(config),
      network_(std::move(advertisers)),
      adnet_backoff_engine_(config.seed ^ 0xAD0E7ULL),
      adnet_degraded_total_(
          &edge_.metrics().counter(edge_metrics::kAdnetDegraded)) {}

// Deprecated forwarding constructor; suppress its self-referential
// deprecation warning.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
EdgePrivLocAd::EdgePrivLocAd(EdgeConfig config,
                             std::vector<adnet::Advertiser> advertisers,
                             std::uint64_t seed)
    : EdgePrivLocAd(config.with_seed(seed), std::move(advertisers)) {}
#pragma GCC diagnostic pop

ServedAds EdgePrivLocAd::on_lba_request(std::uint64_t user_id,
                                        geo::Point true_location,
                                        trace::Timestamp time) {
  ServedAds result;
  const ServeResult served = edge_.serve(user_id, true_location, time);
  result.outcome = served.outcome;
  result.status = served.status;
  result.retries = served.retries;
  if (!served.released()) {
    // Nothing left the edge, so there is nothing to request ads for --
    // the round ends here with the typed cause (fail private).
    return result;
  }
  result.reported = served.reported;

  // The ad-network leg is its own fault seam (the exchange can be down
  // while the edge is healthy). Retries use the edge's policy; once
  // exhausted the round degrades to zero ads -- the location report
  // already succeeded, so this is a pure availability loss.
  fault::FaultInjector& injector =
      edge_.config().faults != nullptr ? *edge_.config().faults
                                       : fault::FaultInjector::global();
  if (injector.enabled()) {
    const util::Status reachable = fault::retry_with_backoff(
        edge_.config().retry, adnet_backoff_engine_,
        [&injector] { return injector.check(fault::Site::kExchange); });
    if (!reachable.ok()) {
      result.ad_path_degraded = true;
      result.status = reachable;
      adnet_degraded_total_->add();
      return result;
    }
  }

  const std::vector<adnet::Ad> matched = network_.handle_request(
      {user_id, result.reported.location, time, /*category=*/{}});
  result.matched_count = matched.size();
  result.delivered = edge_.filter_ads(matched, true_location);
  return result;
}

}  // namespace privlocad::core
