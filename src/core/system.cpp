#include "core/system.hpp"

namespace privlocad::core {

EdgePrivLocAd::EdgePrivLocAd(EdgeConfig config,
                             std::vector<adnet::Advertiser> advertisers,
                             std::uint64_t seed)
    : edge_(config, seed), network_(std::move(advertisers)) {}

ServedAds EdgePrivLocAd::on_lba_request(std::uint64_t user_id,
                                        geo::Point true_location,
                                        trace::Timestamp time) {
  ServedAds result;
  result.reported = edge_.report_location(user_id, true_location, time);

  const std::vector<adnet::Ad> matched = network_.handle_request(
      {user_id, result.reported.location, time, /*category=*/{}});
  result.matched_count = matched.size();
  result.delivered = edge_.filter_ads(matched, true_location);
  return result;
}

}  // namespace privlocad::core
