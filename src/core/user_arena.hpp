// Columnar per-shard user storage: the million-user data plane.
//
// Replaces the per-user heap objects EdgeDevice used to hold (a
// LocationManager + ObfuscationTable per user behind an unordered_map)
// with one contiguous structure-of-arrays arena per shard:
//
//   * a compact open-addressing directory maps user id -> dense row;
//   * row scalars (RNG stream, window state, range descriptors) are
//     plain parallel vectors indexed by row;
//   * bulk payloads -- profile entries, top-location index sets,
//     obfuscation-table entries, candidate points, and the pending
//     check-in window -- live in shared append-only columns, each user
//     owning a contiguous [begin, begin+count) range.
//
// Mutation is log-structured: a profile rebuild or table-entry append
// writes a fresh contiguous range at the end of the column and orphans
// the old one; dead-element counters trigger compaction once garbage
// exceeds live data. Candidate coordinates are exposed as simd::PointSpan
// views, so posterior selection scores store-resident columns directly
// (no AoS->SoA scratch copy on the serve path).
//
// The whole arena serializes to the snapshot format (core/snapshot.hpp).
// On open, the big frozen columns are adopted in place from the read-only
// mapping -- columns become "mapped base + owned mutable tail" -- and only
// the small row scalars are copied, so opening a million-user arena costs
// a map plus a directory rebuild, not a parse. Compaction folds the
// mapped base back into owned memory, after which the mapping is
// released.
//
// Determinism: every user's randomness comes from a per-user engine
// derived as parent.split(user_id) at row creation. Serving outputs for
// a user therefore depend only on (config seed, user id, that user's
// request stream) -- not on shard count, co-resident users, or arrival
// interleaving -- which is what makes 1/2/8-shard runs and
// snapshot-reopened runs bit-identical.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "attack/profile.hpp"
#include "core/location_management.hpp"
#include "geo/point.hpp"
#include "lppm/mechanism.hpp"
#include "lppm/privacy_params.hpp"
#include "rng/engine.hpp"
#include "simd/soa.hpp"
#include "trace/check_in.hpp"
#include "util/status.hpp"

namespace privlocad::core {

namespace snapshot {
class Writer;
class Reader;
class Mapping;
}  // namespace snapshot

/// One logical column that may be split across a read-only mapped base
/// (adopted from a snapshot) and an owned mutable tail (post-open
/// appends). Ranges are written atomically to one side, so a user's
/// [begin, begin+count) range never straddles the seam and range() can
/// return one contiguous pointer.
template <typename T>
class ArenaColumn {
 public:
  std::size_t size() const { return base_size_ + tail_.size(); }

  T operator[](std::size_t i) const {
    return i < base_size_ ? base_[i] : tail_[i - base_size_];
  }

  void push_back(T value) { tail_.push_back(value); }

  /// Contiguous view of [begin, begin+count). Valid because ranges are
  /// appended whole to one side of the base/tail seam.
  const T* range(std::size_t begin, std::size_t count) const {
    if (begin >= base_size_) return tail_.data() + (begin - base_size_);
    assert(begin + count <= base_size_ && "range straddles the mapped seam");
    (void)count;
    return base_ + begin;
  }

  /// Adopts a mapped extent as the immutable base; drops any owned data.
  void adopt(const T* base, std::size_t count) {
    base_ = base;
    base_size_ = count;
    tail_.clear();
    tail_.shrink_to_fit();
  }

  /// Replaces everything with an owned compacted vector.
  void reset_owned(std::vector<T> owned) {
    base_ = nullptr;
    base_size_ = 0;
    tail_ = std::move(owned);
  }

  bool fully_owned() const { return base_size_ == 0; }

  /// The owned storage; only meaningful after compaction (save path).
  const std::vector<T>& owned() const {
    assert(fully_owned() && "serialize only after compaction");
    return tail_;
  }

  std::uint64_t owned_bytes() const { return tail_.capacity() * sizeof(T); }
  std::uint64_t mapped_bytes() const { return base_size_ * sizeof(T); }

 private:
  const T* base_ = nullptr;
  std::size_t base_size_ = 0;
  std::vector<T> tail_;
};

/// The per-shard columnar store behind EdgeDevice. Row handles are dense
/// indices valid for the arena's lifetime (rows are never deleted);
/// pointers/spans into columns are invalidated by any mutating call.
class UserArena {
 public:
  using Row = std::uint32_t;
  static constexpr Row kNoRow = 0xFFFFFFFFu;

  /// `parent` seeds every per-user stream: row creation derives the
  /// user's engine as parent.split(user_id).
  explicit UserArena(rng::Engine parent);

  // ------------------------------------------------------------- directory
  std::size_t size() const { return user_ids_.size(); }
  Row find(std::uint64_t user_id) const;
  Row find_or_create(std::uint64_t user_id);
  std::uint64_t user_id(Row row) const { return user_ids_[row]; }
  rng::Engine& engine(Row row) { return engines_[row]; }

  // ---------------------------------------- location management (window)
  /// Ports LocationManager::record: starts/advances the window, rebuilds
  /// the profile when a boundary with enough check-ins is crossed, then
  /// appends the check-in to the window tail. Returns true on rebuild.
  bool record(Row row, geo::Point position, trace::Timestamp time,
              const LocationManagementConfig& config);

  /// Ports LocationManager::rebuild_now (forced rebuild from the pending
  /// window; keeps the previous profile when the window is empty).
  void rebuild_now(Row row, const LocationManagementConfig& config);

  std::size_t pending_check_ins(Row row) const { return win_count_[row]; }
  std::uint64_t total_check_ins(Row row) const {
    return total_check_ins_[row];
  }

  // --------------------------------------------------- profile + top set
  bool has_profile(Row row) const { return has_profile_[row] != 0; }
  std::size_t profile_size(Row row) const { return prof_count_[row]; }
  attack::ProfileEntry profile_entry(Row row, std::size_t i) const;
  /// Materializes the row's profile (snapshot/risk paths, not serving).
  attack::LocationProfile profile_of(Row row) const;

  std::size_t top_size(Row row) const { return top_count_[row]; }
  /// The i-th top location (a copy of the referenced profile entry).
  attack::ProfileEntry top_entry(Row row, std::size_t i) const;
  /// Profile-relative index of the i-th top location.
  std::uint32_t top_index(Row row, std::size_t i) const;

  /// Index of the nearest top location within `radius_m` of `location`,
  /// or -1. Ties resolve to the later entry (legacy scan order).
  std::int64_t matching_top(Row row, geo::Point location,
                            double radius_m) const;

  /// Restore path: installs a persisted profile + top set. Throws
  /// util::PreconditionViolation over a live profile, util::InvalidArgument
  /// on an out-of-range top index.
  void restore_profile(Row row, const attack::LocationProfile& profile,
                       const std::vector<std::size_t>& top_indices);

  // ------------------------------------------------- obfuscation entries
  std::size_t entry_count(Row row) const { return ent_count_[row]; }
  geo::Point entry_top(Row row, std::size_t i) const;
  /// SoA view of entry i's frozen candidate set -- the span the posterior
  /// selection kernel scores directly.
  simd::PointSpan entry_candidates(Row row, std::size_t i) const;

  /// Index of the entry whose top location lies within `radius_m` of
  /// `location`, or -1. Insertion-order scan, ties to the later entry
  /// (legacy ObfuscationTable::find semantics).
  std::int64_t find_entry(Row row, geo::Point location,
                          double radius_m) const;

  /// Appends a new entry for `top`, generating its permanent candidates
  /// through `mechanism` on `engine` (same draw order as the legacy
  /// table). Returns the new entry's index.
  std::size_t add_entry(Row row, geo::Point top,
                        const lppm::Mechanism& mechanism, rng::Engine& engine);

  /// Restore path: installs a persisted entry verbatim. Throws
  /// util::InvalidArgument on empty candidates or a collision with an
  /// existing entry inside `radius_m`.
  void restore_entry(Row row, geo::Point top,
                     const std::vector<geo::Point>& candidates,
                     double radius_m);

  // ------------------------------------------------- personalized privacy
  void set_custom_params(Row row, lppm::BoundedGeoIndParams params) {
    custom_params_[row] = params;
  }
  const lppm::BoundedGeoIndParams* custom_params(Row row) const {
    const auto it = custom_params_.find(row);
    return it == custom_params_.end() ? nullptr : &it->second;
  }
  const std::unordered_map<Row, lppm::BoundedGeoIndParams>&
  all_custom_params() const {
    return custom_params_;
  }

  // ------------------------------------------------ maintenance / memory
  /// Rewrites every column dense and owned (drops orphaned ranges and the
  /// snapshot mapping). Called automatically once garbage exceeds live
  /// data, and by save() so snapshots serialize dense.
  void compact();

  std::uint64_t owned_bytes() const;
  std::uint64_t mapped_bytes() const;

  // ------------------------------------------------------------ snapshots
  /// Writes this arena as one snapshot section (compacts first).
  void save(snapshot::Writer& writer);

  /// Loads one snapshot section into this (empty) arena, adopting the
  /// frozen columns from the mapping in place. Returns kParseError on
  /// structural damage.
  util::Status load(snapshot::Reader& reader);

 private:
  static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;
  /// window_start sentinel (legacy: empty optional). INT64_MIN is not a
  /// representable check-in time.
  static constexpr std::int64_t kNoWindowStart =
      std::numeric_limits<std::int64_t>::min();

  void grow_directory(std::size_t min_rows);
  void insert_into_directory(Row row);
  /// Collects the pending window chronologically into scratch_points_.
  void gather_window(Row row);
  void clear_window(Row row);
  /// Installs freshly built profile entries; the top set is the first
  /// `top_prefix` profile entries (eta prefix after the min-frequency
  /// suffix filter).
  void set_rebuilt_profile(Row row,
                           const std::vector<attack::ProfileEntry>& entries,
                           std::size_t top_prefix);
  void append_entry(Row row, geo::Point top, std::uint64_t cand_begin,
                    std::uint32_t cand_count);
  void maybe_compact();
  void compact_frozen();
  void compact_window();

  rng::Engine parent_;

  // Directory: open addressing, power-of-two capacity, linear probing.
  std::vector<Row> directory_;
  std::uint64_t directory_mask_ = 0;

  // Row scalars (dense, one element per user).
  std::vector<std::uint64_t> user_ids_;
  std::vector<rng::Engine> engines_;
  std::vector<std::int64_t> window_start_;
  std::vector<std::uint64_t> total_check_ins_;
  std::vector<std::uint32_t> win_head_;
  std::vector<std::uint32_t> win_count_;
  std::vector<std::uint8_t> has_profile_;
  std::vector<std::uint64_t> prof_begin_;
  std::vector<std::uint32_t> prof_count_;
  std::vector<std::uint64_t> top_begin_;
  std::vector<std::uint32_t> top_count_;
  std::vector<std::uint64_t> ent_begin_;
  std::vector<std::uint32_t> ent_count_;

  // Frozen columnar arenas (append-only ranges, copy-forward on update).
  ArenaColumn<double> prof_xs_, prof_ys_;
  ArenaColumn<std::uint64_t> prof_freq_;
  ArenaColumn<std::uint32_t> top_idx_;
  ArenaColumn<double> ent_xs_, ent_ys_;
  ArenaColumn<std::uint64_t> ent_cand_begin_;
  ArenaColumn<std::uint32_t> ent_cand_count_;
  ArenaColumn<double> cand_xs_, cand_ys_;

  // Pending-window tail: per-record columns chained newest-first through
  // win_prev_ (win_head_[row] is the newest record's index). No per-user
  // vectors: appends from any user interleave in the shared columns.
  std::vector<double> win_xs_, win_ys_;
  std::vector<std::int64_t> win_ts_;
  std::vector<std::uint32_t> win_prev_;

  std::unordered_map<Row, lppm::BoundedGeoIndParams> custom_params_;

  // Orphaned-element tallies driving compaction.
  std::uint64_t prof_dead_ = 0;
  std::uint64_t top_dead_ = 0;
  std::uint64_t ent_dead_ = 0;
  std::uint64_t win_dead_ = 0;

  // Reused scratch (window gather, candidate generation).
  std::vector<geo::Point> scratch_points_;

  /// Keeps the snapshot pages alive while any frozen column still adopts
  /// extents from them; released by compaction.
  std::shared_ptr<const snapshot::Mapping> mapping_;
};

}  // namespace privlocad::core
