#include "core/simulation.hpp"

#include "adnet/advertiser.hpp"
#include "attack/deobfuscation.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

SimulationResult run_simulation(const SimulationConfig& config) {
  util::require(config.user_count > 0, "simulation needs users");
  util::require(config.history_fraction >= 0.0 &&
                    config.history_fraction < 1.0,
                "history_fraction must be in [0, 1)");
  util::require(config.attack_ranks >= 1, "attack_ranks must be >= 1");
  util::require(!config.attack_thresholds_m.empty(),
                "attack thresholds must not be empty");

  // --- world setup ----------------------------------------------------
  rng::Engine engine(config.seed);
  EdgePrivLocAd system(
      config.edge.with_seed(config.seed ^ 0xED6EULL),
      adnet::generate_campaigns(engine, adnet::table1_presets()[3],
                                config.advertiser_count,
                                config.population.area_half_extent_m));

  const rng::Engine population_parent(config.seed ^ 0x9090ULL);
  const std::vector<trace::SyntheticUser> users = trace::generate_population(
      population_parent, config.population, config.user_count);

  const auto window = static_cast<double>(config.population.window_end -
                                          config.population.window_start);
  const trace::Timestamp split =
      config.population.window_start +
      static_cast<trace::Timestamp>(window * config.history_fraction);

  // --- live traffic -----------------------------------------------------
  SimulationResult result;
  result.attack_rates = attack::SuccessRateAccumulator(
      config.attack_ranks, config.attack_thresholds_m);
  std::size_t matched_total = 0, delivered_total = 0;

  for (const trace::SyntheticUser& user : users) {
    system.edge().import_history(
        user.trace.user_id,
        trace::slice_by_time(user.trace, config.population.window_start,
                             split));
    for (const trace::CheckIn& c : user.trace.check_ins) {
      if (c.time < split) continue;
      const ServedAds served =
          system.on_lba_request(user.trace.user_id, c.position, c.time);
      ++result.live_requests;
      matched_total += served.matched_count;
      delivered_total += served.delivered.size();
    }
  }

  // --- the adversary reads the bid log ---------------------------------
  attack::DeobfuscationConfig attack_config;
  attack_config.trim_radius_m =
      system.edge().top_mechanism().tail_radius(0.05);
  attack_config.connectivity_threshold_m =
      attack_config.trim_radius_m / 4.0;
  attack_config.top_n = config.attack_ranks;

  for (const trace::SyntheticUser& user : users) {
    const std::vector<geo::Point> observed =
        system.network().bid_log().positions_for(user.trace.user_id);
    if (observed.empty()) {
      result.attack_rates.add(attack::UserAttackOutcome{
          std::vector<std::optional<double>>(config.attack_ranks)});
      continue;
    }
    const auto inferred =
        attack::deobfuscate_top_locations(observed, attack_config);
    result.attack_rates.add(
        attack::evaluate_attack(inferred, user.truth, config.attack_ranks));
  }

  // --- roll up ----------------------------------------------------------
  result.telemetry = system.edge().telemetry();
  result.users = users.size();
  if (result.live_requests > 0) {
    result.ads_matched_per_request =
        static_cast<double>(matched_total) /
        static_cast<double>(result.live_requests);
    result.ads_delivered_per_request =
        static_cast<double>(delivered_total) /
        static_cast<double>(result.live_requests);
  }
  result.top_report_ratio = result.telemetry.top_report_ratio();
  return result;
}

}  // namespace privlocad::core
