// Output selection module (paper Section V-D, Algorithm 4).
//
// Given the frozen candidate set {q_1, ..., q_n} of a top location, pick
// the candidate to actually report for an LBA request. Uniform choice
// would waste utility: candidates that landed far from the real location
// fetch irrelevant ads. Instead, the module weights each candidate by the
// posterior density of the real location at that candidate (Eq. 17-18):
// the posterior given the candidates is a Gaussian centred at their
// sample mean with the mechanism's sigma, so
//   Pr[select q_i] = f(q_i) / sum_k f(q_k),
//   f(x, y) = exp(-((x - xbar)^2 + (y - ybar)^2) / (2 sigma^2)) / (2 pi sigma^2).
// Selection is pure post-processing of already-released points: it reads
// only the candidates, never the true location, so it costs no privacy.
#pragma once

#include <vector>

#include "geo/point.hpp"
#include "rng/engine.hpp"

namespace privlocad::core {

/// Eq. 18 selection distribution over `candidates` with mechanism sigma.
/// Requires a non-empty candidate set and sigma > 0. Probabilities sum
/// to 1 exactly (normalized in long-double accumulation).
std::vector<double> selection_probabilities(
    const std::vector<geo::Point>& candidates, double sigma);

/// Algorithm 4: samples one candidate index from the posterior weights.
std::size_t select_candidate(rng::Engine& engine,
                             const std::vector<geo::Point>& candidates,
                             double sigma);

/// Uniform baseline for the ablation bench: each candidate with
/// probability 1/n.
std::size_t select_uniform(rng::Engine& engine,
                           const std::vector<geo::Point>& candidates);

}  // namespace privlocad::core
