// Output selection module (paper Section V-D, Algorithm 4).
//
// Given the frozen candidate set {q_1, ..., q_n} of a top location, pick
// the candidate to actually report for an LBA request. Uniform choice
// would waste utility: candidates that landed far from the real location
// fetch irrelevant ads. Instead, the module weights each candidate by the
// posterior density of the real location at that candidate (Eq. 17-18):
// the posterior given the candidates is a Gaussian centred at their
// sample mean with the mechanism's sigma, so
//   Pr[select q_i] = f(q_i) / sum_k f(q_k),
//   f(x, y) = exp(-((x - xbar)^2 + (y - ybar)^2) / (2 sigma^2)) / (2 pi sigma^2).
// Selection is pure post-processing of already-released points: it reads
// only the candidates, never the true location, so it costs no privacy.
//
// The native input is a simd::PointSpan -- the columnar data plane stores
// candidate sets as SoA columns, so the kernel scores store-resident
// memory directly with no AoS -> SoA conversion on the serve path. The
// vector<geo::Point> overloads remain for callers that hold AoS data
// (benches, tests, examples) and produce bit-identical results.
#pragma once

#include <vector>

#include "geo/point.hpp"
#include "rng/engine.hpp"
#include "simd/soa.hpp"

namespace privlocad::core {

/// Eq. 18 selection distribution over `candidates`, written into `probs`
/// (resized; allocation-free once capacity is warm). Requires a non-empty
/// candidate span and sigma > 0. Probabilities sum to 1 exactly
/// (normalized in the scalar candidate order that is part of the
/// determinism contract).
void selection_probabilities_into(simd::PointSpan candidates, double sigma,
                                  std::vector<double>& probs);

/// Eq. 18 selection distribution over an SoA candidate span.
std::vector<double> selection_probabilities(simd::PointSpan candidates,
                                            double sigma);

/// AoS convenience overload; bit-identical to the span form.
std::vector<double> selection_probabilities(
    const std::vector<geo::Point>& candidates, double sigma);

/// Algorithm 4: samples one candidate index from the posterior weights.
/// Scores the span in place through the SIMD kernel layer; the only
/// per-call state is a reused thread_local probability buffer.
std::size_t select_candidate(rng::Engine& engine, simd::PointSpan candidates,
                             double sigma);

/// AoS convenience overload; bit-identical to the span form.
std::size_t select_candidate(rng::Engine& engine,
                             const std::vector<geo::Point>& candidates,
                             double sigma);

/// Uniform baseline for the ablation bench: each candidate with
/// probability 1/n.
std::size_t select_uniform(rng::Engine& engine,
                           const std::vector<geo::Point>& candidates);

}  // namespace privlocad::core
