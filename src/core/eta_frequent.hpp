// Eta-frequent location set (paper Definition 6, Algorithm 2).
//
// Given a location profile ordered by frequency, the eta-frequent set is
// the minimal prefix of top locations whose accumulated frequency reaches
// eta. It is what the location-management module hands to the obfuscation
// module at the end of every time window: the locations worth permanent
// protection.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/profile.hpp"

namespace privlocad::core {

/// Algorithm 2: the minimal frequency-ordered prefix with total frequency
/// >= eta (an absolute check-in count). If the whole profile sums below
/// eta, the entire profile is returned (every location is "top").
std::vector<attack::ProfileEntry> eta_frequent_set(
    const attack::LocationProfile& profile, std::uint64_t eta);

/// Convenience: eta as a fraction of the profile's total check-ins,
/// e.g. 0.8 protects the locations covering 80% of activity.
/// `fraction` must be in (0, 1].
std::vector<attack::ProfileEntry> eta_frequent_set_fraction(
    const attack::LocationProfile& profile, double fraction);

}  // namespace privlocad::core
