// The trusted edge device (paper Section V-A).
//
// Serves nearby mobile users as a privacy firewall between them and the
// LBA ecosystem. For every LBA request the device:
//   1. records the raw check-in into the user's location-management state
//      (which periodically rebuilds the profile and top-location set);
//   2. decides whether the present location is one of the user's top
//      locations (within a match radius);
//   3. for a top location -- looks up / generates the PERMANENT candidate
//      set in the obfuscation table (n-fold Gaussian) and samples one
//      candidate with the posterior output-selection rule;
//   4. for a nomadic location -- applies one-time planar-Laplace geo-IND
//      (safe there: nomadic locations are rarely repeated, so composition
//      over them is not the threat);
//   5. after the ad network responds, filters the returned ads down to
//      those relevant to the user's TRUE location (inside the AOI),
//      saving client bandwidth.
//
// All per-user state lives in one columnar UserArena (core/user_arena.hpp)
// instead of per-user heap objects: profiles, top sets, obfuscation-table
// entries, candidate sets, and pending windows are contiguous SoA columns
// indexed through a compact user directory. Candidate sets are scored by
// the SIMD posterior kernel directly from the columns, and the whole
// device state round-trips through an mmap-backed snapshot file
// (save_snapshot / open_snapshot), so a million-user device loads in
// O(map), not O(parse).
//
// Determinism: each user's randomness is an independent engine split from
// the config seed by user id, so a user's served outputs depend only on
// (seed, user id, that user's request stream) -- identical across shard
// counts, request interleavings, and snapshot save/open cycles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "adnet/ad_network.hpp"
#include "core/location_management.hpp"
#include "core/profile_store.hpp"
#include "core/risk.hpp"
#include "core/table_store.hpp"
#include "core/telemetry.hpp"
#include "core/user_arena.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "lppm/accountant.hpp"
#include "lppm/gaussian.hpp"
#include "lppm/planar_laplace.hpp"
#include "obs/metrics.hpp"
#include "rng/engine.hpp"
#include "trace/check_in.hpp"
#include "util/status.hpp"

namespace privlocad::core {

/// The one validated aggregate configuring every edge flavour (EdgeDevice,
/// ConcurrentEdge, EdgeCluster cells, EdgePrivLocAd). Construction-time
/// knobs that used to travel as extra constructor parameters (seed, shard
/// count) live here, so every edge constructor takes exactly one config.
struct EdgeConfig {
  /// Permanent protection for top locations (the n-fold Gaussian).
  lppm::BoundedGeoIndParams top_params{};

  /// One-time geo-IND for nomadic locations (planar Laplace l/r).
  lppm::GeoIndParams nomadic_params{std::log(4.0), 200.0};

  /// Profile management (window length, eta, clustering threshold).
  LocationManagementConfig management{};

  /// A check-in within this distance of a known top location is treated
  /// as a visit to it.
  double top_match_radius_m = 100.0;

  /// Obfuscation-table entry matching radius (top-centroid drift bound).
  double table_match_radius_m = 100.0;

  /// Targeting radius R defining the AOI used for edge-side ad filtering.
  double targeting_radius_m = 5000.0;

  /// Seed for the per-user RNG streams (candidate noise, output
  /// selection, backoff jitter): user u's engine is split(seed, u), so
  /// every shard of a ConcurrentEdge shares the same seed and still
  /// serves each user an independent stream.
  std::uint64_t seed = 1;

  /// Internal device count of a ConcurrentEdge (>= 1); ignored by a
  /// standalone EdgeDevice.
  std::size_t shards = 16;

  /// Backoff policy for transient obfuscation-input faults in serve().
  fault::RetryPolicy retry{};

  /// Fault injector consulted by serve(); nullptr selects
  /// fault::FaultInjector::global() (configured from PRIVLOCAD_FAULTS).
  fault::FaultInjector* faults = nullptr;

  /// Throws util::InvalidArgument unless every field is in-domain
  /// (radii > 0, shards >= 1, management window/eta in-domain, retry
  /// policy valid, privacy params valid). Every edge constructor calls
  /// this.
  void validate() const;

  /// Fluent copies for call sites that tweak one knob:
  ///   EdgeDevice device(config().with_seed(42));
  EdgeConfig with_seed(std::uint64_t s) const {
    EdgeConfig copy = *this;
    copy.seed = s;
    return copy;
  }
  EdgeConfig with_shards(std::size_t n) const {
    EdgeConfig copy = *this;
    copy.shards = n;
    return copy;
  }
};

/// How a reported location was produced; exposed for tests and metrics.
enum class ReportKind { kTopLocation, kNomadic };

/// How one serve() call concluded. Every request ends in exactly one of
/// these -- serve() never throws.
enum class ServeOutcome {
  kServed,           ///< normal path, first attempt
  kServedAfterRetry, ///< normal path after >= 1 transient-fault retries
  kDegradedCached,   ///< obfuscation inputs down; replayed the frozen set
  kDegradedDropped,  ///< obfuscation inputs down, nothing cached: request
                     ///< dropped rather than released raw (fail private)
  kFailed,           ///< non-transient internal failure; nothing released
};

/// Human-readable outcome name ("served_after_retry", ...).
const char* serve_outcome_name(ServeOutcome outcome);

/// One in this many report_location calls is latency-timed (per device,
/// starting with the first). Reading the clock twice per request costs
/// more than the entire metrics write path, so serve-latency percentiles
/// come from a deterministic 1-in-16 systematic sample.
inline constexpr std::uint64_t kServeLatencySampleStride = 16;

struct ReportedLocation {
  geo::Point location;
  ReportKind kind;
};

/// The rich outcome of one serve() call. `reported` is meaningful only
/// when released() -- on a dropped/failed request nothing left the edge,
/// and `status` carries the cause.
struct ServeResult {
  ReportedLocation reported{};
  ServeOutcome outcome = ServeOutcome::kServed;
  util::Status status{};      ///< non-ok when degraded or failed
  std::uint32_t retries = 0;  ///< transient-fault retries performed

  /// True when an (always obfuscated) location was released.
  bool released() const {
    return outcome == ServeOutcome::kServed ||
           outcome == ServeOutcome::kServedAfterRetry ||
           outcome == ServeOutcome::kDegradedCached;
  }
  bool degraded() const {
    return outcome == ServeOutcome::kDegradedCached ||
           outcome == ServeOutcome::kDegradedDropped;
  }
};

class EdgeDevice {
 public:
  /// Owns a fresh metrics registry (standalone device). The config is
  /// validated here; seed, retry policy, and fault injector come from it.
  explicit EdgeDevice(EdgeConfig config);

  /// Records into `metrics` (non-null) instead of a private registry --
  /// how ConcurrentEdge shares one registry across its shards. The
  /// registry's counters are sharded atomics, so concurrent devices can
  /// share it safely.
  EdgeDevice(EdgeConfig config, std::shared_ptr<obs::MetricsRegistry> metrics);

  /// Steps 1-4 above, never throwing: returns the typed outcome of the
  /// request. On transient obfuscation-input faults it retries under the
  /// config's policy; once the budget is exhausted it degrades -- replays
  /// the user's frozen candidate set when one covers the matched top
  /// location, otherwise drops the request. In every path the released
  /// location (if any) is obfuscated; a raw coordinate never crosses this
  /// boundary ("fail private").
  ServeResult serve(std::uint64_t user_id, geo::Point true_location,
                    trace::Timestamp time);

  /// Legacy throwing wrapper around serve(): returns the released
  /// location, throwing util::StatusError when the request was degraded-
  /// dropped or failed (never happens with fault injection disabled).
  ReportedLocation report_location(std::uint64_t user_id,
                                   geo::Point true_location,
                                   trace::Timestamp time);

  /// Step 5: keeps only the ads whose business lies inside the AOI of the
  /// user's true location. Non-const: updates the filter telemetry.
  std::vector<adnet::Ad> filter_ads(const std::vector<adnet::Ad>& ads,
                                    geo::Point true_location);

  /// Bulk import of a user's history (e.g. on first registration), then a
  /// forced profile rebuild. Used by benches to reach steady state fast.
  void import_history(std::uint64_t user_id, const trace::UserTrace& trace);

  /// Personalized privacy (cf. the related work's per-user privacy
  /// preferences): future top-location obfuscations for `user_id` use a
  /// mechanism calibrated to `params` instead of the device default.
  /// Candidate sets that are ALREADY frozen keep their original noise --
  /// permanence wins; regenerating at a new level would leak a second
  /// independent draw of the same location.
  void set_user_privacy(std::uint64_t user_id,
                        lppm::BoundedGeoIndParams params);

  /// The parameters governing `user_id`'s future top-location releases.
  const lppm::BoundedGeoIndParams& user_privacy(std::uint64_t user_id);

  /// Pre-generates the permanent candidate sets for every current top
  /// location of `user_id` (Table II measures exactly this step).
  void prepare_obfuscation(std::uint64_t user_id);

  const std::vector<attack::ProfileEntry>& top_locations(
      std::uint64_t user_id);

  /// Copies every user's obfuscation table for persistence. Restarting a
  /// device WITHOUT restoring this state would regenerate fresh noise for
  /// known top locations -- a privacy leak; pair with restore_tables().
  /// (Binary alternative: save_snapshot persists the whole device state.)
  TableSnapshot snapshot_tables() const;

  /// Copies every user's profile + top-location set for persistence; a
  /// restarted device that restores these resumes top-location service
  /// immediately instead of serving nomadically for a whole window.
  ProfileSnapshot snapshot_profiles() const;

  /// Restores persisted profiles (startup flow). Throws if any restored
  /// user already has a live profile.
  void restore_profiles(const ProfileSnapshot& snapshot);

  /// Restores previously saved tables (startup flow). Throws
  /// util::InvalidArgument if any restored user already has table entries
  /// in this device.
  void restore_tables(TableSnapshot snapshot);

  // ------------------------------------------------------------ snapshots
  /// Persists the entire data plane (every user's profile, top set,
  /// frozen candidate sets, pending window, RNG stream, and personalized
  /// parameters) into one binary snapshot file (core/snapshot.hpp).
  /// Returns kIoError when the file cannot be written.
  util::Status save_snapshot(const std::string& path);

  /// Replaces this (empty) device's data plane with a mapped snapshot:
  /// the bulk columns are adopted from the read-only mapping in place, so
  /// opening is O(map + directory rebuild). Serving then resumes exactly
  /// where the saved device left off -- bit-identical outputs, because
  /// the per-user RNG streams are part of the snapshot. Returns
  /// kIoError / kParseError on damage, kFailedPrecondition when this
  /// device already holds users or the snapshot is multi-shard.
  util::Status open_snapshot(const std::string& path);

  /// Section-level halves of save/open, used by ConcurrentEdge to pack
  /// one section per shard into a single snapshot file.
  void write_snapshot_section(snapshot::Writer& writer);
  util::Status read_snapshot_section(snapshot::Reader& reader);

  /// Per-user privacy ledger: one charge per nomadic (one-time) release,
  /// one charge per permanent candidate-set generation. Replayed candidates
  /// are post-processing and are never charged.
  const lppm::PrivacyAccountant& accountant() const { return accountant_; }

  /// Snapshot of the operational counters since construction (a typed
  /// view over the metrics registry; see core/telemetry.hpp).
  EdgeTelemetry telemetry() const {
    return EdgeTelemetry::from_registry(*metrics_);
  }

  /// The registry this device records into: the edge_metrics counters
  /// plus the serve-latency histogram. Export with to_json()/to_string().
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Risk assessment for `user_id` from their current profile, lifetime
  /// check-in count, and privacy spend (paper Section I: the edge
  /// "assesses the risk of location privacy breaches").
  RiskAssessment assess_user_risk(std::uint64_t user_id,
                                  const RiskConfig& config = {});

  std::size_t user_count() const { return arena_.size(); }
  const EdgeConfig& config() const { return config_; }
  const lppm::NFoldGaussianMechanism& top_mechanism() const {
    return top_mechanism_;
  }

  /// Heap bytes owned by the data plane / bytes still served straight
  /// from a mapped snapshot (memory-footprint reporting).
  std::uint64_t data_plane_owned_bytes() const { return arena_.owned_bytes(); }
  std::uint64_t data_plane_mapped_bytes() const {
    return arena_.mapped_bytes();
  }

 private:
  /// The mechanism governing `row`'s top-location releases.
  const lppm::NFoldGaussianMechanism& mechanism_for(UserArena::Row row) const;

  /// The serving body behind serve()'s try/catch boundary.
  ServeResult serve_impl(std::uint64_t user_id, geo::Point true_location,
                         trace::Timestamp time);

  EdgeConfig config_;
  lppm::NFoldGaussianMechanism top_mechanism_;
  lppm::PlanarLaplaceMechanism nomadic_mechanism_;
  lppm::PrivacyAccountant accountant_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  /// The injector serve() consults (config's, or the process-global one).
  fault::FaultInjector* faults_;
  // Metric handles resolved once at construction so the serving hot path
  // never takes the registry's registration mutex.
  obs::Counter* top_reports_total_;
  obs::Counter* nomadic_reports_total_;
  obs::Counter* profile_rebuilds_total_;
  obs::Counter* tables_generated_total_;
  obs::Counter* ads_seen_total_;
  obs::Counter* ads_delivered_total_;
  obs::Counter* serve_retries_total_;
  obs::Counter* served_after_retry_total_;
  obs::Counter* degraded_cached_total_;
  obs::Counter* degraded_dropped_total_;
  obs::Counter* serve_failed_total_;
  obs::LatencyHistogram* serve_latency_;
  /// Plain counter driving the 1-in-N latency sample: EdgeDevice is
  /// externally synchronized (ConcurrentEdge calls under the shard lock),
  /// so no atomics are needed.
  std::uint64_t serve_calls_ = 0;
  /// The columnar per-user store (directory, profiles, tables, windows).
  UserArena arena_;
  /// Constructed mechanisms for users with personalized parameters (the
  /// parameters themselves live in the arena and persist with it).
  std::unordered_map<UserArena::Row, lppm::NFoldGaussianMechanism>
      custom_mechanisms_;
  /// Scratch backing top_locations()'s by-reference return.
  std::vector<attack::ProfileEntry> top_scratch_;
};

}  // namespace privlocad::core
