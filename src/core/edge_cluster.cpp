#include "core/edge_cluster.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::core {

EdgeCluster::EdgeCluster(EdgeClusterConfig config)
    : config_(config), seed_(config.edge.seed) {
  util::require_positive(config.cell_size_m, "edge cluster cell size");
  config_.edge.validate();
}

EdgeCluster::CellKey EdgeCluster::key_for(geo::Point location) const {
  const auto cx = static_cast<std::int32_t>(
      std::floor(location.x / config_.cell_size_m));
  const auto cy = static_cast<std::int32_t>(
      std::floor(location.y / config_.cell_size_m));
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

EdgeDevice& EdgeCluster::device_for(geo::Point location) {
  const CellKey key = key_for(location);
  auto it = devices_.find(key);
  if (it == devices_.end()) {
    // Each device gets its own deterministic seed derived from its cell.
    it = devices_
             .emplace(key,
                      std::make_unique<EdgeDevice>(config_.edge.with_seed(
                          seed_ ^ (key * 0x9E3779B97F4A7C15ULL))))
             .first;
  }
  return *it->second;
}

ServeResult EdgeCluster::serve(std::uint64_t user_id,
                               geo::Point true_location,
                               trace::Timestamp time) {
  ++served_[key_for(true_location)];
  return device_for(true_location).serve(user_id, true_location, time);
}

ReportedLocation EdgeCluster::report_location(std::uint64_t user_id,
                                              geo::Point true_location,
                                              trace::Timestamp time) {
  const ServeResult result = serve(user_id, true_location, time);
  if (!result.released()) throw util::StatusError(result.status);
  return result.reported;
}

std::vector<adnet::Ad> EdgeCluster::filter_ads(
    const std::vector<adnet::Ad>& ads, geo::Point true_location) const {
  const double r2 =
      config_.edge.targeting_radius_m * config_.edge.targeting_radius_m;
  std::vector<adnet::Ad> relevant;
  relevant.reserve(ads.size());
  for (const adnet::Ad& ad : ads) {
    if (geo::distance_squared(ad.business_location, true_location) <= r2) {
      relevant.push_back(ad);
    }
  }
  return relevant;
}

std::vector<EdgeCluster::CellLoad> EdgeCluster::cell_loads() const {
  std::vector<CellLoad> loads;
  loads.reserve(served_.size());
  for (const auto& [key, count] : served_) {
    CellLoad load;
    load.cx = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(key >> 32));
    load.cy = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(key & 0xFFFFFFFFULL));
    load.requests = count;
    loads.push_back(load);
  }
  std::sort(loads.begin(), loads.end(),
            [](const CellLoad& a, const CellLoad& b) {
              if (a.cx != b.cx) return a.cx < b.cx;
              return a.cy < b.cy;
            });
  return loads;
}

std::size_t EdgeCluster::requests_served(std::int32_t cx,
                                         std::int32_t cy) const {
  const CellKey key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  const auto it = served_.find(key);
  return it == served_.end() ? 0 : it->second;
}

}  // namespace privlocad::core
