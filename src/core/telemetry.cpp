#include "core/telemetry.hpp"

#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace privlocad::core {

EdgeTelemetry EdgeTelemetry::from_registry(
    const obs::MetricsRegistry& registry) {
  EdgeTelemetry t;
  t.top_reports = registry.counter_value(edge_metrics::kTopReports);
  t.nomadic_reports = registry.counter_value(edge_metrics::kNomadicReports);
  t.profile_rebuilds =
      registry.counter_value(edge_metrics::kProfileRebuilds);
  t.tables_generated =
      registry.counter_value(edge_metrics::kTablesGenerated);
  t.ads_seen = registry.counter_value(edge_metrics::kAdsSeen);
  t.ads_delivered = registry.counter_value(edge_metrics::kAdsDelivered);
  t.serve_retries = registry.counter_value(edge_metrics::kServeRetries);
  t.served_after_retry =
      registry.counter_value(edge_metrics::kServedAfterRetry);
  t.degraded_cached = registry.counter_value(edge_metrics::kDegradedCached);
  t.degraded_dropped =
      registry.counter_value(edge_metrics::kDegradedDropped);
  t.serve_failed = registry.counter_value(edge_metrics::kServeFailed);
  t.adnet_degraded = registry.counter_value(edge_metrics::kAdnetDegraded);
  // Every serve call lands in exactly one of these buckets; the degraded
  // cached path reuses the top-location candidate set but is tallied
  // separately, so the sum is exact.
  t.requests = t.top_reports + t.nomadic_reports + t.degraded_cached +
               t.degraded_dropped + t.serve_failed;
  return t;
}

double EdgeTelemetry::top_report_ratio() const {
  return requests == 0 ? 0.0
                       : static_cast<double>(top_reports) /
                             static_cast<double>(requests);
}

double EdgeTelemetry::filter_drop_ratio() const {
  return ads_seen == 0 ? 0.0
                       : 1.0 - static_cast<double>(ads_delivered) /
                                   static_cast<double>(ads_seen);
}

std::string EdgeTelemetry::to_string() const {
  std::string out;
  out += "requests          : " + std::to_string(requests) + "\n";
  out += "  top-location    : " + std::to_string(top_reports) + " (" +
         util::format_double(top_report_ratio() * 100.0, 1) + "%)\n";
  out += "  nomadic         : " + std::to_string(nomadic_reports) + "\n";
  out += "profile rebuilds  : " + std::to_string(profile_rebuilds) + "\n";
  out += "tables generated  : " + std::to_string(tables_generated) + "\n";
  out += "ads seen/delivered: " + std::to_string(ads_seen) + "/" +
         std::to_string(ads_delivered) + " (filter drops " +
         util::format_double(filter_drop_ratio() * 100.0, 1) + "%)\n";
  out += "serve retries     : " + std::to_string(serve_retries) + " (" +
         std::to_string(served_after_retry) + " requests recovered)\n";
  out += "degraded          : " + std::to_string(degraded_cached) +
         " cached, " + std::to_string(degraded_dropped) + " dropped\n";
  out += "failed            : " + std::to_string(serve_failed) +
         " serve, " + std::to_string(adnet_degraded) + " adnet-degraded\n";
  return out;
}

void EdgeTelemetry::merge(const EdgeTelemetry& other) {
  requests += other.requests;
  top_reports += other.top_reports;
  nomadic_reports += other.nomadic_reports;
  profile_rebuilds += other.profile_rebuilds;
  tables_generated += other.tables_generated;
  ads_seen += other.ads_seen;
  ads_delivered += other.ads_delivered;
  serve_retries += other.serve_retries;
  served_after_retry += other.served_after_retry;
  degraded_cached += other.degraded_cached;
  degraded_dropped += other.degraded_dropped;
  serve_failed += other.serve_failed;
  adnet_degraded += other.adnet_degraded;
}

}  // namespace privlocad::core
