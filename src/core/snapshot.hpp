// Versioned mmap-backed snapshot format for the columnar data plane.
//
// A snapshot is one file holding the full user-arena state of an edge
// (one section per shard). The layout is designed so that OPENING a
// snapshot is O(map + directory rebuild), not O(parse): every column is
// written as a contiguous 8-byte-aligned extent that the arena can adopt
// in place from the read-only mapping, with only the small mutable row
// scalars copied out. A 1M-user population therefore loads in fractions
// of a second instead of re-parsing gigabytes of CSV.
//
// File layout (all integers little-endian, host == file endianness is
// enforced by the endian tag):
//
//   [64-byte header]
//     u64 magic      "PLADSNAP"
//     u32 version    kFormatVersion
//     u32 endian     kEndianTag (0x01020304 as written by the host)
//     u32 shards     section count
//     u32 reserved   0
//     u64 payload    payload byte count (file size - header size)
//     u64 checksum   FNV-1a 64 over the payload bytes
//     (zero padding to 64 bytes)
//   [payload: `shards` back-to-back arena sections]
//
// Each section is a fixed sequence of scalars and columns (see
// user_arena.cpp); a column is `u64 count` followed by `count` raw
// elements padded to the next 8-byte boundary. Corruption anywhere --
// bad magic, version, endianness, truncation, checksum mismatch -- is
// reported as a typed util::Status (kParseError / kIoError), never a
// crash: per the fail-private contract a damaged snapshot must fail
// loudly at startup, not silently regenerate fresh noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.hpp"

namespace privlocad::core::snapshot {

/// "PLADSNAP" read as a little-endian u64.
inline constexpr std::uint64_t kMagic = 0x50414E5344414C50ULL;
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304;
inline constexpr std::size_t kHeaderBytes = 64;

/// FNV-1a 64 over `n` bytes, chained through `state` so the writer can
/// checksum streaming output without buffering the payload.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t state = kFnvOffsetBasis);

/// Streams one snapshot file: header placeholder first, then payload
/// writes that accumulate the running checksum, then finish() patches the
/// real header in place. Errors latch: after the first failure every
/// write is a no-op and finish() returns the latched status.
///
/// Crash safety: the stream goes to `path + ".tmp"`, and finish() only
/// renames it over `path` after the data has been fsync'ed -- so a crash
/// (or an abandoned Writer) at ANY point leaves either the old complete
/// file or no file at the final path, never a truncated hybrid. The
/// rename is followed by an fsync of the containing directory so the new
/// directory entry itself is durable. All I/O is raw-fd with EINTR and
/// short-write retry loops, and every ::close on this write path is
/// checked -- a close error is a late write error and fails the save.
class Writer {
 public:
  Writer(const std::string& path, std::uint32_t shard_count);
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  void write_u64(std::uint64_t value);

  /// One column: u64 count, `count` raw elements, zero padding to the
  /// next 8-byte boundary.
  template <typename T>
  void write_column(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "snapshot columns hold raw trivially-copyable elements");
    write_u64(count);
    write_bytes(data, count * sizeof(T));
    pad_to_alignment();
  }
  template <typename T>
  void write_column(const std::vector<T>& column) {
    write_column(column.data(), column.size());
  }

  /// Patches the header with the final payload size + checksum, fsyncs,
  /// and atomically renames the temp file over the target path. Returns
  /// the first error hit anywhere, if any; on error the temp file is
  /// unlinked and the target path is left untouched.
  util::Status finish();

  const util::Status& status() const { return status_; }

 private:
  void write_bytes(const void* data, std::size_t n);
  void pad_to_alignment();
  /// Drains the in-memory buffer to the temp fd (EINTR/short-write safe).
  void flush_buffer();
  /// Closes the temp fd (checked) and unlinks the temp file; used by the
  /// error paths and the abandoning destructor.
  void discard();

  int fd_ = -1;
  std::string path_;
  std::string tmp_path_;
  std::vector<std::uint8_t> buffer_;
  std::uint32_t shard_count_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t checksum_ = kFnvOffsetBasis;
  bool finished_ = false;
  util::Status status_;
};

/// RAII read-only mmap of a whole snapshot file. Shared by every arena
/// column that adopts an extent from it, so the mapping outlives the
/// opening scope for as long as any store still reads from it.
class Mapping {
 public:
  ~Mapping();
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;

  const std::uint8_t* data() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  friend util::Result<std::shared_ptr<Mapping>> map_file(
      const std::string& path);
  Mapping(const std::uint8_t* base, std::size_t size)
      : base_(base), size_(size) {}

  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
};

/// Maps `path` read-only; kIoError when it cannot be opened or mapped.
util::Result<std::shared_ptr<Mapping>> map_file(const std::string& path);

/// A validated, mapped snapshot: header checked (magic, version, endian,
/// size, checksum) and payload bounds resolved.
struct OpenedSnapshot {
  std::shared_ptr<Mapping> mapping;
  std::uint32_t shard_count = 0;
  std::uint64_t payload_offset = 0;
  std::uint64_t payload_end = 0;  ///< one past the last payload byte
};

/// Maps and validates `path`. kIoError when the file cannot be mapped;
/// kParseError for any structural damage (truncation, bad magic/version/
/// endianness, checksum mismatch).
util::Result<OpenedSnapshot> open_validated(const std::string& path);

/// Bounds-checked cursor over a mapped payload. read_column yields a
/// zero-copy pointer into the mapping (8-byte aligned by construction);
/// read_column_copy materializes the extent into an owned vector for the
/// columns that must stay mutable after open.
class Reader {
 public:
  Reader(std::shared_ptr<Mapping> mapping, std::uint64_t offset,
         std::uint64_t end)
      : mapping_(std::move(mapping)), offset_(offset), end_(end) {}

  util::Status read_u64(std::uint64_t& out);

  template <typename T>
  util::Status read_column(const T*& data, std::uint64_t& count) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "snapshot columns hold raw trivially-copyable elements");
    std::uint64_t n = 0;
    if (util::Status s = read_u64(n); !s.ok()) return s;
    const std::uint64_t bytes = n * sizeof(T);
    if (bytes / sizeof(T) != n || bytes > end_ - offset_) {
      return util::Status::parse_error(
          "snapshot column extent overruns the payload");
    }
    data = reinterpret_cast<const T*>(mapping_->data() + offset_);
    count = n;
    offset_ += bytes;
    offset_ = (offset_ + 7) & ~std::uint64_t{7};
    if (offset_ > end_) {
      return util::Status::parse_error(
          "snapshot column padding overruns the payload");
    }
    return util::Status();
  }

  template <typename T>
  util::Status read_column_copy(std::vector<T>& out) {
    const T* data = nullptr;
    std::uint64_t count = 0;
    if (util::Status s = read_column(data, count); !s.ok()) return s;
    out.assign(data, data + count);
    return util::Status();
  }

  std::uint64_t offset() const { return offset_; }
  std::uint64_t end() const { return end_; }
  const std::shared_ptr<Mapping>& mapping() const { return mapping_; }

 private:
  std::shared_ptr<Mapping> mapping_;
  std::uint64_t offset_ = 0;
  std::uint64_t end_ = 0;
};

}  // namespace privlocad::core::snapshot
