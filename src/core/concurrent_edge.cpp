#include "core/concurrent_edge.hpp"

#include <atomic>

#include "core/snapshot.hpp"
#include "par/parallel.hpp"
#include "util/timer.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

ConcurrentEdge::ConcurrentEdge(EdgeConfig config)
    : metrics_(std::make_shared<obs::MetricsRegistry>()) {
  config.validate();
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // Every shard gets the same seed: per-user streams are split from
    // (seed, user id) inside the device, so moving a user between shards
    // (resharding) cannot change their served outputs.
    shard->device = std::make_unique<EdgeDevice>(config, metrics_);
    shard->lock_acquisitions = &metrics_->counter(
        "edge.shard" + std::to_string(i) + ".lock_acquisitions");
    shards_.push_back(std::move(shard));
  }
}

ConcurrentEdge::Shard& ConcurrentEdge::shard_for(std::uint64_t user_id) {
  // Fibonacci-hash the user id so consecutive ids spread across shards.
  const std::uint64_t mixed = user_id * 0x9E3779B97F4A7C15ULL;
  return *shards_[mixed % shards_.size()];
}

const ConcurrentEdge::Shard& ConcurrentEdge::shard_for(
    std::uint64_t user_id) const {
  const std::uint64_t mixed = user_id * 0x9E3779B97F4A7C15ULL;
  return *shards_[mixed % shards_.size()];
}

ServeResult ConcurrentEdge::serve(std::uint64_t user_id,
                                  geo::Point true_location,
                                  trace::Timestamp time) {
  Shard& shard = shard_for(user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lock_count;
  return shard.device->serve(user_id, true_location, time);
}

ReportedLocation ConcurrentEdge::report_location(std::uint64_t user_id,
                                                 geo::Point true_location,
                                                 trace::Timestamp time) {
  const ServeResult result = serve(user_id, true_location, time);
  if (!result.released()) throw util::StatusError(result.status);
  return result.reported;
}

std::vector<adnet::Ad> ConcurrentEdge::filter_ads(
    std::uint64_t user_id, const std::vector<adnet::Ad>& ads,
    geo::Point true_location) {
  Shard& shard = shard_for(user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lock_count;
  return shard.device->filter_ads(ads, true_location);
}

void ConcurrentEdge::import_history(std::uint64_t user_id,
                                    const trace::UserTrace& trace) {
  Shard& shard = shard_for(user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lock_count;
  shard.device->import_history(user_id, trace);
}

BatchServeStats ConcurrentEdge::serve_trace_batch(
    const std::vector<trace::UserTrace>& traces, par::ThreadPool& pool) {
  const util::Timer timer;
  // One task per user keeps each trace time-ordered; different users hit
  // the shard mutexes concurrently, which is the contention pattern a live
  // deployment produces. serve() never throws, so under fault injection
  // the batch runs to completion and tallies per-outcome totals.
  std::atomic<std::size_t> served{0};
  std::atomic<std::size_t> served_after_retry{0};
  std::atomic<std::size_t> degraded_cached{0};
  std::atomic<std::size_t> degraded_dropped{0};
  std::atomic<std::size_t> failed{0};
  par::parallel_for(
      pool, 0, traces.size(), /*grain=*/1, [&](std::size_t i) {
        const trace::UserTrace& trace = traces[i];
        std::size_t ok = 0, after_retry = 0, cached = 0, dropped = 0,
                    errors = 0;
        for (const trace::CheckIn& c : trace.check_ins) {
          const ServeResult r = serve(trace.user_id, c.position, c.time);
          switch (r.outcome) {
            case ServeOutcome::kServed: ++ok; break;
            case ServeOutcome::kServedAfterRetry:
              ++ok;
              ++after_retry;
              break;
            case ServeOutcome::kDegradedCached: ++cached; break;
            case ServeOutcome::kDegradedDropped: ++dropped; break;
            case ServeOutcome::kFailed: ++errors; break;
          }
        }
        served.fetch_add(ok, std::memory_order_relaxed);
        served_after_retry.fetch_add(after_retry, std::memory_order_relaxed);
        degraded_cached.fetch_add(cached, std::memory_order_relaxed);
        degraded_dropped.fetch_add(dropped, std::memory_order_relaxed);
        failed.fetch_add(errors, std::memory_order_relaxed);
      });

  BatchServeStats stats;
  stats.users = traces.size();
  for (const trace::UserTrace& trace : traces) {
    stats.requests += trace.check_ins.size();
  }
  stats.served = served.load(std::memory_order_relaxed);
  stats.served_after_retry =
      served_after_retry.load(std::memory_order_relaxed);
  stats.degraded_cached = degraded_cached.load(std::memory_order_relaxed);
  stats.degraded_dropped = degraded_dropped.load(std::memory_order_relaxed);
  stats.failed = failed.load(std::memory_order_relaxed);
  stats.wall_seconds = timer.elapsed_seconds();
  // Publish the shard lock tallies and the pool's cumulative execution
  // counters next to the serving metrics so one registry dump shows both
  // sides of a batch run.
  publish_shard_counters();
  pool.export_metrics(*metrics_);
  return stats;
}

BatchServeStats ConcurrentEdge::serve_trace_batch(
    const std::vector<trace::UserTrace>& traces) {
  return serve_trace_batch(traces, par::ThreadPool::global());
}

util::Status ConcurrentEdge::save_snapshot(const std::string& path) {
  snapshot::Writer writer(path,
                          static_cast<std::uint32_t>(shards_.size()));
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    ++shard->lock_count;
    shard->device->write_snapshot_section(writer);
  }
  return writer.finish();
}

util::Status ConcurrentEdge::open_snapshot(const std::string& path) {
  util::Result<snapshot::OpenedSnapshot> opened =
      snapshot::open_validated(path);
  if (!opened.ok()) return opened.status();
  if (opened.value().shard_count != shards_.size()) {
    return util::Status::failed_precondition(
        "snapshot holds " + std::to_string(opened.value().shard_count) +
        " shard sections but this edge has " +
        std::to_string(shards_.size()) +
        " shards; open with a matching shard count: " + path);
  }
  snapshot::Reader reader(opened.value().mapping,
                          opened.value().payload_offset,
                          opened.value().payload_end);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    ++shard->lock_count;
    if (util::Status s = shard->device->read_snapshot_section(reader);
        !s.ok()) {
      return s;
    }
  }
  return util::Status();
}

void ConcurrentEdge::publish_shard_counters() const {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lock_acquisitions->add(shard->lock_count -
                                  shard->lock_count_published);
    shard->lock_count_published = shard->lock_count;
  }
}

EdgeTelemetry ConcurrentEdge::telemetry() const {
  // The edge_metrics counters live in the shared registry already; only
  // the shard lock tallies need a lock sweep to publish.
  publish_shard_counters();
  return EdgeTelemetry::from_registry(*metrics_);
}

std::size_t ConcurrentEdge::user_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->device->user_count();
  }
  return total;
}

}  // namespace privlocad::core
