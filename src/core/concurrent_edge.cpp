#include "core/concurrent_edge.hpp"

#include "par/parallel.hpp"
#include "util/timer.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

ConcurrentEdge::ConcurrentEdge(EdgeConfig config, std::size_t shards,
                               std::uint64_t seed)
    : metrics_(std::make_shared<obs::MetricsRegistry>()) {
  util::require(shards >= 1, "ConcurrentEdge needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->device = std::make_unique<EdgeDevice>(
        config, seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)), metrics_);
    shard->lock_acquisitions = &metrics_->counter(
        "edge.shard" + std::to_string(i) + ".lock_acquisitions");
    shards_.push_back(std::move(shard));
  }
}

ConcurrentEdge::Shard& ConcurrentEdge::shard_for(std::uint64_t user_id) {
  // Fibonacci-hash the user id so consecutive ids spread across shards.
  const std::uint64_t mixed = user_id * 0x9E3779B97F4A7C15ULL;
  return *shards_[mixed % shards_.size()];
}

const ConcurrentEdge::Shard& ConcurrentEdge::shard_for(
    std::uint64_t user_id) const {
  const std::uint64_t mixed = user_id * 0x9E3779B97F4A7C15ULL;
  return *shards_[mixed % shards_.size()];
}

ReportedLocation ConcurrentEdge::report_location(std::uint64_t user_id,
                                                 geo::Point true_location,
                                                 trace::Timestamp time) {
  Shard& shard = shard_for(user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lock_count;
  return shard.device->report_location(user_id, true_location, time);
}

std::vector<adnet::Ad> ConcurrentEdge::filter_ads(
    std::uint64_t user_id, const std::vector<adnet::Ad>& ads,
    geo::Point true_location) {
  Shard& shard = shard_for(user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lock_count;
  return shard.device->filter_ads(ads, true_location);
}

void ConcurrentEdge::import_history(std::uint64_t user_id,
                                    const trace::UserTrace& trace) {
  Shard& shard = shard_for(user_id);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.lock_count;
  shard.device->import_history(user_id, trace);
}

BatchServeStats ConcurrentEdge::serve_trace_batch(
    const std::vector<trace::UserTrace>& traces, par::ThreadPool& pool) {
  const util::Timer timer;
  // One task per user keeps each trace time-ordered; different users hit
  // the shard mutexes concurrently, which is the contention pattern a live
  // deployment produces.
  par::parallel_for(pool, 0, traces.size(), /*grain=*/1,
                    [&](std::size_t i) {
                      const trace::UserTrace& trace = traces[i];
                      for (const trace::CheckIn& c : trace.check_ins) {
                        report_location(trace.user_id, c.position, c.time);
                      }
                    });

  BatchServeStats stats;
  stats.users = traces.size();
  for (const trace::UserTrace& trace : traces) {
    stats.requests += trace.check_ins.size();
  }
  stats.wall_seconds = timer.elapsed_seconds();
  // Publish the shard lock tallies and the pool's cumulative execution
  // counters next to the serving metrics so one registry dump shows both
  // sides of a batch run.
  publish_shard_counters();
  pool.export_metrics(*metrics_);
  return stats;
}

BatchServeStats ConcurrentEdge::serve_trace_batch(
    const std::vector<trace::UserTrace>& traces) {
  return serve_trace_batch(traces, par::ThreadPool::global());
}

void ConcurrentEdge::publish_shard_counters() const {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lock_acquisitions->add(shard->lock_count -
                                  shard->lock_count_published);
    shard->lock_count_published = shard->lock_count;
  }
}

EdgeTelemetry ConcurrentEdge::telemetry() const {
  // The edge_metrics counters live in the shared registry already; only
  // the shard lock tallies need a lock sweep to publish.
  publish_shard_counters();
  return EdgeTelemetry::from_registry(*metrics_);
}

std::size_t ConcurrentEdge::user_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->device->user_count();
  }
  return total;
}

}  // namespace privlocad::core
