// Edge-device telemetry: the operational counters a deployment watches.
//
// The paper's scalability story (Tables II/III) is about edge devices
// serving tens of thousands of users; an operable implementation needs to
// see what those devices are doing: how many requests took the permanent
// top-location path vs. the nomadic path, how often profiles rebuilt, how
// much ad traffic the relevance filter absorbed. All counters are plain
// tallies (no sampling) and cheap enough to keep always-on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace privlocad::core {

struct EdgeTelemetry {
  std::size_t requests = 0;            ///< report_location calls
  std::size_t top_reports = 0;         ///< served from the frozen table
  std::size_t nomadic_reports = 0;     ///< served via one-time geo-IND
  std::size_t profile_rebuilds = 0;    ///< window-triggered rebuilds
  std::size_t tables_generated = 0;    ///< permanent candidate sets created
  std::size_t ads_seen = 0;            ///< ads entering the relevance filter
  std::size_t ads_delivered = 0;       ///< ads surviving the filter

  /// Fraction of requests answered from permanent candidates.
  double top_report_ratio() const;

  /// Fraction of matched ads dropped by the edge-side AOI filter --
  /// the bandwidth the edge saves the client.
  double filter_drop_ratio() const;

  /// Multi-line human-readable report for logs/dashboards.
  std::string to_string() const;

  /// Aggregates another device's counters (cluster-level rollup).
  void merge(const EdgeTelemetry& other);
};

}  // namespace privlocad::core
