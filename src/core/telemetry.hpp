// Edge-device telemetry: the operational counters a deployment watches.
//
// The paper's scalability story (Tables II/III) is about edge devices
// serving tens of thousands of users; an operable implementation needs to
// see what those devices are doing: how many requests took the permanent
// top-location path vs. the nomadic path, how often profiles rebuilt, how
// much ad traffic the relevance filter absorbed.
//
// Since PR 3 the live tallies are obs::MetricsRegistry counters (sharded
// relaxed atomics, named below), so they are thread-safe, exportable as
// JSON alongside the serve-latency histograms, and shared across the
// shards of one ConcurrentEdge. EdgeTelemetry is the typed snapshot VIEW
// over those counters: EdgeDevice::telemetry() materializes one via
// from_registry(), and value semantics (merge, ratios, to_string) keep
// working for cluster rollups and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace privlocad::obs {
class MetricsRegistry;
}

namespace privlocad::core {

/// Registry metric names the edge serving path records under. One shared
/// vocabulary so dashboards, benches, and EdgeTelemetry::from_registry
/// never drift apart.
namespace edge_metrics {
/// Every serve call ends in exactly one of the top/nomadic/degraded/failed
/// counters, so `requests` is derived as their sum at snapshot time
/// rather than paying an extra hot-path increment per request.
inline constexpr const char* kTopReports = "edge.reports.top";
inline constexpr const char* kNomadicReports = "edge.reports.nomadic";
inline constexpr const char* kProfileRebuilds = "edge.profile_rebuilds";
inline constexpr const char* kTablesGenerated = "edge.tables_generated";
inline constexpr const char* kAdsSeen = "edge.ads.seen";
inline constexpr const char* kAdsDelivered = "edge.ads.delivered";
/// Latency histogram (microseconds) around report_location.
inline constexpr const char* kServeLatencyUs = "edge.serve_latency_us";
/// Fault-tolerance counters (PR 5). Retries counts individual re-attempts
/// of the obfuscation-input acquisition; after_retry counts requests that
/// eventually served; degraded_* count the two fail-private fallbacks;
/// failed counts requests ending in an internal error (typed, not thrown).
inline constexpr const char* kServeRetries = "edge.serve.retries";
inline constexpr const char* kServedAfterRetry = "edge.serve.after_retry";
inline constexpr const char* kDegradedCached = "edge.serve.degraded_cached";
inline constexpr const char* kDegradedDropped =
    "edge.serve.degraded_dropped";
inline constexpr const char* kServeFailed = "edge.serve.failed";
/// Requests whose ad-exchange leg exhausted retries and degraded to an
/// empty ad list (the location report itself still succeeded).
inline constexpr const char* kAdnetDegraded = "edge.adnet.degraded";
}  // namespace edge_metrics

struct EdgeTelemetry {
  std::size_t requests = 0;            ///< serve calls (all outcomes)
  std::size_t top_reports = 0;         ///< served from the frozen table
  std::size_t nomadic_reports = 0;     ///< served via one-time geo-IND
  std::size_t profile_rebuilds = 0;    ///< window-triggered rebuilds
  std::size_t tables_generated = 0;    ///< permanent candidate sets created
  std::size_t ads_seen = 0;            ///< ads entering the relevance filter
  std::size_t ads_delivered = 0;       ///< ads surviving the filter
  std::size_t serve_retries = 0;       ///< individual serve re-attempts
  std::size_t served_after_retry = 0;  ///< served, but needed >=1 retry
  std::size_t degraded_cached = 0;     ///< served from frozen cache
  std::size_t degraded_dropped = 0;    ///< dropped rather than leak
  std::size_t serve_failed = 0;        ///< internal error, typed kFailed
  std::size_t adnet_degraded = 0;      ///< ad path degraded to empty

  /// Snapshot of the edge_metrics counters in `registry` (absent counters
  /// read as 0). This is how EdgeDevice/ConcurrentEdge::telemetry()
  /// produce the struct.
  static EdgeTelemetry from_registry(const obs::MetricsRegistry& registry);

  /// Fraction of requests answered from permanent candidates.
  double top_report_ratio() const;

  /// Fraction of matched ads dropped by the edge-side AOI filter --
  /// the bandwidth the edge saves the client.
  double filter_drop_ratio() const;

  /// Multi-line human-readable report for logs/dashboards.
  std::string to_string() const;

  /// Aggregates another device's counters (cluster-level rollup).
  void merge(const EdgeTelemetry& other);
};

}  // namespace privlocad::core
