// Multi-edge profile merging (paper Section V-B, last paragraph).
//
// A mobile user talks to whichever edge device is nearby, so each edge
// only records a LOCAL slice of the user's location profile. Before the
// obfuscation step the slices must be merged into one global profile. The
// paper notes the merge can run under secure multi-party computation;
// the cryptographic transport is orthogonal (and stated as such in the
// paper), so this module implements the merge logic itself: entries from
// different slices that refer to the same real-world location (within the
// profiling threshold) are coalesced with frequency-weighted centroids and
// summed frequencies.
#pragma once

#include <vector>

#include "attack/profile.hpp"

namespace privlocad::core {

/// Merges profile slices into one profile. Entries within `threshold_m`
/// of each other are treated as the same location: their frequencies add
/// and their coordinate becomes the frequency-weighted centroid. The
/// result is ordered heaviest-first like any profile. Merging an empty
/// list yields an empty profile.
attack::LocationProfile merge_profiles(
    const std::vector<attack::LocationProfile>& slices,
    double threshold_m = attack::kDefaultProfilingThresholdM);

}  // namespace privlocad::core
