#include "core/output_selection.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::core {

std::vector<double> selection_probabilities(
    const std::vector<geo::Point>& candidates, double sigma) {
  util::require(!candidates.empty(), "selection over empty candidate set");
  util::require_positive(sigma, "selection sigma");

  const geo::Point mean = geo::centroid(candidates);
  // The common 1/(2 pi sigma^2) factor cancels in the normalization; work
  // with the exponent only, shifted by the max for numerical stability.
  std::vector<double> log_density(candidates.size());
  double max_log = -1e300;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    log_density[i] = -geo::distance_squared(candidates[i], mean) /
                     (2.0 * sigma * sigma);
    max_log = std::max(max_log, log_density[i]);
  }

  std::vector<double> probs(candidates.size());
  double total = 0.0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    probs[i] = std::exp(log_density[i] - max_log);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

std::size_t select_candidate(rng::Engine& engine,
                             const std::vector<geo::Point>& candidates,
                             double sigma) {
  const std::vector<double> probs =
      selection_probabilities(candidates, sigma);
  double u = engine.uniform();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u <= 0.0) return i;
  }
  return probs.size() - 1;
}

std::size_t select_uniform(rng::Engine& engine,
                           const std::vector<geo::Point>& candidates) {
  util::require(!candidates.empty(), "selection over empty candidate set");
  return engine.uniform_index(candidates.size());
}

}  // namespace privlocad::core
