#include "core/output_selection.hpp"

#include <cmath>

#include "simd/kernels.hpp"
#include "simd/soa.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

std::vector<double> selection_probabilities(
    const std::vector<geo::Point>& candidates, double sigma) {
  util::require(!candidates.empty(), "selection over empty candidate set");
  util::require_positive(sigma, "selection sigma");

  const geo::Point mean = geo::centroid(candidates);
  // The common 1/(2 pi sigma^2) factor cancels in the normalization; work
  // with the exponent only, shifted by the max for numerical stability.
  // The squared-distance/score pass runs through the SIMD kernel layer
  // over an SoA view of the candidates (thread_local scratch: selection
  // is per-request, and steady state must not allocate); the kernel's
  // max reduction is order-independent, so scalar and AVX2 dispatch
  // yield bit-identical probabilities. The exp/sum normalization below
  // stays in scalar candidate order -- that summation order is part of
  // the determinism contract.
  const std::size_t n = candidates.size();
  thread_local simd::SoaPoints soa;
  thread_local std::vector<double> log_density;
  soa.assign(candidates);
  log_density.resize(n);
  const double max_log = simd::posterior_log_densities(
      soa.xs(), soa.ys(), n, mean.x, mean.y, 2.0 * sigma * sigma,
      log_density.data());

  std::vector<double> probs(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probs[i] = std::exp(log_density[i] - max_log);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
  return probs;
}

std::size_t select_candidate(rng::Engine& engine,
                             const std::vector<geo::Point>& candidates,
                             double sigma) {
  const std::vector<double> probs =
      selection_probabilities(candidates, sigma);
  double u = engine.uniform();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u <= 0.0) return i;
  }
  return probs.size() - 1;
}

std::size_t select_uniform(rng::Engine& engine,
                           const std::vector<geo::Point>& candidates) {
  util::require(!candidates.empty(), "selection over empty candidate set");
  return engine.uniform_index(candidates.size());
}

}  // namespace privlocad::core
