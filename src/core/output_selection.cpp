#include "core/output_selection.hpp"

#include <cmath>

#include "simd/kernels.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

namespace {

/// Centroid of an SoA span, bit-identical to geo::centroid over the same
/// points in the same order: Point accumulation keeps the x and y chains
/// independent, so summing each coordinate array in index order produces
/// the exact same rounding sequence.
geo::Point span_centroid(simd::PointSpan points) {
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < points.size; ++i) sx += points.xs[i];
  for (std::size_t i = 0; i < points.size; ++i) sy += points.ys[i];
  const auto count = static_cast<double>(points.size);
  return {sx / count, sy / count};
}

}  // namespace

void selection_probabilities_into(simd::PointSpan candidates, double sigma,
                                  std::vector<double>& probs) {
  util::require(candidates.size > 0, "selection over empty candidate set");
  util::require_positive(sigma, "selection sigma");

  const geo::Point mean = span_centroid(candidates);
  // The common 1/(2 pi sigma^2) factor cancels in the normalization; work
  // with the exponent only, shifted by the max for numerical stability.
  // The squared-distance/score pass runs through the SIMD kernel layer
  // directly over the caller's SoA columns (the arena's candidate store
  // is already columnar, so there is no conversion edge here); the
  // kernel's max reduction is order-independent, so scalar and AVX2
  // dispatch yield bit-identical probabilities. The exp/sum normalization
  // below stays in scalar candidate order -- that summation order is part
  // of the determinism contract.
  const std::size_t n = candidates.size;
  probs.resize(n);
  const double max_log = simd::posterior_log_densities(
      candidates.xs, candidates.ys, n, mean.x, mean.y,
      2.0 * sigma * sigma, probs.data());

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    probs[i] = std::exp(probs[i] - max_log);
    total += probs[i];
  }
  for (double& p : probs) p /= total;
}

std::vector<double> selection_probabilities(simd::PointSpan candidates,
                                            double sigma) {
  std::vector<double> probs;
  selection_probabilities_into(candidates, sigma, probs);
  return probs;
}

std::vector<double> selection_probabilities(
    const std::vector<geo::Point>& candidates, double sigma) {
  thread_local simd::SoaPoints soa;
  soa.assign(candidates);
  return selection_probabilities(soa.span(), sigma);
}

std::size_t select_candidate(rng::Engine& engine, simd::PointSpan candidates,
                             double sigma) {
  thread_local std::vector<double> probs;
  selection_probabilities_into(candidates, sigma, probs);
  double u = engine.uniform();
  for (std::size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u <= 0.0) return i;
  }
  return probs.size() - 1;
}

std::size_t select_candidate(rng::Engine& engine,
                             const std::vector<geo::Point>& candidates,
                             double sigma) {
  thread_local simd::SoaPoints soa;
  soa.assign(candidates);
  return select_candidate(engine, soa.span(), sigma);
}

std::size_t select_uniform(rng::Engine& engine,
                           const std::vector<geo::Point>& candidates) {
  util::require(!candidates.empty(), "selection over empty candidate set");
  return engine.uniform_index(candidates.size());
}

}  // namespace privlocad::core
