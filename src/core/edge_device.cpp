#include "core/edge_device.hpp"

#include "core/output_selection.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

EdgeDevice::EdgeDevice(EdgeConfig config, std::uint64_t seed)
    : EdgeDevice(config, seed, std::make_shared<obs::MetricsRegistry>()) {}

EdgeDevice::EdgeDevice(EdgeConfig config, std::uint64_t seed,
                       std::shared_ptr<obs::MetricsRegistry> metrics)
    : config_(config),
      top_mechanism_(config.top_params),
      nomadic_mechanism_(config.nomadic_params),
      engine_(seed),
      metrics_(std::move(metrics)) {
  util::require(metrics_ != nullptr, "EdgeDevice needs a metrics registry");
  top_reports_total_ = &metrics_->counter(edge_metrics::kTopReports);
  nomadic_reports_total_ =
      &metrics_->counter(edge_metrics::kNomadicReports);
  profile_rebuilds_total_ =
      &metrics_->counter(edge_metrics::kProfileRebuilds);
  tables_generated_total_ =
      &metrics_->counter(edge_metrics::kTablesGenerated);
  ads_seen_total_ = &metrics_->counter(edge_metrics::kAdsSeen);
  ads_delivered_total_ = &metrics_->counter(edge_metrics::kAdsDelivered);
  serve_latency_ = &metrics_->histogram(edge_metrics::kServeLatencyUs);
}

EdgeDevice::UserState& EdgeDevice::state_for(std::uint64_t user_id) {
  const auto it = users_.find(user_id);
  if (it != users_.end()) return it->second;
  return users_
      .emplace(std::piecewise_construct, std::forward_as_tuple(user_id),
               std::forward_as_tuple(config_.management,
                                     config_.table_match_radius_m))
      .first->second;
}

const attack::ProfileEntry* EdgeDevice::matching_top(
    const UserState& state, geo::Point location) const {
  const attack::ProfileEntry* best = nullptr;
  double best_distance = config_.top_match_radius_m;
  for (const attack::ProfileEntry& entry : state.manager.top_locations()) {
    const double d = geo::distance(entry.location, location);
    if (d <= best_distance) {
      best = &entry;
      best_distance = d;
    }
  }
  return best;
}

ReportedLocation EdgeDevice::report_location(std::uint64_t user_id,
                                             geo::Point true_location,
                                             trace::Timestamp time) {
  const bool time_this_call =
      serve_calls_++ % kServeLatencySampleStride == 0;
  const obs::ScopedLatencyTimer latency_timer(
      time_this_call ? serve_latency_ : nullptr);
  UserState& state = state_for(user_id);
  if (state.manager.record(true_location, time)) {
    profile_rebuilds_total_->add();
  }

  if (const attack::ProfileEntry* top = matching_top(state, true_location)) {
    const lppm::NFoldGaussianMechanism& mechanism = mechanism_for(state);
    const std::size_t entries_before = state.table.size();
    const std::vector<geo::Point>& candidates =
        state.table.candidates_for(engine_, mechanism, top->location);
    if (state.table.size() > entries_before) {
      // First sight of this top location: the only moment privacy is
      // actually spent on it. Every later request replays the set.
      accountant_.record(user_id, {mechanism.params().epsilon,
                                   mechanism.params().delta});
      tables_generated_total_->add();
    }
    const std::size_t chosen = select_candidate(
        engine_, candidates, mechanism.posterior_sigma());
    top_reports_total_->add();
    return {candidates[chosen], ReportKind::kTopLocation};
  }

  // Nomadic path: every release is an independent one-time charge at the
  // planar-Laplace level (eps = l, pure DP-style: delta = 0).
  accountant_.record(user_id, {config_.nomadic_params.level, 0.0});
  nomadic_reports_total_->add();
  return {nomadic_mechanism_.obfuscate_one(engine_, true_location),
          ReportKind::kNomadic};
}

std::vector<adnet::Ad> EdgeDevice::filter_ads(
    const std::vector<adnet::Ad>& ads, geo::Point true_location) {
  const double r2 = config_.targeting_radius_m * config_.targeting_radius_m;
  std::vector<adnet::Ad> relevant;
  relevant.reserve(ads.size());
  for (const adnet::Ad& ad : ads) {
    if (geo::distance_squared(ad.business_location, true_location) <= r2) {
      relevant.push_back(ad);
    }
  }
  ads_seen_total_->add(ads.size());
  ads_delivered_total_->add(relevant.size());
  return relevant;
}

void EdgeDevice::import_history(std::uint64_t user_id,
                                const trace::UserTrace& trace) {
  UserState& state = state_for(user_id);
  for (const trace::CheckIn& c : trace.check_ins) {
    state.manager.record(c.position, c.time);
  }
  state.manager.rebuild_now();
}

void EdgeDevice::prepare_obfuscation(std::uint64_t user_id) {
  UserState& state = state_for(user_id);
  const lppm::NFoldGaussianMechanism& mechanism = mechanism_for(state);
  for (const attack::ProfileEntry& top : state.manager.top_locations()) {
    const std::size_t entries_before = state.table.size();
    state.table.candidates_for(engine_, mechanism, top.location);
    if (state.table.size() > entries_before) {
      accountant_.record(user_id, {mechanism.params().epsilon,
                                   mechanism.params().delta});
      tables_generated_total_->add();
    }
  }
}

const lppm::NFoldGaussianMechanism& EdgeDevice::mechanism_for(
    const UserState& state) const {
  return state.custom_mechanism ? *state.custom_mechanism : top_mechanism_;
}

void EdgeDevice::set_user_privacy(std::uint64_t user_id,
                                  lppm::BoundedGeoIndParams params) {
  params.validate();
  state_for(user_id).custom_mechanism.emplace(params);
}

const lppm::BoundedGeoIndParams& EdgeDevice::user_privacy(
    std::uint64_t user_id) {
  return mechanism_for(state_for(user_id)).params();
}

TableSnapshot EdgeDevice::snapshot_tables() const {
  TableSnapshot snapshot;
  for (const auto& [user_id, state] : users_) {
    if (state.table.size() == 0) continue;
    ObfuscationTable copy(config_.table_match_radius_m);
    for (const ObfuscationTable::Entry& entry : state.table.entries()) {
      copy.restore(entry);
    }
    snapshot.emplace(user_id, std::move(copy));
  }
  return snapshot;
}

ProfileSnapshot EdgeDevice::snapshot_profiles() const {
  ProfileSnapshot snapshot;
  for (const auto& [user_id, state] : users_) {
    if (!state.manager.profile().has_value()) continue;
    StoredProfile stored;
    stored.profile = *state.manager.profile();
    // Recover which profile entries form the top set (they are copies of
    // profile entries, so match on location + frequency).
    const auto& entries = stored.profile.entries();
    for (const attack::ProfileEntry& top : state.manager.top_locations()) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].frequency == top.frequency &&
            geo::distance(entries[i].location, top.location) < 1e-9) {
          stored.top_indices.push_back(i);
          break;
        }
      }
    }
    snapshot.emplace(user_id, std::move(stored));
  }
  return snapshot;
}

void EdgeDevice::restore_profiles(const ProfileSnapshot& snapshot) {
  for (const auto& [user_id, stored] : snapshot) {
    UserState& state = state_for(user_id);
    std::vector<attack::ProfileEntry> top;
    top.reserve(stored.top_indices.size());
    for (const std::size_t index : stored.top_indices) {
      util::require(index < stored.profile.size(),
                    "restored top index out of range");
      top.push_back(stored.profile.entries()[index]);
    }
    state.manager.restore(stored.profile, std::move(top));
  }
}

void EdgeDevice::restore_tables(TableSnapshot snapshot) {
  for (auto& [user_id, table] : snapshot) {
    UserState& state = state_for(user_id);
    util::require(state.table.size() == 0,
                  "cannot restore tables over a user with live entries");
    state.table = std::move(table);
  }
}

const std::vector<attack::ProfileEntry>& EdgeDevice::top_locations(
    std::uint64_t user_id) {
  return state_for(user_id).manager.top_locations();
}

RiskAssessment EdgeDevice::assess_user_risk(std::uint64_t user_id,
                                            const RiskConfig& config) {
  const UserState& state = state_for(user_id);
  static const attack::LocationProfile kEmptyProfile;
  const attack::LocationProfile& profile =
      state.manager.profile() ? *state.manager.profile() : kEmptyProfile;
  return assess_risk(profile, state.manager.total_check_ins(),
                     accountant_.spend_for(user_id), config);
}

}  // namespace privlocad::core
