#include "core/edge_device.hpp"

#include "core/output_selection.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

void EdgeConfig::validate() const {
  util::require_positive(top_match_radius_m, "top_match_radius_m");
  util::require_positive(table_match_radius_m, "table_match_radius_m");
  util::require_positive(targeting_radius_m, "targeting_radius_m");
  util::require(shards >= 1, "EdgeConfig.shards must be >= 1");
  top_params.validate();
  util::require_positive(nomadic_params.level, "nomadic_params.level");
  util::require_positive(nomadic_params.radius_m, "nomadic_params.radius_m");
  retry.validate();
}

const char* serve_outcome_name(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kServed: return "served";
    case ServeOutcome::kServedAfterRetry: return "served_after_retry";
    case ServeOutcome::kDegradedCached: return "degraded_cached";
    case ServeOutcome::kDegradedDropped: return "degraded_dropped";
    case ServeOutcome::kFailed: return "failed";
  }
  return "unknown";
}

EdgeDevice::EdgeDevice(EdgeConfig config)
    : EdgeDevice(config, std::make_shared<obs::MetricsRegistry>()) {}

EdgeDevice::EdgeDevice(EdgeConfig config,
                       std::shared_ptr<obs::MetricsRegistry> metrics)
    : config_(config),
      top_mechanism_(config.top_params),
      nomadic_mechanism_(config.nomadic_params),
      engine_(config.seed),
      metrics_(std::move(metrics)),
      faults_(config.faults != nullptr ? config.faults
                                       : &fault::FaultInjector::global()) {
  config_.validate();
  util::require(metrics_ != nullptr, "EdgeDevice needs a metrics registry");
  top_reports_total_ = &metrics_->counter(edge_metrics::kTopReports);
  nomadic_reports_total_ =
      &metrics_->counter(edge_metrics::kNomadicReports);
  profile_rebuilds_total_ =
      &metrics_->counter(edge_metrics::kProfileRebuilds);
  tables_generated_total_ =
      &metrics_->counter(edge_metrics::kTablesGenerated);
  ads_seen_total_ = &metrics_->counter(edge_metrics::kAdsSeen);
  ads_delivered_total_ = &metrics_->counter(edge_metrics::kAdsDelivered);
  serve_retries_total_ = &metrics_->counter(edge_metrics::kServeRetries);
  served_after_retry_total_ =
      &metrics_->counter(edge_metrics::kServedAfterRetry);
  degraded_cached_total_ =
      &metrics_->counter(edge_metrics::kDegradedCached);
  degraded_dropped_total_ =
      &metrics_->counter(edge_metrics::kDegradedDropped);
  serve_failed_total_ = &metrics_->counter(edge_metrics::kServeFailed);
  serve_latency_ = &metrics_->histogram(edge_metrics::kServeLatencyUs);
}

// Deprecated forwarding constructors (kept for one release); suppress the
// self-referential deprecation warnings their definitions would emit.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
EdgeDevice::EdgeDevice(EdgeConfig config, std::uint64_t seed)
    : EdgeDevice(config.with_seed(seed)) {}

EdgeDevice::EdgeDevice(EdgeConfig config, std::uint64_t seed,
                       std::shared_ptr<obs::MetricsRegistry> metrics)
    : EdgeDevice(config.with_seed(seed), std::move(metrics)) {}
#pragma GCC diagnostic pop

EdgeDevice::UserState& EdgeDevice::state_for(std::uint64_t user_id) {
  const auto it = users_.find(user_id);
  if (it != users_.end()) return it->second;
  return users_
      .emplace(std::piecewise_construct, std::forward_as_tuple(user_id),
               std::forward_as_tuple(config_.management,
                                     config_.table_match_radius_m))
      .first->second;
}

const attack::ProfileEntry* EdgeDevice::matching_top(
    const UserState& state, geo::Point location) const {
  const attack::ProfileEntry* best = nullptr;
  double best_distance = config_.top_match_radius_m;
  for (const attack::ProfileEntry& entry : state.manager.top_locations()) {
    const double d = geo::distance(entry.location, location);
    if (d <= best_distance) {
      best = &entry;
      best_distance = d;
    }
  }
  return best;
}

ServeResult EdgeDevice::serve(std::uint64_t user_id,
                              geo::Point true_location,
                              trace::Timestamp time) {
  // The no-throw boundary: whatever breaks inside, the caller gets a
  // typed outcome and nothing unobfuscated has left the device (the raw
  // location is only ever released through a mechanism).
  try {
    return serve_impl(user_id, true_location, time);
  } catch (const std::exception& error) {
    serve_failed_total_->add();
    ServeResult failed;
    failed.outcome = ServeOutcome::kFailed;
    failed.status = util::status_from_exception(error);
    return failed;
  }
}

ServeResult EdgeDevice::serve_impl(std::uint64_t user_id,
                                   geo::Point true_location,
                                   trace::Timestamp time) {
  const bool time_this_call =
      serve_calls_++ % kServeLatencySampleStride == 0;
  const obs::ScopedLatencyTimer latency_timer(
      time_this_call ? serve_latency_ : nullptr);
  UserState& state = state_for(user_id);
  if (state.manager.record(true_location, time)) {
    profile_rebuilds_total_->add();
  }
  const attack::ProfileEntry* top = matching_top(state, true_location);

  // Acquire the obfuscation inputs (mechanism/noise backend). This is the
  // serve-path fault seam: transient failures are retried with capped
  // exponential backoff; a disabled injector reduces the whole block to
  // one branch.
  ServeResult result;
  util::Status inputs = util::Status();
  if (faults_->enabled()) {
    std::size_t retries = 0;
    inputs = fault::retry_with_backoff(
        config_.retry, engine_,
        [this] { return faults_->check(fault::Site::kServe); }, &retries);
    result.retries = static_cast<std::uint32_t>(retries);
    if (retries > 0) serve_retries_total_->add(retries);
  }

  if (!inputs.ok()) {
    // Degraded serving: obfuscation inputs are down. The frozen candidate
    // set (if this top location already has one) is pure post-processing
    // -- replaying it needs no fresh noise and spends no privacy -- so it
    // is the safe fallback. Without one, the request is dropped: a raw
    // location is never a fallback ("fail private").
    result.status = inputs;
    if (top != nullptr) {
      if (const std::optional<std::vector<geo::Point>> cached =
              state.table.lookup(top->location)) {
        const std::size_t chosen = select_candidate(
            engine_, *cached, mechanism_for(state).posterior_sigma());
        degraded_cached_total_->add();
        result.outcome = ServeOutcome::kDegradedCached;
        result.reported = {(*cached)[chosen], ReportKind::kTopLocation};
        return result;
      }
    }
    degraded_dropped_total_->add();
    result.outcome = ServeOutcome::kDegradedDropped;
    return result;
  }
  result.outcome = result.retries > 0 ? ServeOutcome::kServedAfterRetry
                                      : ServeOutcome::kServed;
  if (result.retries > 0) served_after_retry_total_->add();

  if (top != nullptr) {
    const lppm::NFoldGaussianMechanism& mechanism = mechanism_for(state);
    const std::size_t entries_before = state.table.size();
    const std::vector<geo::Point>& candidates =
        state.table.candidates_for(engine_, mechanism, top->location);
    if (state.table.size() > entries_before) {
      // First sight of this top location: the only moment privacy is
      // actually spent on it. Every later request replays the set.
      accountant_.record(user_id, {mechanism.params().epsilon,
                                   mechanism.params().delta});
      tables_generated_total_->add();
    }
    const std::size_t chosen = select_candidate(
        engine_, candidates, mechanism.posterior_sigma());
    top_reports_total_->add();
    result.reported = {candidates[chosen], ReportKind::kTopLocation};
    return result;
  }

  // Nomadic path: every release is an independent one-time charge at the
  // planar-Laplace level (eps = l, pure DP-style: delta = 0).
  accountant_.record(user_id, {config_.nomadic_params.level, 0.0});
  nomadic_reports_total_->add();
  result.reported = {nomadic_mechanism_.obfuscate_one(engine_, true_location),
                     ReportKind::kNomadic};
  return result;
}

ReportedLocation EdgeDevice::report_location(std::uint64_t user_id,
                                             geo::Point true_location,
                                             trace::Timestamp time) {
  const ServeResult result = serve(user_id, true_location, time);
  if (!result.released()) throw util::StatusError(result.status);
  return result.reported;
}

std::vector<adnet::Ad> EdgeDevice::filter_ads(
    const std::vector<adnet::Ad>& ads, geo::Point true_location) {
  const double r2 = config_.targeting_radius_m * config_.targeting_radius_m;
  std::vector<adnet::Ad> relevant;
  relevant.reserve(ads.size());
  for (const adnet::Ad& ad : ads) {
    if (geo::distance_squared(ad.business_location, true_location) <= r2) {
      relevant.push_back(ad);
    }
  }
  ads_seen_total_->add(ads.size());
  ads_delivered_total_->add(relevant.size());
  return relevant;
}

void EdgeDevice::import_history(std::uint64_t user_id,
                                const trace::UserTrace& trace) {
  UserState& state = state_for(user_id);
  for (const trace::CheckIn& c : trace.check_ins) {
    state.manager.record(c.position, c.time);
  }
  state.manager.rebuild_now();
}

void EdgeDevice::prepare_obfuscation(std::uint64_t user_id) {
  UserState& state = state_for(user_id);
  const lppm::NFoldGaussianMechanism& mechanism = mechanism_for(state);
  for (const attack::ProfileEntry& top : state.manager.top_locations()) {
    const std::size_t entries_before = state.table.size();
    state.table.candidates_for(engine_, mechanism, top.location);
    if (state.table.size() > entries_before) {
      accountant_.record(user_id, {mechanism.params().epsilon,
                                   mechanism.params().delta});
      tables_generated_total_->add();
    }
  }
}

const lppm::NFoldGaussianMechanism& EdgeDevice::mechanism_for(
    const UserState& state) const {
  return state.custom_mechanism ? *state.custom_mechanism : top_mechanism_;
}

void EdgeDevice::set_user_privacy(std::uint64_t user_id,
                                  lppm::BoundedGeoIndParams params) {
  params.validate();
  state_for(user_id).custom_mechanism.emplace(params);
}

const lppm::BoundedGeoIndParams& EdgeDevice::user_privacy(
    std::uint64_t user_id) {
  return mechanism_for(state_for(user_id)).params();
}

TableSnapshot EdgeDevice::snapshot_tables() const {
  TableSnapshot snapshot;
  for (const auto& [user_id, state] : users_) {
    if (state.table.size() == 0) continue;
    ObfuscationTable copy(config_.table_match_radius_m);
    for (const ObfuscationTable::Entry& entry : state.table.entries()) {
      copy.restore(entry);
    }
    snapshot.emplace(user_id, std::move(copy));
  }
  return snapshot;
}

ProfileSnapshot EdgeDevice::snapshot_profiles() const {
  ProfileSnapshot snapshot;
  for (const auto& [user_id, state] : users_) {
    if (!state.manager.profile().has_value()) continue;
    StoredProfile stored;
    stored.profile = *state.manager.profile();
    // Recover which profile entries form the top set (they are copies of
    // profile entries, so match on location + frequency).
    const auto& entries = stored.profile.entries();
    for (const attack::ProfileEntry& top : state.manager.top_locations()) {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].frequency == top.frequency &&
            geo::distance(entries[i].location, top.location) < 1e-9) {
          stored.top_indices.push_back(i);
          break;
        }
      }
    }
    snapshot.emplace(user_id, std::move(stored));
  }
  return snapshot;
}

void EdgeDevice::restore_profiles(const ProfileSnapshot& snapshot) {
  for (const auto& [user_id, stored] : snapshot) {
    UserState& state = state_for(user_id);
    std::vector<attack::ProfileEntry> top;
    top.reserve(stored.top_indices.size());
    for (const std::size_t index : stored.top_indices) {
      util::require(index < stored.profile.size(),
                    "restored top index out of range");
      top.push_back(stored.profile.entries()[index]);
    }
    state.manager.restore(stored.profile, std::move(top));
  }
}

void EdgeDevice::restore_tables(TableSnapshot snapshot) {
  for (auto& [user_id, table] : snapshot) {
    UserState& state = state_for(user_id);
    util::require(state.table.size() == 0,
                  "cannot restore tables over a user with live entries");
    state.table = std::move(table);
  }
}

const std::vector<attack::ProfileEntry>& EdgeDevice::top_locations(
    std::uint64_t user_id) {
  return state_for(user_id).manager.top_locations();
}

RiskAssessment EdgeDevice::assess_user_risk(std::uint64_t user_id,
                                            const RiskConfig& config) {
  const UserState& state = state_for(user_id);
  static const attack::LocationProfile kEmptyProfile;
  const attack::LocationProfile& profile =
      state.manager.profile() ? *state.manager.profile() : kEmptyProfile;
  return assess_risk(profile, state.manager.total_check_ins(),
                     accountant_.spend_for(user_id), config);
}

}  // namespace privlocad::core
