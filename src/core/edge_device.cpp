#include "core/edge_device.hpp"

#include "core/output_selection.hpp"
#include "core/snapshot.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

void EdgeConfig::validate() const {
  util::require_positive(top_match_radius_m, "top_match_radius_m");
  util::require_positive(table_match_radius_m, "table_match_radius_m");
  util::require_positive(targeting_radius_m, "targeting_radius_m");
  util::require(shards >= 1, "EdgeConfig.shards must be >= 1");
  top_params.validate();
  util::require_positive(nomadic_params.level, "nomadic_params.level");
  util::require_positive(nomadic_params.radius_m, "nomadic_params.radius_m");
  util::require(management.window_seconds > 0, "window_seconds must be > 0");
  util::require_positive(management.profiling_threshold_m,
                         "profiling threshold");
  util::require(
      management.eta_fraction > 0.0 && management.eta_fraction <= 1.0,
      "eta_fraction must be in (0, 1]");
  retry.validate();
}

const char* serve_outcome_name(ServeOutcome outcome) {
  switch (outcome) {
    case ServeOutcome::kServed: return "served";
    case ServeOutcome::kServedAfterRetry: return "served_after_retry";
    case ServeOutcome::kDegradedCached: return "degraded_cached";
    case ServeOutcome::kDegradedDropped: return "degraded_dropped";
    case ServeOutcome::kFailed: return "failed";
  }
  return "unknown";
}

EdgeDevice::EdgeDevice(EdgeConfig config)
    : EdgeDevice(config, std::make_shared<obs::MetricsRegistry>()) {}

EdgeDevice::EdgeDevice(EdgeConfig config,
                       std::shared_ptr<obs::MetricsRegistry> metrics)
    : config_(config),
      top_mechanism_(config.top_params),
      nomadic_mechanism_(config.nomadic_params),
      metrics_(std::move(metrics)),
      faults_(config.faults != nullptr ? config.faults
                                       : &fault::FaultInjector::global()),
      arena_(rng::Engine(config.seed)) {
  config_.validate();
  util::require(metrics_ != nullptr, "EdgeDevice needs a metrics registry");
  top_reports_total_ = &metrics_->counter(edge_metrics::kTopReports);
  nomadic_reports_total_ =
      &metrics_->counter(edge_metrics::kNomadicReports);
  profile_rebuilds_total_ =
      &metrics_->counter(edge_metrics::kProfileRebuilds);
  tables_generated_total_ =
      &metrics_->counter(edge_metrics::kTablesGenerated);
  ads_seen_total_ = &metrics_->counter(edge_metrics::kAdsSeen);
  ads_delivered_total_ = &metrics_->counter(edge_metrics::kAdsDelivered);
  serve_retries_total_ = &metrics_->counter(edge_metrics::kServeRetries);
  served_after_retry_total_ =
      &metrics_->counter(edge_metrics::kServedAfterRetry);
  degraded_cached_total_ =
      &metrics_->counter(edge_metrics::kDegradedCached);
  degraded_dropped_total_ =
      &metrics_->counter(edge_metrics::kDegradedDropped);
  serve_failed_total_ = &metrics_->counter(edge_metrics::kServeFailed);
  serve_latency_ = &metrics_->histogram(edge_metrics::kServeLatencyUs);
}

ServeResult EdgeDevice::serve(std::uint64_t user_id,
                              geo::Point true_location,
                              trace::Timestamp time) {
  // The no-throw boundary: whatever breaks inside, the caller gets a
  // typed outcome and nothing unobfuscated has left the device (the raw
  // location is only ever released through a mechanism).
  try {
    return serve_impl(user_id, true_location, time);
  } catch (const std::exception& error) {
    serve_failed_total_->add();
    ServeResult failed;
    failed.outcome = ServeOutcome::kFailed;
    failed.status = util::status_from_exception(error);
    return failed;
  }
}

ServeResult EdgeDevice::serve_impl(std::uint64_t user_id,
                                   geo::Point true_location,
                                   trace::Timestamp time) {
  const bool time_this_call =
      serve_calls_++ % kServeLatencySampleStride == 0;
  const obs::ScopedLatencyTimer latency_timer(
      time_this_call ? serve_latency_ : nullptr);
  const UserArena::Row row = arena_.find_or_create(user_id);
  if (arena_.record(row, true_location, time, config_.management)) {
    profile_rebuilds_total_->add();
  }
  const std::int64_t top =
      arena_.matching_top(row, true_location, config_.top_match_radius_m);
  // Row creation is done for this request, so the reference stays valid
  // across every arena call below (compaction never moves row scalars).
  rng::Engine& engine = arena_.engine(row);

  // Acquire the obfuscation inputs (mechanism/noise backend). This is the
  // serve-path fault seam: transient failures are retried with capped
  // exponential backoff; a disabled injector reduces the whole block to
  // one branch.
  ServeResult result;
  util::Status inputs = util::Status();
  if (faults_->enabled()) {
    std::size_t retries = 0;
    inputs = fault::retry_with_backoff(
        config_.retry, engine,
        [this] { return faults_->check(fault::Site::kServe); }, &retries);
    result.retries = static_cast<std::uint32_t>(retries);
    if (retries > 0) serve_retries_total_->add(retries);
  }

  if (!inputs.ok()) {
    // Degraded serving: obfuscation inputs are down. The frozen candidate
    // set (if this top location already has one) is pure post-processing
    // -- replaying it needs no fresh noise and spends no privacy -- so it
    // is the safe fallback. Without one, the request is dropped: a raw
    // location is never a fallback ("fail private").
    result.status = inputs;
    if (top >= 0) {
      const geo::Point top_location = arena_.top_entry(row, top).location;
      const std::int64_t entry = arena_.find_entry(
          row, top_location, config_.table_match_radius_m);
      if (entry >= 0) {
        const simd::PointSpan cached = arena_.entry_candidates(row, entry);
        const std::size_t chosen = select_candidate(
            engine, cached, mechanism_for(row).posterior_sigma());
        degraded_cached_total_->add();
        result.outcome = ServeOutcome::kDegradedCached;
        result.reported = {{cached.xs[chosen], cached.ys[chosen]},
                           ReportKind::kTopLocation};
        return result;
      }
    }
    degraded_dropped_total_->add();
    result.outcome = ServeOutcome::kDegradedDropped;
    return result;
  }
  result.outcome = result.retries > 0 ? ServeOutcome::kServedAfterRetry
                                      : ServeOutcome::kServed;
  if (result.retries > 0) served_after_retry_total_->add();

  if (top >= 0) {
    const lppm::NFoldGaussianMechanism& mechanism = mechanism_for(row);
    const geo::Point top_location = arena_.top_entry(row, top).location;
    std::int64_t entry = arena_.find_entry(row, top_location,
                                           config_.table_match_radius_m);
    if (entry < 0) {
      // First sight of this top location: the only moment privacy is
      // actually spent on it. Every later request replays the set.
      entry = static_cast<std::int64_t>(
          arena_.add_entry(row, top_location, mechanism, engine));
      accountant_.record(user_id, {mechanism.params().epsilon,
                                   mechanism.params().delta});
      tables_generated_total_->add();
    }
    // Fetch the span only after add_entry: appending may compact columns.
    const simd::PointSpan candidates = arena_.entry_candidates(row, entry);
    const std::size_t chosen =
        select_candidate(engine, candidates, mechanism.posterior_sigma());
    top_reports_total_->add();
    result.reported = {{candidates.xs[chosen], candidates.ys[chosen]},
                       ReportKind::kTopLocation};
    return result;
  }

  // Nomadic path: every release is an independent one-time charge at the
  // planar-Laplace level (eps = l, pure DP-style: delta = 0).
  accountant_.record(user_id, {config_.nomadic_params.level, 0.0});
  nomadic_reports_total_->add();
  result.reported = {nomadic_mechanism_.obfuscate_one(engine, true_location),
                     ReportKind::kNomadic};
  return result;
}

ReportedLocation EdgeDevice::report_location(std::uint64_t user_id,
                                             geo::Point true_location,
                                             trace::Timestamp time) {
  const ServeResult result = serve(user_id, true_location, time);
  if (!result.released()) throw util::StatusError(result.status);
  return result.reported;
}

std::vector<adnet::Ad> EdgeDevice::filter_ads(
    const std::vector<adnet::Ad>& ads, geo::Point true_location) {
  const double r2 = config_.targeting_radius_m * config_.targeting_radius_m;
  std::vector<adnet::Ad> relevant;
  relevant.reserve(ads.size());
  for (const adnet::Ad& ad : ads) {
    if (geo::distance_squared(ad.business_location, true_location) <= r2) {
      relevant.push_back(ad);
    }
  }
  ads_seen_total_->add(ads.size());
  ads_delivered_total_->add(relevant.size());
  return relevant;
}

void EdgeDevice::import_history(std::uint64_t user_id,
                                const trace::UserTrace& trace) {
  const UserArena::Row row = arena_.find_or_create(user_id);
  for (const trace::CheckIn& c : trace.check_ins) {
    // Window-boundary rebuilds during a bulk import are bookkeeping, not
    // live traffic; like the legacy path they do not count in telemetry.
    (void)arena_.record(row, c.position, c.time, config_.management);
  }
  arena_.rebuild_now(row, config_.management);
}

void EdgeDevice::prepare_obfuscation(std::uint64_t user_id) {
  const UserArena::Row row = arena_.find_or_create(user_id);
  const lppm::NFoldGaussianMechanism& mechanism = mechanism_for(row);
  const std::size_t tops = arena_.top_size(row);
  for (std::size_t i = 0; i < tops; ++i) {
    const geo::Point top_location = arena_.top_entry(row, i).location;
    if (arena_.find_entry(row, top_location, config_.table_match_radius_m) >=
        0) {
      continue;
    }
    arena_.add_entry(row, top_location, mechanism, arena_.engine(row));
    accountant_.record(user_id, {mechanism.params().epsilon,
                                 mechanism.params().delta});
    tables_generated_total_->add();
  }
}

const lppm::NFoldGaussianMechanism& EdgeDevice::mechanism_for(
    UserArena::Row row) const {
  const auto it = custom_mechanisms_.find(row);
  return it != custom_mechanisms_.end() ? it->second : top_mechanism_;
}

void EdgeDevice::set_user_privacy(std::uint64_t user_id,
                                  lppm::BoundedGeoIndParams params) {
  params.validate();
  const UserArena::Row row = arena_.find_or_create(user_id);
  arena_.set_custom_params(row, params);
  custom_mechanisms_.insert_or_assign(row,
                                      lppm::NFoldGaussianMechanism(params));
}

const lppm::BoundedGeoIndParams& EdgeDevice::user_privacy(
    std::uint64_t user_id) {
  return mechanism_for(arena_.find_or_create(user_id)).params();
}

TableSnapshot EdgeDevice::snapshot_tables() const {
  TableSnapshot snapshot;
  for (UserArena::Row row = 0; row < arena_.size(); ++row) {
    const std::size_t entries = arena_.entry_count(row);
    if (entries == 0) continue;
    ObfuscationTable copy(config_.table_match_radius_m);
    for (std::size_t i = 0; i < entries; ++i) {
      ObfuscationTable::Entry entry;
      entry.top_location = arena_.entry_top(row, i);
      const simd::PointSpan span = arena_.entry_candidates(row, i);
      entry.candidates.reserve(span.size);
      for (std::size_t c = 0; c < span.size; ++c) {
        entry.candidates.push_back({span.xs[c], span.ys[c]});
      }
      copy.restore(std::move(entry));
    }
    snapshot.emplace(arena_.user_id(row), std::move(copy));
  }
  return snapshot;
}

ProfileSnapshot EdgeDevice::snapshot_profiles() const {
  ProfileSnapshot snapshot;
  for (UserArena::Row row = 0; row < arena_.size(); ++row) {
    if (!arena_.has_profile(row)) continue;
    StoredProfile stored;
    stored.profile = arena_.profile_of(row);
    const std::size_t tops = arena_.top_size(row);
    stored.top_indices.reserve(tops);
    for (std::size_t i = 0; i < tops; ++i) {
      stored.top_indices.push_back(arena_.top_index(row, i));
    }
    snapshot.emplace(arena_.user_id(row), std::move(stored));
  }
  return snapshot;
}

void EdgeDevice::restore_profiles(const ProfileSnapshot& snapshot) {
  for (const auto& [user_id, stored] : snapshot) {
    const UserArena::Row row = arena_.find_or_create(user_id);
    arena_.restore_profile(row, stored.profile, stored.top_indices);
  }
}

void EdgeDevice::restore_tables(TableSnapshot snapshot) {
  for (auto& [user_id, table] : snapshot) {
    const UserArena::Row row = arena_.find_or_create(user_id);
    util::require(arena_.entry_count(row) == 0,
                  "cannot restore tables over a user with live entries");
    for (const ObfuscationTable::Entry& entry : table.entries()) {
      arena_.restore_entry(row, entry.top_location, entry.candidates,
                           config_.table_match_radius_m);
    }
  }
}

util::Status EdgeDevice::save_snapshot(const std::string& path) {
  snapshot::Writer writer(path, 1);
  write_snapshot_section(writer);
  return writer.finish();
}

util::Status EdgeDevice::open_snapshot(const std::string& path) {
  util::Result<snapshot::OpenedSnapshot> opened =
      snapshot::open_validated(path);
  if (!opened.ok()) return opened.status();
  if (opened.value().shard_count != 1) {
    return util::Status::failed_precondition(
        "snapshot holds " + std::to_string(opened.value().shard_count) +
        " shard sections; a standalone EdgeDevice opens single-shard "
        "snapshots (use ConcurrentEdge): " + path);
  }
  snapshot::Reader reader(opened.value().mapping,
                          opened.value().payload_offset,
                          opened.value().payload_end);
  return read_snapshot_section(reader);
}

void EdgeDevice::write_snapshot_section(snapshot::Writer& writer) {
  arena_.save(writer);
}

util::Status EdgeDevice::read_snapshot_section(snapshot::Reader& reader) {
  if (arena_.size() != 0) {
    return util::Status::failed_precondition(
        "cannot open a snapshot into a device that already holds users");
  }
  if (util::Status s = arena_.load(reader); !s.ok()) return s;
  custom_mechanisms_.clear();
  for (const auto& [row, params] : arena_.all_custom_params()) {
    custom_mechanisms_.emplace(row, lppm::NFoldGaussianMechanism(params));
  }
  return util::Status();
}

const std::vector<attack::ProfileEntry>& EdgeDevice::top_locations(
    std::uint64_t user_id) {
  const UserArena::Row row = arena_.find_or_create(user_id);
  const std::size_t tops = arena_.top_size(row);
  top_scratch_.clear();
  top_scratch_.reserve(tops);
  for (std::size_t i = 0; i < tops; ++i) {
    top_scratch_.push_back(arena_.top_entry(row, i));
  }
  return top_scratch_;
}

RiskAssessment EdgeDevice::assess_user_risk(std::uint64_t user_id,
                                            const RiskConfig& config) {
  const UserArena::Row row = arena_.find_or_create(user_id);
  const attack::LocationProfile profile =
      arena_.has_profile(row) ? arena_.profile_of(row)
                              : attack::LocationProfile();
  return assess_risk(profile, arena_.total_check_ins(row),
                     accountant_.spend_for(user_id), config);
}

}  // namespace privlocad::core
