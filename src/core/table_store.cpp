#include "core/table_store.hpp"

#include <fstream>
#include <ostream>

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

const std::vector<std::string> kHeader{
    "user_id", "entry_index", "top_x", "top_y",
    "cand_index", "cand_x", "cand_y"};

}  // namespace

void save_tables(std::ostream& out, const TableSnapshot& tables) {
  util::CsvWriter writer(out, kHeader);
  for (const auto& [user_id, table] : tables) {
    const auto& entries = table.entries();
    for (std::size_t e = 0; e < entries.size(); ++e) {
      for (std::size_t c = 0; c < entries[e].candidates.size(); ++c) {
        writer.write_row({std::to_string(user_id), std::to_string(e),
                          util::format_double(entries[e].top_location.x, 6),
                          util::format_double(entries[e].top_location.y, 6),
                          std::to_string(c),
                          util::format_double(entries[e].candidates[c].x, 6),
                          util::format_double(entries[e].candidates[c].y, 6)});
      }
    }
  }
}

TableSnapshot load_tables(std::istream& in, double match_radius_m) {
  const util::CsvTable csv = util::read_csv(in);
  if (!csv.header.empty()) {
    util::require(csv.header == kHeader,
                  "obfuscation table file has an unexpected header");
  }

  // Group rows into (user, entry) -> candidate list, validating that
  // candidate indices arrive contiguously per entry.
  struct PendingEntry {
    geo::Point top;
    std::vector<geo::Point> candidates;
  };
  std::map<std::uint64_t, std::map<std::uint64_t, PendingEntry>> grouped;

  for (const auto& row : csv.rows) {
    const auto user = static_cast<std::uint64_t>(util::parse_int(row[0]));
    const auto entry = static_cast<std::uint64_t>(util::parse_int(row[1]));
    const geo::Point top{util::parse_double(row[2]),
                         util::parse_double(row[3])};
    const auto cand = static_cast<std::uint64_t>(util::parse_int(row[4]));
    const geo::Point candidate{util::parse_double(row[5]),
                               util::parse_double(row[6])};

    PendingEntry& pending = grouped[user][entry];
    if (pending.candidates.empty()) {
      pending.top = top;
    } else {
      util::require(pending.top == top,
                    "obfuscation table entry has inconsistent top location");
    }
    util::require(cand == pending.candidates.size(),
                  "obfuscation table candidates are out of order");
    pending.candidates.push_back(candidate);
  }

  TableSnapshot tables;
  for (auto& [user, entries] : grouped) {
    ObfuscationTable table(match_radius_m);
    std::uint64_t expected_index = 0;
    for (auto& [index, pending] : entries) {
      util::require(index == expected_index++,
                    "obfuscation table entries are out of order");
      table.restore({pending.top, std::move(pending.candidates)});
    }
    tables.emplace(user, std::move(table));
  }
  return tables;
}

void save_tables_file(const std::string& path, const TableSnapshot& tables) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  save_tables(out, tables);
}

TableSnapshot load_tables_file(const std::string& path,
                               double match_radius_m) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open for reading: " + path);
  return load_tables(in, match_radius_m);
}

util::Result<TableSnapshot> try_load_tables_file(
    const std::string& path, double match_radius_m,
    const fault::RetryPolicy& policy, fault::FaultInjector* faults) {
  fault::FaultInjector& injector =
      faults != nullptr ? *faults : fault::FaultInjector::global();
  // Fixed-seed local engine: backoff jitter stays reproducible and leaves
  // every serving RNG untouched.
  rng::Engine backoff_engine(0x7AB1E5ULL);
  return fault::retry_with_backoff(
      policy, backoff_engine, [&]() -> util::Result<TableSnapshot> {
        if (injector.enabled()) {
          const util::Status s = injector.check(fault::Site::kTableStore);
          if (!s.ok()) return s;
        }
        try {
          return load_tables_file(path, match_radius_m);
        } catch (const std::exception& error) {
          return util::status_from_exception(error);
        }
      });
}

util::Status try_save_tables_file(const std::string& path,
                                  const TableSnapshot& tables,
                                  const fault::RetryPolicy& policy,
                                  fault::FaultInjector* faults) {
  fault::FaultInjector& injector =
      faults != nullptr ? *faults : fault::FaultInjector::global();
  rng::Engine backoff_engine(0x7AB1E5ULL);
  return fault::retry_with_backoff(
      policy, backoff_engine, [&]() -> util::Status {
        if (injector.enabled()) {
          const util::Status s = injector.check(fault::Site::kTableStore);
          if (!s.ok()) return s;
        }
        try {
          save_tables_file(path, tables);
          return util::Status();
        } catch (const std::exception& error) {
          return util::status_from_exception(error);
        }
      });
}

}  // namespace privlocad::core
