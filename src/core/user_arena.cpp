#include "core/user_arena.hpp"

#include <algorithm>

#include "core/eta_frequent.hpp"
#include "core/snapshot.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

namespace {

// The snapshot serializes engines as raw bytes; the format (and the
// split-stream determinism story) depends on this staying a small POD.
static_assert(std::is_trivially_copyable_v<rng::Engine>,
              "rng::Engine must serialize as raw bytes");
static_assert(std::is_trivially_copyable_v<lppm::BoundedGeoIndParams>,
              "custom privacy params must serialize as raw bytes");

/// Marks the start of one arena section inside a snapshot payload
/// ("USERARNA" little-endian) -- a cheap misalignment tripwire when a
/// future format revision changes the section sequence.
constexpr std::uint64_t kSectionTag = 0x414E52415245'5355ULL;

std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::uint64_t hash_user(std::uint64_t user_id) {
  return user_id * 0x9E3779B97F4A7C15ULL;
}

}  // namespace

UserArena::UserArena(rng::Engine parent) : parent_(parent) {}

// ----------------------------------------------------------------- directory

UserArena::Row UserArena::find(std::uint64_t user_id) const {
  if (directory_.empty()) return kNoRow;
  std::uint64_t slot = hash_user(user_id) & directory_mask_;
  while (true) {
    const Row row = directory_[slot];
    if (row == kNoRow) return kNoRow;
    if (user_ids_[row] == user_id) return row;
    slot = (slot + 1) & directory_mask_;
  }
}

void UserArena::insert_into_directory(Row row) {
  std::uint64_t slot = hash_user(user_ids_[row]) & directory_mask_;
  while (directory_[slot] != kNoRow) slot = (slot + 1) & directory_mask_;
  directory_[slot] = row;
}

void UserArena::grow_directory(std::size_t min_rows) {
  // Keep load factor <= 0.5 so linear probes stay short.
  const std::uint64_t capacity =
      next_pow2(std::max<std::uint64_t>(16, 2 * min_rows));
  directory_.assign(capacity, kNoRow);
  directory_mask_ = capacity - 1;
  for (Row row = 0; row < user_ids_.size(); ++row) {
    insert_into_directory(row);
  }
}

UserArena::Row UserArena::find_or_create(std::uint64_t user_id) {
  const Row existing = find(user_id);
  if (existing != kNoRow) return existing;
  if (2 * (user_ids_.size() + 1) > directory_.size()) {
    grow_directory(user_ids_.size() + 1);
  }
  const Row row = static_cast<Row>(user_ids_.size());
  user_ids_.push_back(user_id);
  engines_.push_back(parent_.split(user_id));
  window_start_.push_back(kNoWindowStart);
  total_check_ins_.push_back(0);
  win_head_.push_back(kNoIndex);
  win_count_.push_back(0);
  has_profile_.push_back(0);
  prof_begin_.push_back(0);
  prof_count_.push_back(0);
  top_begin_.push_back(0);
  top_count_.push_back(0);
  ent_begin_.push_back(0);
  ent_count_.push_back(0);
  insert_into_directory(row);
  return row;
}

// ------------------------------------------------------- window / management

bool UserArena::record(Row row, geo::Point position, trace::Timestamp time,
                       const LocationManagementConfig& config) {
  bool rebuilt = false;
  if (window_start_[row] == kNoWindowStart) {
    window_start_[row] = time;
  } else if (time - window_start_[row] >= config.window_seconds &&
             win_count_[row] >= config.min_window_check_ins) {
    rebuild_now(row, config);
    window_start_[row] = time;
    rebuilt = true;
  }
  const auto index = static_cast<std::uint32_t>(win_xs_.size());
  win_xs_.push_back(position.x);
  win_ys_.push_back(position.y);
  win_ts_.push_back(time);
  win_prev_.push_back(win_head_[row]);
  win_head_[row] = index;
  ++win_count_[row];
  ++total_check_ins_[row];
  return rebuilt;
}

void UserArena::gather_window(Row row) {
  scratch_points_.resize(win_count_[row]);
  // The chain links newest-first; fill back-to-front so the scratch is
  // chronological, matching the legacy window_points_ insertion order.
  std::size_t out = win_count_[row];
  for (std::uint32_t i = win_head_[row]; i != kNoIndex; i = win_prev_[i]) {
    scratch_points_[--out] = {win_xs_[i], win_ys_[i]};
  }
  assert(out == 0 && "window chain shorter than its count");
}

void UserArena::clear_window(Row row) {
  win_dead_ += win_count_[row];
  win_head_[row] = kNoIndex;
  win_count_[row] = 0;
}

void UserArena::rebuild_now(Row row, const LocationManagementConfig& config) {
  // The window restarts at the next recorded check-in (legacy semantics:
  // a bulk import followed by live traffic must not immediately rebuild
  // from a nearly-empty window).
  window_start_[row] = kNoWindowStart;
  if (win_count_[row] == 0) return;
  gather_window(row);
  const attack::LocationProfile profile =
      attack::build_profile(scratch_points_, config.profiling_threshold_m);

  std::vector<attack::ProfileEntry> top =
      eta_frequent_set_fraction(profile, config.eta_fraction);
  std::erase_if(top, [&](const attack::ProfileEntry& e) {
    return e.frequency < config.min_top_frequency;
  });
  // The eta set is a prefix of the frequency-ordered profile, and the
  // min-frequency filter removes a suffix of that prefix, so the top set
  // is exactly the first top.size() profile entries.
  set_rebuilt_profile(row, profile.entries(), top.size());
  clear_window(row);
  maybe_compact();
}

void UserArena::set_rebuilt_profile(
    Row row, const std::vector<attack::ProfileEntry>& entries,
    std::size_t top_prefix) {
  prof_dead_ += prof_count_[row];
  top_dead_ += top_count_[row];
  prof_begin_[row] = prof_xs_.size();
  prof_count_[row] = static_cast<std::uint32_t>(entries.size());
  for (const attack::ProfileEntry& e : entries) {
    prof_xs_.push_back(e.location.x);
    prof_ys_.push_back(e.location.y);
    prof_freq_.push_back(e.frequency);
  }
  top_begin_[row] = top_idx_.size();
  top_count_[row] = static_cast<std::uint32_t>(top_prefix);
  for (std::size_t i = 0; i < top_prefix; ++i) {
    top_idx_.push_back(static_cast<std::uint32_t>(i));
  }
  has_profile_[row] = 1;
}

void UserArena::restore_profile(Row row,
                                const attack::LocationProfile& profile,
                                const std::vector<std::size_t>& top_indices) {
  if (has_profile_[row] != 0) {
    throw util::PreconditionViolation(
        "cannot restore a profile over live management state");
  }
  for (const std::size_t index : top_indices) {
    util::require(index < profile.size(), "restored top index out of range");
  }
  prof_begin_[row] = prof_xs_.size();
  prof_count_[row] = static_cast<std::uint32_t>(profile.size());
  for (const attack::ProfileEntry& e : profile.entries()) {
    prof_xs_.push_back(e.location.x);
    prof_ys_.push_back(e.location.y);
    prof_freq_.push_back(e.frequency);
  }
  top_begin_[row] = top_idx_.size();
  top_count_[row] = static_cast<std::uint32_t>(top_indices.size());
  for (const std::size_t index : top_indices) {
    top_idx_.push_back(static_cast<std::uint32_t>(index));
  }
  has_profile_[row] = 1;
}

attack::ProfileEntry UserArena::profile_entry(Row row, std::size_t i) const {
  assert(i < prof_count_[row]);
  const std::size_t at = prof_begin_[row] + i;
  return {{prof_xs_[at], prof_ys_[at]}, prof_freq_[at]};
}

attack::LocationProfile UserArena::profile_of(Row row) const {
  std::vector<attack::ProfileEntry> entries;
  entries.reserve(prof_count_[row]);
  for (std::size_t i = 0; i < prof_count_[row]; ++i) {
    entries.push_back(profile_entry(row, i));
  }
  return attack::LocationProfile(std::move(entries));
}

std::uint32_t UserArena::top_index(Row row, std::size_t i) const {
  assert(i < top_count_[row]);
  return top_idx_[top_begin_[row] + i];
}

attack::ProfileEntry UserArena::top_entry(Row row, std::size_t i) const {
  return profile_entry(row, top_index(row, i));
}

std::int64_t UserArena::matching_top(Row row, geo::Point location,
                                     double radius_m) const {
  std::int64_t best = -1;
  double best_distance = radius_m;
  const std::uint32_t count = top_count_[row];
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = prof_begin_[row] + top_idx_[top_begin_[row] + i];
    const double d =
        geo::distance({prof_xs_[at], prof_ys_[at]}, location);
    if (d <= best_distance) {
      best = i;
      best_distance = d;
    }
  }
  return best;
}

// --------------------------------------------------------- table entries

geo::Point UserArena::entry_top(Row row, std::size_t i) const {
  assert(i < ent_count_[row]);
  const std::size_t at = ent_begin_[row] + i;
  return {ent_xs_[at], ent_ys_[at]};
}

simd::PointSpan UserArena::entry_candidates(Row row, std::size_t i) const {
  assert(i < ent_count_[row]);
  const std::size_t at = ent_begin_[row] + i;
  const std::uint64_t begin = ent_cand_begin_[at];
  const std::uint32_t count = ent_cand_count_[at];
  return {cand_xs_.range(begin, count), cand_ys_.range(begin, count), count};
}

std::int64_t UserArena::find_entry(Row row, geo::Point location,
                                   double radius_m) const {
  std::int64_t best = -1;
  double best_distance = radius_m;
  const std::uint32_t count = ent_count_[row];
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t at = ent_begin_[row] + i;
    const double d = geo::distance({ent_xs_[at], ent_ys_[at]}, location);
    if (d <= best_distance) {
      best = i;
      best_distance = d;
    }
  }
  return best;
}

void UserArena::append_entry(Row row, geo::Point top,
                             std::uint64_t cand_begin,
                             std::uint32_t cand_count) {
  const std::uint32_t count = ent_count_[row];
  const std::uint64_t begin = ent_begin_[row];
  if (count > 0 && begin + count != ent_xs_.size()) {
    // Copy-forward: the row's entries are not at the column end, so move
    // them there (insertion order preserved) and orphan the old range.
    // Candidate ranges travel by reference -- candidate data is immutable
    // and never orphaned.
    const std::uint64_t moved = ent_xs_.size();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::size_t at = begin + i;
      ent_xs_.push_back(ent_xs_[at]);
      ent_ys_.push_back(ent_ys_[at]);
      ent_cand_begin_.push_back(ent_cand_begin_[at]);
      ent_cand_count_.push_back(ent_cand_count_[at]);
    }
    ent_dead_ += count;
    ent_begin_[row] = moved;
  } else if (count == 0) {
    ent_begin_[row] = ent_xs_.size();
  }
  ent_xs_.push_back(top.x);
  ent_ys_.push_back(top.y);
  ent_cand_begin_.push_back(cand_begin);
  ent_cand_count_.push_back(cand_count);
  ++ent_count_[row];
}

std::size_t UserArena::add_entry(Row row, geo::Point top,
                                 const lppm::Mechanism& mechanism,
                                 rng::Engine& engine) {
  // Same draw order as the legacy ObfuscationTable: candidates are
  // generated in one batched mechanism release.
  scratch_points_.clear();
  mechanism.obfuscate_into(engine, top, scratch_points_);
  const std::uint64_t cand_begin = cand_xs_.size();
  for (const geo::Point p : scratch_points_) {
    cand_xs_.push_back(p.x);
    cand_ys_.push_back(p.y);
  }
  append_entry(row, top,
               cand_begin, static_cast<std::uint32_t>(scratch_points_.size()));
  maybe_compact();
  return ent_count_[row] - 1;
}

void UserArena::restore_entry(Row row, geo::Point top,
                              const std::vector<geo::Point>& candidates,
                              double radius_m) {
  util::require(!candidates.empty(), "restored entry must have candidates");
  util::require(find_entry(row, top, radius_m) < 0,
                "restored entry collides with an existing table entry");
  const std::uint64_t cand_begin = cand_xs_.size();
  for (const geo::Point p : candidates) {
    cand_xs_.push_back(p.x);
    cand_ys_.push_back(p.y);
  }
  append_entry(row, top, cand_begin,
               static_cast<std::uint32_t>(candidates.size()));
  maybe_compact();
}

// -------------------------------------------------------------- compaction

namespace {
/// Compaction pays one full rewrite; only worth it past this floor.
constexpr std::uint64_t kMinDeadForCompaction = 4096;

bool garbage_dominates(std::uint64_t dead, std::uint64_t total) {
  return dead >= kMinDeadForCompaction && 2 * dead > total;
}
}  // namespace

void UserArena::maybe_compact() {
  if (garbage_dominates(prof_dead_, prof_xs_.size()) ||
      garbage_dominates(top_dead_, top_idx_.size()) ||
      garbage_dominates(ent_dead_, ent_xs_.size())) {
    compact_frozen();
  }
  if (garbage_dominates(win_dead_, win_xs_.size())) {
    compact_window();
  }
}

void UserArena::compact_frozen() {
  const std::size_t rows = user_ids_.size();
  std::vector<double> new_prof_xs, new_prof_ys, new_ent_xs, new_ent_ys,
      new_cand_xs, new_cand_ys;
  std::vector<std::uint64_t> new_prof_freq, new_cand_begin;
  std::vector<std::uint32_t> new_top_idx, new_cand_count;
  new_prof_xs.reserve(prof_xs_.size() - prof_dead_);
  new_prof_ys.reserve(prof_xs_.size() - prof_dead_);
  new_prof_freq.reserve(prof_xs_.size() - prof_dead_);
  new_top_idx.reserve(top_idx_.size() - top_dead_);
  new_ent_xs.reserve(ent_xs_.size() - ent_dead_);
  new_ent_ys.reserve(ent_xs_.size() - ent_dead_);
  new_cand_begin.reserve(ent_xs_.size() - ent_dead_);
  new_cand_count.reserve(ent_xs_.size() - ent_dead_);
  new_cand_xs.reserve(cand_xs_.size());
  new_cand_ys.reserve(cand_xs_.size());

  for (Row row = 0; row < rows; ++row) {
    {
      const std::uint64_t begin = prof_begin_[row];
      const std::uint32_t count = prof_count_[row];
      prof_begin_[row] = new_prof_xs.size();
      for (std::uint32_t i = 0; i < count; ++i) {
        new_prof_xs.push_back(prof_xs_[begin + i]);
        new_prof_ys.push_back(prof_ys_[begin + i]);
        new_prof_freq.push_back(prof_freq_[begin + i]);
      }
    }
    {
      const std::uint64_t begin = top_begin_[row];
      const std::uint32_t count = top_count_[row];
      top_begin_[row] = new_top_idx.size();
      for (std::uint32_t i = 0; i < count; ++i) {
        new_top_idx.push_back(top_idx_[begin + i]);
      }
    }
    {
      const std::uint64_t begin = ent_begin_[row];
      const std::uint32_t count = ent_count_[row];
      ent_begin_[row] = new_ent_xs.size();
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::size_t at = begin + i;
        // Candidate data carries no garbage but is rewritten densely in
        // row-entry order so a following save() serializes it contiguous.
        const std::uint64_t cbegin = ent_cand_begin_[at];
        const std::uint32_t ccount = ent_cand_count_[at];
        new_ent_xs.push_back(ent_xs_[at]);
        new_ent_ys.push_back(ent_ys_[at]);
        new_cand_begin.push_back(new_cand_xs.size());
        new_cand_count.push_back(ccount);
        const double* cxs = cand_xs_.range(cbegin, ccount);
        const double* cys = cand_ys_.range(cbegin, ccount);
        new_cand_xs.insert(new_cand_xs.end(), cxs, cxs + ccount);
        new_cand_ys.insert(new_cand_ys.end(), cys, cys + ccount);
      }
    }
  }

  prof_xs_.reset_owned(std::move(new_prof_xs));
  prof_ys_.reset_owned(std::move(new_prof_ys));
  prof_freq_.reset_owned(std::move(new_prof_freq));
  top_idx_.reset_owned(std::move(new_top_idx));
  ent_xs_.reset_owned(std::move(new_ent_xs));
  ent_ys_.reset_owned(std::move(new_ent_ys));
  ent_cand_begin_.reset_owned(std::move(new_cand_begin));
  ent_cand_count_.reset_owned(std::move(new_cand_count));
  cand_xs_.reset_owned(std::move(new_cand_xs));
  cand_ys_.reset_owned(std::move(new_cand_ys));
  prof_dead_ = top_dead_ = ent_dead_ = 0;
  // Every frozen column is owned again; the window tail and row scalars
  // always are, so the snapshot pages have no remaining readers.
  mapping_.reset();
}

void UserArena::compact_window() {
  const std::size_t rows = user_ids_.size();
  const std::size_t live = win_xs_.size() - win_dead_;
  std::vector<double> new_xs, new_ys;
  std::vector<std::int64_t> new_ts;
  std::vector<std::uint32_t> new_prev;
  new_xs.reserve(live);
  new_ys.reserve(live);
  new_ts.reserve(live);
  new_prev.reserve(live);
  std::vector<std::uint32_t> chain;
  for (Row row = 0; row < rows; ++row) {
    if (win_count_[row] == 0) continue;
    chain.clear();
    for (std::uint32_t i = win_head_[row]; i != kNoIndex; i = win_prev_[i]) {
      chain.push_back(i);
    }
    // chain is newest-first; rewrite the records chronologically with a
    // sequential back-chain so the user's window is contiguous.
    for (std::size_t k = chain.size(); k-- > 0;) {
      const std::uint32_t src = chain[k];
      new_prev.push_back(k + 1 == chain.size()
                             ? kNoIndex
                             : static_cast<std::uint32_t>(new_xs.size() - 1));
      new_xs.push_back(win_xs_[src]);
      new_ys.push_back(win_ys_[src]);
      new_ts.push_back(win_ts_[src]);
    }
    win_head_[row] = static_cast<std::uint32_t>(new_xs.size() - 1);
  }
  win_xs_ = std::move(new_xs);
  win_ys_ = std::move(new_ys);
  win_ts_ = std::move(new_ts);
  win_prev_ = std::move(new_prev);
  win_dead_ = 0;
}

void UserArena::compact() {
  compact_frozen();
  compact_window();
}

std::uint64_t UserArena::owned_bytes() const {
  const auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(v[0]);
  };
  std::uint64_t total = vec_bytes(user_ids_) + vec_bytes(engines_) +
                        vec_bytes(window_start_) + vec_bytes(total_check_ins_) +
                        vec_bytes(win_head_) + vec_bytes(win_count_) +
                        vec_bytes(has_profile_) + vec_bytes(prof_begin_) +
                        vec_bytes(prof_count_) + vec_bytes(top_begin_) +
                        vec_bytes(top_count_) + vec_bytes(ent_begin_) +
                        vec_bytes(ent_count_) + vec_bytes(directory_) +
                        vec_bytes(win_xs_) + vec_bytes(win_ys_) +
                        vec_bytes(win_ts_) + vec_bytes(win_prev_);
  total += prof_xs_.owned_bytes() + prof_ys_.owned_bytes() +
           prof_freq_.owned_bytes() + top_idx_.owned_bytes() +
           ent_xs_.owned_bytes() + ent_ys_.owned_bytes() +
           ent_cand_begin_.owned_bytes() + ent_cand_count_.owned_bytes() +
           cand_xs_.owned_bytes() + cand_ys_.owned_bytes();
  return total;
}

std::uint64_t UserArena::mapped_bytes() const {
  return prof_xs_.mapped_bytes() + prof_ys_.mapped_bytes() +
         prof_freq_.mapped_bytes() + top_idx_.mapped_bytes() +
         ent_xs_.mapped_bytes() + ent_ys_.mapped_bytes() +
         ent_cand_begin_.mapped_bytes() + ent_cand_count_.mapped_bytes() +
         cand_xs_.mapped_bytes() + cand_ys_.mapped_bytes();
}

// --------------------------------------------------------------- snapshots

void UserArena::save(snapshot::Writer& writer) {
  compact();
  writer.write_u64(kSectionTag);
  writer.write_column(user_ids_);
  writer.write_column(engines_);
  writer.write_column(window_start_);
  writer.write_column(total_check_ins_);
  writer.write_column(win_head_);
  writer.write_column(win_count_);
  writer.write_column(has_profile_);
  writer.write_column(prof_begin_);
  writer.write_column(prof_count_);
  writer.write_column(top_begin_);
  writer.write_column(top_count_);
  writer.write_column(ent_begin_);
  writer.write_column(ent_count_);
  writer.write_column(prof_xs_.owned());
  writer.write_column(prof_ys_.owned());
  writer.write_column(prof_freq_.owned());
  writer.write_column(top_idx_.owned());
  writer.write_column(ent_xs_.owned());
  writer.write_column(ent_ys_.owned());
  writer.write_column(ent_cand_begin_.owned());
  writer.write_column(ent_cand_count_.owned());
  writer.write_column(cand_xs_.owned());
  writer.write_column(cand_ys_.owned());
  writer.write_column(win_xs_);
  writer.write_column(win_ys_);
  writer.write_column(win_ts_);
  writer.write_column(win_prev_);
  std::vector<Row> custom_rows;
  std::vector<lppm::BoundedGeoIndParams> custom_values;
  custom_rows.reserve(custom_params_.size());
  for (const auto& [row, params] : custom_params_) custom_rows.push_back(row);
  std::sort(custom_rows.begin(), custom_rows.end());
  custom_values.reserve(custom_rows.size());
  for (const Row row : custom_rows) {
    custom_values.push_back(custom_params_.at(row));
  }
  writer.write_column(custom_rows);
  writer.write_column(custom_values);
}

util::Status UserArena::load(snapshot::Reader& reader) {
  util::require(user_ids_.empty(),
                "cannot load a snapshot section into a non-empty arena");
  const auto parse = [](const std::string& what) {
    return util::Status::parse_error("snapshot arena section: " + what);
  };
  std::uint64_t tag = 0;
  if (util::Status s = reader.read_u64(tag); !s.ok()) return s;
  if (tag != kSectionTag) return parse("bad section tag");

  util::Status status;
  const auto copy = [&](auto& vec) {
    if (status.ok()) status = reader.read_column_copy(vec);
  };
  copy(user_ids_);
  copy(engines_);
  copy(window_start_);
  copy(total_check_ins_);
  copy(win_head_);
  copy(win_count_);
  copy(has_profile_);
  copy(prof_begin_);
  copy(prof_count_);
  copy(top_begin_);
  copy(top_count_);
  copy(ent_begin_);
  copy(ent_count_);
  if (!status.ok()) return status;

  const std::size_t rows = user_ids_.size();
  const auto row_sized = [&](const auto& vec) { return vec.size() == rows; };
  if (!row_sized(engines_) || !row_sized(window_start_) ||
      !row_sized(total_check_ins_) || !row_sized(win_head_) ||
      !row_sized(win_count_) || !row_sized(has_profile_) ||
      !row_sized(prof_begin_) || !row_sized(prof_count_) ||
      !row_sized(top_begin_) || !row_sized(top_count_) ||
      !row_sized(ent_begin_) || !row_sized(ent_count_)) {
    return parse("row-scalar columns disagree on the row count");
  }

  // Frozen columns adopt the mapped extents in place: the O(big) payload
  // is never copied on open.
  const auto adopt = [&](auto& column) {
    using Element = std::decay_t<decltype(column[0])>;
    const Element* data = nullptr;
    std::uint64_t count = 0;
    if (status.ok()) status = reader.read_column(data, count);
    if (status.ok()) column.adopt(data, count);
  };
  adopt(prof_xs_);
  adopt(prof_ys_);
  adopt(prof_freq_);
  adopt(top_idx_);
  adopt(ent_xs_);
  adopt(ent_ys_);
  adopt(ent_cand_begin_);
  adopt(ent_cand_count_);
  adopt(cand_xs_);
  adopt(cand_ys_);
  copy(win_xs_);
  copy(win_ys_);
  copy(win_ts_);
  copy(win_prev_);
  std::vector<Row> custom_rows;
  std::vector<lppm::BoundedGeoIndParams> custom_values;
  copy(custom_rows);
  copy(custom_values);
  if (!status.ok()) return status;

  if (prof_ys_.size() != prof_xs_.size() ||
      prof_freq_.size() != prof_xs_.size() ||
      ent_ys_.size() != ent_xs_.size() ||
      ent_cand_begin_.size() != ent_xs_.size() ||
      ent_cand_count_.size() != ent_xs_.size() ||
      cand_ys_.size() != cand_xs_.size() ||
      win_ys_.size() != win_xs_.size() ||
      win_ts_.size() != win_xs_.size() ||
      win_prev_.size() != win_xs_.size() ||
      custom_values.size() != custom_rows.size()) {
    return parse("parallel columns disagree on their lengths");
  }

  // Range validation: every descriptor must stay inside its column.
  for (std::size_t row = 0; row < rows; ++row) {
    if (prof_begin_[row] + prof_count_[row] > prof_xs_.size() ||
        top_begin_[row] + top_count_[row] > top_idx_.size() ||
        ent_begin_[row] + ent_count_[row] > ent_xs_.size()) {
      return parse("row range overruns a frozen column");
    }
    for (std::uint32_t i = 0; i < top_count_[row]; ++i) {
      if (top_idx_[top_begin_[row] + i] >= prof_count_[row]) {
        return parse("top index outside the row's profile");
      }
    }
    if (win_count_[row] > 0 && win_head_[row] >= win_xs_.size()) {
      return parse("window head outside the window columns");
    }
  }
  for (std::size_t e = 0; e < ent_xs_.size(); ++e) {
    if (ent_cand_begin_[e] + ent_cand_count_[e] > cand_xs_.size()) {
      return parse("candidate range overruns the candidate column");
    }
  }
  for (std::size_t i = 0; i < custom_rows.size(); ++i) {
    if (custom_rows[i] >= rows) return parse("custom-params row out of range");
    custom_params_[custom_rows[i]] = custom_values[i];
  }

  grow_directory(rows);
  prof_dead_ = top_dead_ = ent_dead_ = win_dead_ = 0;
  mapping_ = reader.mapping();
  return util::Status();
}

}  // namespace privlocad::core
