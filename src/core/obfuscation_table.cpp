#include "core/obfuscation_table.hpp"

#include "util/validation.hpp"

namespace privlocad::core {

ObfuscationTable::ObfuscationTable(double match_radius_m)
    : match_radius_(match_radius_m) {
  util::require_positive(match_radius_m, "obfuscation table match radius");
}

const ObfuscationTable::Entry* ObfuscationTable::find(
    geo::Point top_location) const {
  const Entry* best = nullptr;
  double best_distance = match_radius_;
  for (const Entry& entry : entries_) {
    const double d = geo::distance(entry.top_location, top_location);
    if (d <= best_distance) {
      best = &entry;
      best_distance = d;
    }
  }
  return best;
}

const std::vector<geo::Point>& ObfuscationTable::candidates_for(
    rng::Engine& engine, const lppm::Mechanism& mechanism,
    geo::Point top_location) {
  if (const Entry* existing = find(top_location)) {
    return existing->candidates;
  }
  // Batched release straight into the entry's vector: one sampler pass,
  // no intermediate allocation.
  entries_.push_back({top_location, {}});
  mechanism.obfuscate_into(engine, top_location, entries_.back().candidates);
  return entries_.back().candidates;
}

void ObfuscationTable::restore(Entry entry) {
  util::require(!entry.candidates.empty(),
                "restored entry must have candidates");
  util::require(find(entry.top_location) == nullptr,
                "restored entry collides with an existing table entry");
  entries_.push_back(std::move(entry));
}

std::optional<std::vector<geo::Point>> ObfuscationTable::lookup(
    geo::Point top_location) const {
  if (const Entry* existing = find(top_location)) {
    return existing->candidates;
  }
  return std::nullopt;
}

}  // namespace privlocad::core
