// Durable storage for obfuscation tables.
//
// Permanence is the defence: if an edge device restarted and REGENERATED a
// user's candidates, the longitudinal attacker would observe a second
// independent noise draw of the same top location -- exactly the
// composition leak the system exists to prevent. Tables must therefore
// survive restarts. This module serializes per-user obfuscation tables to
// a CSV file and restores them, refusing structurally corrupt input (a
// corrupt table must fail loudly at startup, never silently regenerate).
//
// Format, one row per candidate:
//   user_id,entry_index,top_x,top_y,cand_index,cand_x,cand_y
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "core/obfuscation_table.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "util/status.hpp"

namespace privlocad::core {

/// The per-user tables of one edge device, keyed by user id. std::map so
/// serialization order is deterministic.
using TableSnapshot = std::map<std::uint64_t, ObfuscationTable>;

/// Writes every user's table entries to `out`.
void save_tables(std::ostream& out, const TableSnapshot& tables);

/// Reads tables back; every restored table gets `match_radius_m`.
/// Throws util::InvalidArgument on malformed rows, non-contiguous
/// candidate indices, or entries whose top locations collide.
TableSnapshot load_tables(std::istream& in, double match_radius_m);

/// File-path convenience wrappers; throw util::IoError (a
/// std::runtime_error) when the file cannot be opened.
void save_tables_file(const std::string& path, const TableSnapshot& tables);
TableSnapshot load_tables_file(const std::string& path,
                               double match_radius_m);

/// Fault-aware non-throwing variants: each attempt first consults the
/// injector's `table_store` site (nullptr selects the process-global
/// injector), and transient faults are retried under `policy`. Corrupt
/// input (ParseError / validation failures) and IO errors fail fast with
/// the typed status -- a corrupt table must fail loudly at startup, never
/// be retried into silence.
util::Result<TableSnapshot> try_load_tables_file(
    const std::string& path, double match_radius_m,
    const fault::RetryPolicy& policy = {},
    fault::FaultInjector* faults = nullptr);
util::Status try_save_tables_file(const std::string& path,
                                  const TableSnapshot& tables,
                                  const fault::RetryPolicy& policy = {},
                                  fault::FaultInjector* faults = nullptr);

}  // namespace privlocad::core
