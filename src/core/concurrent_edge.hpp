// Thread-safe edge serving.
//
// One physical edge box serves many mobile users concurrently (the paper's
// Tables II/III measure exactly that load). EdgeDevice itself is single-
// threaded by design -- its per-user state and its RNG are not synchronized
// -- so this wrapper shards users across a fixed set of internal devices,
// one mutex per shard. Users hash to shards, so one user's requests are
// always serialized (their location manager sees a consistent order) while
// different users proceed in parallel. Telemetry and privacy spend roll up
// across shards on demand.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/edge_device.hpp"

namespace privlocad::par {
class ThreadPool;
}

namespace privlocad::core {

/// Outcome of one serve_trace_batch run.
struct BatchServeStats {
  std::size_t users = 0;
  std::size_t requests = 0;
  double wall_seconds = 0.0;

  double requests_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(requests) / wall_seconds
               : 0.0;
  }
};

class ConcurrentEdge {
 public:
  /// `shards` internal devices (>= 1). Seeds derive from `seed` so the
  /// whole server is reproducible given a fixed user->request schedule
  /// per shard.
  ConcurrentEdge(EdgeConfig config, std::size_t shards, std::uint64_t seed);

  /// Thread-safe report_location; serialized per shard.
  ReportedLocation report_location(std::uint64_t user_id,
                                   geo::Point true_location,
                                   trace::Timestamp time);

  /// Thread-safe ad filtering (runs on the user's shard).
  std::vector<adnet::Ad> filter_ads(std::uint64_t user_id,
                                    const std::vector<adnet::Ad>& ads,
                                    geo::Point true_location);

  /// Thread-safe history import.
  void import_history(std::uint64_t user_id, const trace::UserTrace& trace);

  /// Drives a whole population of traces through the sharded devices from
  /// the pool's worker threads: one task per user, so a user's check-ins
  /// stay time-ordered while different users contend on the shard mutexes
  /// exactly as live traffic would. Telemetry counter totals are
  /// scheduling-independent (each user's classification depends only on
  /// their own state), so a threads=1 run and a threads=N run agree.
  BatchServeStats serve_trace_batch(
      const std::vector<trace::UserTrace>& traces, par::ThreadPool& pool);

  /// Global-pool convenience (sized by PRIVLOCAD_THREADS / hardware).
  BatchServeStats serve_trace_batch(
      const std::vector<trace::UserTrace>& traces);

  /// Cluster-wide telemetry rollup (locks every shard briefly).
  EdgeTelemetry telemetry() const;

  /// Total users across all shards.
  std::size_t user_count() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::unique_ptr<EdgeDevice> device;
    mutable std::mutex mutex;
  };

  Shard& shard_for(std::uint64_t user_id);
  const Shard& shard_for(std::uint64_t user_id) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace privlocad::core
