// Thread-safe edge serving.
//
// One physical edge box serves many mobile users concurrently (the paper's
// Tables II/III measure exactly that load). EdgeDevice itself is single-
// threaded by design -- its per-user state and its RNG are not synchronized
// -- so this wrapper shards users across a fixed set of internal devices,
// one mutex per shard. Users hash to shards, so one user's requests are
// always serialized (their location manager sees a consistent order) while
// different users proceed in parallel. Telemetry and privacy spend roll up
// across shards on demand.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/edge_device.hpp"

namespace privlocad::par {
class ThreadPool;
}

namespace privlocad::core {

/// Outcome of one serve_trace_batch run. Every request lands in exactly
/// one of the outcome tallies (served covers both first-attempt and
/// after-retry successes).
struct BatchServeStats {
  std::size_t users = 0;
  std::size_t requests = 0;
  std::size_t served = 0;              ///< released a location normally
  std::size_t served_after_retry = 0;  ///< subset of served needing retries
  std::size_t degraded_cached = 0;     ///< replayed the frozen set
  std::size_t degraded_dropped = 0;    ///< dropped rather than leak
  std::size_t failed = 0;              ///< typed internal failure
  double wall_seconds = 0.0;

  double requests_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(requests) / wall_seconds
               : 0.0;
  }
};

class ConcurrentEdge {
 public:
  /// config.shards internal devices, every shard sharing config.seed:
  /// per-user RNG streams are split from (seed, user id), so a user's
  /// served outputs are identical at any shard count -- resharding a box
  /// is a pure capacity change, never a behavioral one. All shards record
  /// into ONE metrics registry (sharded atomic counters make that safe),
  /// so telemetry() and metrics() read box-wide totals without touching
  /// any shard mutex.
  explicit ConcurrentEdge(EdgeConfig config);

  /// Thread-safe typed serving; serialized per shard. Never throws (see
  /// EdgeDevice::serve).
  ServeResult serve(std::uint64_t user_id, geo::Point true_location,
                    trace::Timestamp time);

  /// Thread-safe legacy wrapper; throws util::StatusError on a dropped or
  /// failed request (never happens with fault injection disabled).
  ReportedLocation report_location(std::uint64_t user_id,
                                   geo::Point true_location,
                                   trace::Timestamp time);

  /// Thread-safe ad filtering (runs on the user's shard).
  std::vector<adnet::Ad> filter_ads(std::uint64_t user_id,
                                    const std::vector<adnet::Ad>& ads,
                                    geo::Point true_location);

  /// Thread-safe history import.
  void import_history(std::uint64_t user_id, const trace::UserTrace& trace);

  /// Drives a whole population of traces through the sharded devices from
  /// the pool's worker threads: one task per user, so a user's check-ins
  /// stay time-ordered while different users contend on the shard mutexes
  /// exactly as live traffic would. With fault injection disabled,
  /// telemetry counter totals are scheduling-independent (each user's
  /// classification depends only on their own state), so a threads=1 run
  /// and a threads=N run agree. Requests run through serve(), so under
  /// fault injection the batch completes with per-outcome tallies
  /// instead of throwing; those tallies depend on the cross-user arrival
  /// interleaving at the injector's shared per-site counters (see
  /// fault/fault.hpp), so they are bit-stable only single-threaded.
  BatchServeStats serve_trace_batch(
      const std::vector<trace::UserTrace>& traces, par::ThreadPool& pool);

  /// Global-pool convenience (sized by PRIVLOCAD_THREADS / hardware).
  BatchServeStats serve_trace_batch(
      const std::vector<trace::UserTrace>& traces);

  /// Persists every shard's data plane into one snapshot file (one arena
  /// section per shard, taken under each shard's mutex in turn -- callers
  /// wanting a globally consistent point-in-time image should quiesce
  /// traffic first). Returns kIoError when the file cannot be written.
  util::Status save_snapshot(const std::string& path);

  /// Replaces this (empty) box's data plane with a mapped snapshot.
  /// Returns kIoError / kParseError on damage, kFailedPrecondition when
  /// any shard already holds users or the snapshot's shard count differs
  /// from this box's (the shard hash must agree with the saved layout).
  util::Status open_snapshot(const std::string& path);

  /// Box-wide telemetry snapshot, read lock-free off the shared registry.
  EdgeTelemetry telemetry() const;

  /// The shared registry: edge_metrics counters, the serve-latency
  /// histogram, and per-shard "edge.shard<i>.lock_acquisitions" counters
  /// (a skewed shard shows up here before it shows up as tail latency).
  /// The lock counters are tallied under each shard's own mutex and
  /// published into the registry by serve_trace_batch()/telemetry(), so
  /// read them after one of those. serve_trace_batch additionally
  /// publishes the pool's task/steal counters.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// Total users across all shards.
  std::size_t user_count() const;

  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Shard {
    std::unique_ptr<EdgeDevice> device;
    /// Times this shard's mutex was taken (contention/skew signal). A
    /// plain tally -- the incrementing path already holds the mutex, so
    /// an atomic would buy nothing and cost a lock-prefixed RMW per
    /// request. publish_shard_counters() moves it into the registry.
    std::uint64_t lock_count = 0;
    /// Portion of lock_count already flushed into the registry counter.
    /// Mutable so the const telemetry() snapshot can publish.
    mutable std::uint64_t lock_count_published = 0;
    obs::Counter* lock_acquisitions = nullptr;
    mutable std::mutex mutex;
  };

  Shard& shard_for(std::uint64_t user_id);
  const Shard& shard_for(std::uint64_t user_id) const;

  /// Flushes each shard's lock tally into its registry counter. Called
  /// off the hot path: end of serve_trace_batch and telemetry().
  void publish_shard_counters() const;

  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace privlocad::core
