// Edge-PrivLocAd system façade: the full request flow of paper Fig. 5.
//
//   user true location --> edge device (manage, obfuscate, select)
//     --> ad network (match & log) --> edge device (filter) --> user
//
// This is the integration surface the examples and end-to-end tests use;
// it also exposes the ad network's bid log so the attack benches can play
// the longitudinal adversary against a *running* system rather than
// against mechanism outputs in isolation.
#pragma once

#include <cstdint>
#include <vector>

#include "adnet/ad_network.hpp"
#include "core/edge_device.hpp"

namespace privlocad::core {

/// Outcome of one LBA round trip.
struct ServedAds {
  ReportedLocation reported;        ///< what left the trusted environment
  std::size_t matched_count = 0;    ///< ads the network matched (pre-filter)
  std::vector<adnet::Ad> delivered; ///< ads after edge-side AOI filtering
};

class EdgePrivLocAd {
 public:
  EdgePrivLocAd(EdgeConfig config, std::vector<adnet::Advertiser> advertisers,
                std::uint64_t seed);

  /// Full round trip for one user request.
  ServedAds on_lba_request(std::uint64_t user_id, geo::Point true_location,
                           trace::Timestamp time);

  EdgeDevice& edge() { return edge_; }
  const EdgeDevice& edge() const { return edge_; }
  const adnet::AdNetwork& network() const { return network_; }

 private:
  EdgeDevice edge_;
  adnet::AdNetwork network_;
};

}  // namespace privlocad::core
