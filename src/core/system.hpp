// Edge-PrivLocAd system façade: the full request flow of paper Fig. 5.
//
//   user true location --> edge device (manage, obfuscate, select)
//     --> ad network (match & log) --> edge device (filter) --> user
//
// This is the integration surface the examples and end-to-end tests use;
// it also exposes the ad network's bid log so the attack benches can play
// the longitudinal adversary against a *running* system rather than
// against mechanism outputs in isolation.
#pragma once

#include <cstdint>
#include <vector>

#include "adnet/ad_network.hpp"
#include "core/edge_device.hpp"

namespace privlocad::core {

/// Outcome of one LBA round trip. `reported` is meaningful only when
/// location_released(); when the serve leg dropped or failed, no ad
/// request was made and `status` carries the cause.
struct ServedAds {
  ReportedLocation reported{};      ///< what left the trusted environment
  std::size_t matched_count = 0;    ///< ads the network matched (pre-filter)
  std::vector<adnet::Ad> delivered; ///< ads after edge-side AOI filtering
  ServeOutcome outcome = ServeOutcome::kServed;  ///< the serve leg's outcome
  util::Status status{};            ///< non-ok when degraded/failed
  std::uint32_t retries = 0;        ///< serve-leg transient retries
  /// The ad-network leg exhausted its retries: the (obfuscated) location
  /// report succeeded but zero ads were delivered this round.
  bool ad_path_degraded = false;

  /// True when an (always obfuscated) location left the edge.
  bool location_released() const {
    return outcome == ServeOutcome::kServed ||
           outcome == ServeOutcome::kServedAfterRetry ||
           outcome == ServeOutcome::kDegradedCached;
  }
};

class EdgePrivLocAd {
 public:
  /// Seed, retry policy, and fault injector come from the config.
  EdgePrivLocAd(EdgeConfig config,
                std::vector<adnet::Advertiser> advertisers);

  [[deprecated("pass the seed inside EdgeConfig: "
               "EdgePrivLocAd(config.with_seed(seed), advertisers)")]]
  EdgePrivLocAd(EdgeConfig config, std::vector<adnet::Advertiser> advertisers,
                std::uint64_t seed);

  /// Full round trip for one user request. Never throws: a dropped or
  /// failed serve leg returns a typed outcome with no ad traffic, and a
  /// faulted ad-network leg degrades to zero delivered ads
  /// (ad_path_degraded) after retries.
  ServedAds on_lba_request(std::uint64_t user_id, geo::Point true_location,
                           trace::Timestamp time);

  EdgeDevice& edge() { return edge_; }
  const EdgeDevice& edge() const { return edge_; }
  const adnet::AdNetwork& network() const { return network_; }

 private:
  EdgeDevice edge_;
  adnet::AdNetwork network_;
  /// Backoff jitter for the ad-network leg (derived from config.seed so
  /// the whole system run stays reproducible).
  rng::Engine adnet_backoff_engine_;
  /// Tallies rounds whose ad leg degraded (edge_metrics::kAdnetDegraded).
  obs::Counter* adnet_degraded_total_;
};

}  // namespace privlocad::core
