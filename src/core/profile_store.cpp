#include "core/profile_store.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::core {
namespace {

const std::vector<std::string> kHeader{"user_id", "entry_index", "x", "y",
                                       "frequency", "is_top"};

}  // namespace

void save_profiles(std::ostream& out, const ProfileSnapshot& profiles) {
  util::CsvWriter writer(out, kHeader);
  for (const auto& [user_id, stored] : profiles) {
    const auto& entries = stored.profile.entries();
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const bool is_top =
          std::find(stored.top_indices.begin(), stored.top_indices.end(),
                    i) != stored.top_indices.end();
      writer.write_row({std::to_string(user_id), std::to_string(i),
                        util::format_double(entries[i].location.x, 6),
                        util::format_double(entries[i].location.y, 6),
                        std::to_string(entries[i].frequency),
                        is_top ? "1" : "0"});
    }
  }
}

ProfileSnapshot load_profiles(std::istream& in) {
  const util::CsvTable csv = util::read_csv(in);
  if (!csv.header.empty()) {
    util::require(csv.header == kHeader,
                  "profile store file has an unexpected header");
  }

  struct Pending {
    std::vector<attack::ProfileEntry> entries;
    std::vector<std::size_t> top_indices;
  };
  std::map<std::uint64_t, Pending> grouped;

  for (const auto& row : csv.rows) {
    const auto user = static_cast<std::uint64_t>(util::parse_int(row[0]));
    const auto index = static_cast<std::uint64_t>(util::parse_int(row[1]));
    Pending& pending = grouped[user];
    util::require(index == pending.entries.size(),
                  "profile entries are out of order");
    const auto freq = util::parse_int(row[4]);
    util::require(freq > 0, "profile frequency must be positive");
    pending.entries.push_back(
        {{util::parse_double(row[2]), util::parse_double(row[3])},
         static_cast<std::uint64_t>(freq)});
    const auto is_top = util::parse_int(row[5]);
    util::require(is_top == 0 || is_top == 1, "is_top must be 0 or 1");
    if (is_top == 1) pending.top_indices.push_back(pending.entries.size() - 1);
  }

  ProfileSnapshot profiles;
  for (auto& [user, pending] : grouped) {
    // LocationProfile enforces heaviest-first ordering itself.
    StoredProfile stored;
    stored.profile = attack::LocationProfile(std::move(pending.entries));
    stored.top_indices = std::move(pending.top_indices);
    profiles.emplace(user, std::move(stored));
  }
  return profiles;
}

void save_profiles_file(const std::string& path,
                        const ProfileSnapshot& profiles) {
  std::ofstream out(path);
  if (!out) throw util::IoError("cannot open for writing: " + path);
  save_profiles(out, profiles);
}

ProfileSnapshot load_profiles_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::IoError("cannot open for reading: " + path);
  return load_profiles(in);
}

util::Result<ProfileSnapshot> try_load_profiles_file(
    const std::string& path, const fault::RetryPolicy& policy,
    fault::FaultInjector* faults) {
  fault::FaultInjector& injector =
      faults != nullptr ? *faults : fault::FaultInjector::global();
  // Fixed-seed local engine: backoff jitter stays reproducible and leaves
  // every serving RNG untouched.
  rng::Engine backoff_engine(0x9120F11EULL);
  return fault::retry_with_backoff(
      policy, backoff_engine, [&]() -> util::Result<ProfileSnapshot> {
        if (injector.enabled()) {
          const util::Status s = injector.check(fault::Site::kProfileStore);
          if (!s.ok()) return s;
        }
        try {
          return load_profiles_file(path);
        } catch (const std::exception& error) {
          return util::status_from_exception(error);
        }
      });
}

util::Status try_save_profiles_file(const std::string& path,
                                    const ProfileSnapshot& profiles,
                                    const fault::RetryPolicy& policy,
                                    fault::FaultInjector* faults) {
  fault::FaultInjector& injector =
      faults != nullptr ? *faults : fault::FaultInjector::global();
  rng::Engine backoff_engine(0x9120F11EULL);
  return fault::retry_with_backoff(
      policy, backoff_engine, [&]() -> util::Status {
        if (injector.enabled()) {
          const util::Status s = injector.check(fault::Site::kProfileStore);
          if (!s.ok()) return s;
        }
        try {
          save_profiles_file(path, profiles);
          return util::Status();
        } catch (const std::exception& error) {
          return util::status_from_exception(error);
        }
      });
}

}  // namespace privlocad::core
