#include "core/risk.hpp"

#include <algorithm>
#include <cmath>

#include "lppm/privacy_params.hpp"
#include "util/validation.hpp"

namespace privlocad::core {

std::string to_string(RiskLevel level) {
  switch (level) {
    case RiskLevel::kLow:
      return "low";
    case RiskLevel::kMedium:
      return "medium";
    case RiskLevel::kHigh:
      return "high";
  }
  return "?";
}

RiskAssessment assess_risk(const attack::LocationProfile& profile,
                           std::uint64_t observed_check_ins,
                           const lppm::PrivacySpend& spend,
                           const RiskConfig& config) {
  util::require_positive(config.entropy_floor, "entropy floor");
  util::require_positive(config.exposure_saturation, "exposure saturation");
  util::require_positive(config.budget_saturation_eps, "budget saturation");
  util::require(config.medium_threshold < config.high_threshold,
                "risk thresholds must be ordered");

  RiskAssessment assessment;

  // Concentration: entropy at/below the floor scores 1 (all activity at a
  // few places); entropy twice the floor scores 0.
  if (!profile.empty()) {
    const double h = profile.entropy();
    assessment.entropy_signal =
        std::clamp(2.0 - h / config.entropy_floor, 0.0, 1.0);
  }

  // Longitudinal exposure: the attack error shrinks like 1/sqrt(N), so
  // the signal grows like sqrt(N / saturation), capped at 1.
  assessment.exposure_signal = std::clamp(
      std::sqrt(static_cast<double>(observed_check_ins) /
                config.exposure_saturation),
      0.0, 1.0);

  // Budget: basic-composition spend relative to the saturation point.
  assessment.budget_signal = std::clamp(
      spend.basic_epsilon / config.budget_saturation_eps, 0.0, 1.0);

  // Concentration and exposure multiply -- a concentrated profile is only
  // dangerous once observed often, and vice versa -- while burned budget
  // adds independently.
  assessment.score = std::clamp(
      0.7 * assessment.entropy_signal * assessment.exposure_signal +
          0.3 * assessment.budget_signal,
      0.0, 1.0);

  if (assessment.score >= config.high_threshold) {
    assessment.level = RiskLevel::kHigh;
    assessment.recommendation =
        "move top locations to permanent obfuscation and tighten epsilon";
  } else if (assessment.score >= config.medium_threshold) {
    assessment.level = RiskLevel::kMedium;
    assessment.recommendation =
        "enable permanent obfuscation for the top-1 location";
  } else {
    assessment.level = RiskLevel::kLow;
    assessment.recommendation = "default protection is adequate";
  }
  return assessment;
}

lppm::BoundedGeoIndParams recommended_params(
    const RiskAssessment& assessment,
    const lppm::BoundedGeoIndParams& current) {
  current.validate();
  lppm::BoundedGeoIndParams next = current;
  switch (assessment.level) {
    case RiskLevel::kLow:
      break;
    case RiskLevel::kMedium:
      next.epsilon = current.epsilon / 2.0;
      break;
    case RiskLevel::kHigh:
      next.epsilon = current.epsilon / 2.0;
      next.n = current.n * 2;
      break;
  }
  return next;
}

}  // namespace privlocad::core
