// Obfuscation table T (paper Section V-C).
//
// Maps every top location to its PERMANENT set of obfuscated candidates.
// Permanence is the defence against the longitudinal attacker: once a top
// location has been obfuscated, every later request for it replays draws
// from the same frozen candidate set, so additional observations leak
// nothing new (the attacker only ever sees the same n points).
//
// Top locations are re-derived each time window from noisy check-ins, so
// their centroids drift by a few meters between windows. Lookups therefore
// match by proximity (match_radius_m), not exact equality; a drifting
// centroid within the radius reuses the existing entry.
#pragma once

#include <optional>
#include <vector>

#include "geo/point.hpp"
#include "lppm/mechanism.hpp"
#include "rng/engine.hpp"

namespace privlocad::core {

class ObfuscationTable {
 public:
  /// `match_radius_m`: two top-location estimates within this distance are
  /// treated as the same real-world place.
  explicit ObfuscationTable(double match_radius_m = 100.0);

  /// Returns the candidate set for `top_location`, generating and
  /// permanently recording it via `mechanism` on first sight.
  const std::vector<geo::Point>& candidates_for(
      rng::Engine& engine, const lppm::Mechanism& mechanism,
      geo::Point top_location);

  /// Lookup without generation; nullopt when no entry matches.
  std::optional<std::vector<geo::Point>> lookup(geo::Point top_location) const;

  std::size_t size() const { return entries_.size(); }

  struct Entry {
    geo::Point top_location;
    std::vector<geo::Point> candidates;
  };

  /// All recorded entries, in insertion order (persistence support).
  const std::vector<Entry>& entries() const { return entries_; }

  /// Restores an entry verbatim (persistence support). Rejects an entry
  /// whose top location would collide with an existing one inside the
  /// match radius -- restoring over live state is a logic error, not a
  /// merge.
  void restore(Entry entry);

  double match_radius() const { return match_radius_; }

 private:
  const Entry* find(geo::Point top_location) const;

  double match_radius_;
  std::vector<Entry> entries_;
};

}  // namespace privlocad::core
