// Planar Laplace mechanism (Andres et al., CCS 2013) — the "one-time
// geo-IND" mechanism the paper's longitudinal attack defeats.
//
// Releases ONE obfuscated location per call by adding polar-Laplace noise
// with density proportional to exp(-eps * |noise|); each individual release
// satisfies eps-geo-IND (Definition 1). Independent releases of the same
// true location compose, which is exactly the weakness Section III exploits.
#pragma once

#include "lppm/mechanism.hpp"
#include "lppm/privacy_params.hpp"

namespace privlocad::lppm {

class PlanarLaplaceMechanism final : public Mechanism {
 public:
  /// Constructs from a (level, radius) requirement; epsilon = l / r.
  explicit PlanarLaplaceMechanism(GeoIndParams params);

  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real_location) const override;

  /// Convenience single-point release.
  geo::Point obfuscate_one(rng::Engine& engine, geo::Point real) const;

  std::size_t output_count() const override { return 1; }
  std::string name() const override;
  double tail_radius(double alpha) const override;

  double epsilon() const { return epsilon_; }

 private:
  GeoIndParams params_;
  double epsilon_;
};

}  // namespace privlocad::lppm
