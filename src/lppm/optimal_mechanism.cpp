#include "lppm/optimal_mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

/// Octile spanner dilation of the 8-neighbor grid: the worst-case ratio of
/// the shortest king-move path length to the Euclidean distance.
const double kOctileDilation = 1.0 / std::cos(std::numbers::pi / 8.0);

}  // namespace

OptimalGeoIndMechanism::OptimalGeoIndMechanism(OptimalMechanismConfig config)
    : config_(std::move(config)) {
  util::require(config_.per_side >= 2, "grid needs at least 2x2 cells");
  util::require_positive(config_.cell_spacing_m, "cell spacing");
  util::require_positive(config_.epsilon, "epsilon");

  const std::size_t side = config_.per_side;
  const std::size_t k = side * side;

  if (config_.prior.empty()) {
    config_.prior.assign(k, 1.0 / static_cast<double>(k));
  }
  util::require(config_.prior.size() == k,
                "prior size must equal the cell count");
  double prior_sum = 0.0;
  for (const double p : config_.prior) {
    util::require(p >= 0.0, "prior must be non-negative");
    prior_sum += p;
  }
  util::require(prior_sum > 0.0, "prior must have positive mass");
  for (double& p : config_.prior) p /= prior_sum;

  // Cell centers on a centered grid.
  centers_.reserve(k);
  const double offset =
      (static_cast<double>(side) - 1.0) / 2.0 * config_.cell_spacing_m;
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      centers_.push_back(
          {static_cast<double>(col) * config_.cell_spacing_m - offset,
           static_cast<double>(row) * config_.cell_spacing_m - offset});
    }
  }

  // ---------------- build the LP ----------------------------------------
  const std::size_t vars = k * k;  // X_ij, index i * k + j
  opt::LpProblem problem;
  problem.objective.assign(vars, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      problem.objective[i * k + j] =
          config_.prior[i] * geo::distance(centers_[i], centers_[j]);
    }
  }

  // Row-stochastic equalities.
  problem.eq_lhs = opt::Matrix(k, vars);
  problem.eq_rhs.assign(k, 1.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      problem.eq_lhs.at(i, i * k + j) = 1.0;
    }
  }

  // geo-IND constraints on directed 8-neighbor edges, budget deflated by
  // the spanner dilation so chaining yields the full-epsilon guarantee.
  const double edge_epsilon = config_.epsilon / kOctileDilation;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      const std::size_t i = row * side + col;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const int nr = static_cast<int>(row) + dr;
          const int nc = static_cast<int>(col) + dc;
          if (nr < 0 || nc < 0 || nr >= static_cast<int>(side) ||
              nc >= static_cast<int>(side)) {
            continue;
          }
          edges.emplace_back(i, static_cast<std::size_t>(nr) * side +
                                    static_cast<std::size_t>(nc));
        }
      }
    }
  }

  problem.ub_lhs = opt::Matrix(edges.size() * k, vars);
  problem.ub_rhs.assign(edges.size() * k, 0.0);
  std::size_t row_index = 0;
  for (const auto& [i, i_prime] : edges) {
    const double bound =
        std::exp(edge_epsilon * geo::distance(centers_[i], centers_[i_prime]));
    for (std::size_t j = 0; j < k; ++j, ++row_index) {
      problem.ub_lhs.at(row_index, i * k + j) = 1.0;
      problem.ub_lhs.at(row_index, i_prime * k + j) = -bound;
    }
  }

  // The geo-IND rows are all rhs-0, so the LP is extremely degenerate;
  // a graded perturbation keeps the simplex moving (see SimplexOptions).
  // The induced slack per constraint is <= 1e-8 * rows ~ 1e-5, absorbed by
  // the row renormalization below and by the spanner's dilation margin.
  opt::SimplexOptions lp_options;
  lp_options.degeneracy_perturbation = 1e-8;
  lp_options.max_iterations = 200000;
  const opt::LpSolution solution = opt::solve(problem, lp_options);
  if (solution.status != opt::LpStatus::kOptimal) {
    throw std::runtime_error(
        "optimal mechanism LP did not reach optimality");
  }

  channel_.assign(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      channel_[i][j] = std::max(0.0, solution.x[i * k + j]);
      row_sum += channel_[i][j];
    }
    for (double& p : channel_[i]) p /= row_sum;  // numeric cleanup
  }
  quality_loss_ = solution.objective;
}

std::size_t OptimalGeoIndMechanism::nearest_cell(geo::Point p) const {
  std::size_t best = 0;
  double best_d = geo::distance_squared(p, centers_[0]);
  for (std::size_t i = 1; i < centers_.size(); ++i) {
    const double d = geo::distance_squared(p, centers_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::vector<geo::Point> OptimalGeoIndMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  const std::vector<double>& row = channel_[nearest_cell(real_location)];
  double u = engine.uniform();
  std::size_t j = row.size() - 1;
  for (std::size_t c = 0; c < row.size(); ++c) {
    u -= row[c];
    if (u <= 0.0) {
      j = c;
      break;
    }
  }
  return {centers_[j]};
}

std::string OptimalGeoIndMechanism::name() const {
  return "optimal-geo-ind(k=" + std::to_string(centers_.size()) +
         ",eps=" + util::format_double(config_.epsilon, 5) + "/m)";
}

double OptimalGeoIndMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  // From the central cell, find the smallest radius covering 1 - alpha of
  // the output mass.
  const std::size_t center = nearest_cell({0.0, 0.0});
  const std::vector<double>& row = channel_[center];
  std::vector<std::pair<double, double>> by_distance;  // (distance, prob)
  by_distance.reserve(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    by_distance.emplace_back(
        geo::distance(centers_[center], centers_[j]), row[j]);
  }
  std::sort(by_distance.begin(), by_distance.end());
  double mass = 0.0;
  for (const auto& [d, p] : by_distance) {
    mass += p;
    if (mass >= 1.0 - alpha) return d;
  }
  return by_distance.back().first;
}

const std::vector<double>& OptimalGeoIndMechanism::channel_row(
    std::size_t i) const {
  util::require(i < channel_.size(), "channel row out of range");
  return channel_[i];
}

geo::Point OptimalGeoIndMechanism::cell_center(std::size_t i) const {
  util::require(i < centers_.size(), "cell index out of range");
  return centers_[i];
}

double OptimalGeoIndMechanism::max_constraint_violation() const {
  double worst = -1e300;
  for (std::size_t i = 0; i < channel_.size(); ++i) {
    for (std::size_t i2 = 0; i2 < channel_.size(); ++i2) {
      if (i == i2) continue;
      const double bound = std::exp(
          config_.epsilon * geo::distance(centers_[i], centers_[i2]));
      for (std::size_t j = 0; j < channel_.size(); ++j) {
        worst = std::max(worst, channel_[i][j] - bound * channel_[i2][j]);
      }
    }
  }
  return worst;
}

}  // namespace privlocad::lppm
