#include "lppm/optimal_mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numbers>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

/// Octile spanner dilation of the 8-neighbor grid: the worst-case ratio of
/// the shortest king-move path length to the Euclidean distance.
const double kOctileDilation = 1.0 / std::cos(std::numbers::pi / 8.0);

/// Centers of a side x side grid centered on the origin, row-major.
std::vector<geo::Point> grid_centers(std::size_t side, double spacing) {
  std::vector<geo::Point> centers;
  centers.reserve(side * side);
  const double offset = (static_cast<double>(side) - 1.0) / 2.0 * spacing;
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      centers.push_back({static_cast<double>(col) * spacing - offset,
                         static_cast<double>(row) * spacing - offset});
    }
  }
  return centers;
}

/// Normalizes `prior` in place to a distribution over k cells (empty means
/// uniform); shared by the exact and approximate builds.
void normalize_prior(std::vector<double>& prior, std::size_t k) {
  if (prior.empty()) {
    prior.assign(k, 1.0 / static_cast<double>(k));
  }
  util::require(prior.size() == k, "prior size must equal the cell count");
  double prior_sum = 0.0;
  for (const double p : prior) {
    util::require(p >= 0.0, "prior must be non-negative");
    prior_sum += p;
  }
  util::require(prior_sum > 0.0, "prior must have positive mass");
  for (double& p : prior) p /= prior_sum;
}

/// Clamps an LP solution row to a probability distribution (numeric
/// cleanup: negative epsilons from the solver become zeros, the row is
/// renormalized to sum exactly 1).
void clean_row(std::vector<double>& row) {
  double row_sum = 0.0;
  for (double& p : row) {
    p = std::max(0.0, p);
    row_sum += p;
  }
  for (double& p : row) p /= row_sum;
}

// ------------------- decomposition plumbing ------------------------------

/// One decomposition window: the clipped cell-coordinate rectangle the LP
/// covers, and the core rectangle whose cells take their channel row from
/// this window.
struct Window {
  std::size_t row0, row1, col0, col1;              // window extent
  std::size_t core_row0, core_row1, core_col0, core_col1;  // owned cells
  std::size_t height() const { return row1 - row0; }
  std::size_t width() const { return col1 - col0; }
};

/// Overlapping-window cover of a side x side grid. Core tiles of
/// `step = window_side - 2 * overlap` cells partition the grid (ownership);
/// each window extends its core by `overlap` cells per side, clipped.
std::vector<Window> make_windows(std::size_t side, std::size_t window_side,
                                 std::size_t overlap) {
  std::vector<Window> windows;
  if (side <= window_side) {
    windows.push_back({0, side, 0, side, 0, side, 0, side});
    return windows;
  }
  const std::size_t step = window_side - 2 * overlap;
  const std::size_t tiles = (side + step - 1) / step;
  for (std::size_t tr = 0; tr < tiles; ++tr) {
    const std::size_t cr0 = tr * step;
    const std::size_t cr1 = std::min(cr0 + step, side);
    const std::size_t wr0 = cr0 >= overlap ? cr0 - overlap : 0;
    const std::size_t wr1 = std::min(cr1 + overlap, side);
    for (std::size_t tc = 0; tc < tiles; ++tc) {
      const std::size_t cc0 = tc * step;
      const std::size_t cc1 = std::min(cc0 + step, side);
      const std::size_t wc0 = cc0 >= overlap ? cc0 - overlap : 0;
      const std::size_t wc1 = std::min(cc1 + overlap, side);
      windows.push_back({wr0, wr1, wc0, wc1, cr0, cr1, cc0, cc1});
    }
  }
  return windows;
}

/// Per-shape resident state: identical window shapes share one spanner,
/// one constraint matrix, and one factorized solver (see header comment).
struct ShapeEntry {
  std::optional<Spanner> spanner;
  std::vector<geo::Point> local_centers;
  std::vector<std::pair<std::size_t, std::size_t>> directed_edges;
  opt::SparseLpProblem problem;
  std::optional<opt::RevisedSimplex> solver;
  std::vector<double> last_objective;
  std::vector<std::vector<double>> last_channel;
};

}  // namespace

opt::LpProblem build_geo_ind_lp_dense(
    const std::vector<geo::Point>& centers, const std::vector<double>& prior,
    const std::vector<std::pair<std::size_t, std::size_t>>& directed_edges,
    double edge_epsilon) {
  const std::size_t k = centers.size();
  const std::size_t vars = k * k;  // X_ij, index i * k + j
  opt::LpProblem problem;
  problem.objective.assign(vars, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      problem.objective[i * k + j] =
          prior[i] * geo::distance(centers[i], centers[j]);
    }
  }

  // Row-stochastic equalities.
  problem.eq_lhs = opt::Matrix(k, vars);
  problem.eq_rhs.assign(k, 1.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      problem.eq_lhs.at(i, i * k + j) = 1.0;
    }
  }

  // geo-IND ratio constraints, one row per directed edge and output.
  problem.ub_lhs = opt::Matrix(directed_edges.size() * k, vars);
  problem.ub_rhs.assign(directed_edges.size() * k, 0.0);
  std::size_t row_index = 0;
  for (const auto& [i, i_prime] : directed_edges) {
    const double bound =
        std::exp(edge_epsilon * geo::distance(centers[i], centers[i_prime]));
    for (std::size_t j = 0; j < k; ++j, ++row_index) {
      problem.ub_lhs.at(row_index, i * k + j) = 1.0;
      problem.ub_lhs.at(row_index, i_prime * k + j) = -bound;
    }
  }
  return problem;
}

opt::SparseLpProblem build_geo_ind_lp_sparse(
    const std::vector<geo::Point>& centers, const std::vector<double>& prior,
    const std::vector<std::pair<std::size_t, std::size_t>>& directed_edges,
    double edge_epsilon) {
  const std::size_t k = centers.size();
  const std::size_t vars = k * k;
  opt::SparseLpProblem problem;
  problem.objective.assign(vars, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      problem.objective[i * k + j] =
          prior[i] * geo::distance(centers[i], centers[j]);
    }
  }

  problem.eq_lhs = opt::CsrMatrix(vars);
  problem.eq_rhs.assign(k, 1.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      problem.eq_lhs.append(i * k + j, 1.0);
    }
    problem.eq_lhs.finish_row();
  }

  // Two nonzeros per ratio row; CSR wants them in column order.
  problem.ub_lhs = opt::CsrMatrix(vars);
  problem.ub_rhs.assign(directed_edges.size() * k, 0.0);
  for (const auto& [i, i_prime] : directed_edges) {
    const double bound =
        std::exp(edge_epsilon * geo::distance(centers[i], centers[i_prime]));
    for (std::size_t j = 0; j < k; ++j) {
      if (i < i_prime) {
        problem.ub_lhs.append(i * k + j, 1.0);
        problem.ub_lhs.append(i_prime * k + j, -bound);
      } else {
        problem.ub_lhs.append(i_prime * k + j, -bound);
        problem.ub_lhs.append(i * k + j, 1.0);
      }
      problem.ub_lhs.finish_row();
    }
  }
  return problem;
}

OptimalGeoIndMechanism::OptimalGeoIndMechanism(OptimalMechanismConfig config)
    : config_(std::move(config)) {
  util::require(config_.per_side >= 2, "grid needs at least 2x2 cells");
  util::require_positive(config_.cell_spacing_m, "cell spacing");
  util::require_positive(config_.epsilon, "epsilon");

  const std::size_t side = config_.per_side;
  const std::size_t k = side * side;
  normalize_prior(config_.prior, k);
  centers_ = grid_centers(side, config_.cell_spacing_m);

  // geo-IND constraints on directed 8-neighbor edges, budget deflated by
  // the spanner dilation so chaining yields the full-epsilon guarantee.
  const double edge_epsilon = config_.epsilon / kOctileDilation;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      const std::size_t i = row * side + col;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const int nr = static_cast<int>(row) + dr;
          const int nc = static_cast<int>(col) + dc;
          if (nr < 0 || nc < 0 || nr >= static_cast<int>(side) ||
              nc >= static_cast<int>(side)) {
            continue;
          }
          edges.emplace_back(i, static_cast<std::size_t>(nr) * side +
                                    static_cast<std::size_t>(nc));
        }
      }
    }
  }

  const opt::LpProblem problem =
      build_geo_ind_lp_dense(centers_, config_.prior, edges, edge_epsilon);

  // The geo-IND rows are all rhs-0, so the LP is extremely degenerate;
  // a graded perturbation keeps the simplex moving (see SimplexOptions).
  // The induced slack per constraint is <= 1e-8 * rows ~ 1e-5, absorbed by
  // the row renormalization below and by the spanner's dilation margin.
  opt::SimplexOptions lp_options;
  lp_options.degeneracy_perturbation = 1e-8;
  lp_options.max_iterations = 200000;
  const opt::LpSolution solution = opt::solve(problem, lp_options);
  if (solution.status != opt::LpStatus::kOptimal) {
    throw std::runtime_error(
        "optimal mechanism LP did not reach optimality");
  }

  channel_.assign(k, std::vector<double>(k, 0.0));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      channel_[i][j] = solution.x[i * k + j];
    }
    clean_row(channel_[i]);
  }
  quality_loss_ = solution.objective;
}

OptimalGeoIndMechanism OptimalGeoIndMechanism::build_approximate(
    const ApproximateOptimalConfig& config, ApproximateBuildReport* report) {
  util::require(config.per_side >= 2, "grid needs at least 2x2 cells");
  util::require_positive(config.cell_spacing_m, "cell spacing");
  util::require_positive(config.epsilon, "epsilon");
  util::require(config.spanner_dilation > 1.0,
                "spanner dilation must exceed 1");
  util::require(config.window_side >= 2, "window side must be at least 2");
  util::require(2 * config.window_overlap < config.window_side,
                "window overlap must be less than half the window side");
  util::require(config.boundary_smoothing >= 0.0 &&
                    config.boundary_smoothing < 1.0,
                "boundary smoothing must lie in [0, 1)");

  util::Timer construct_timer;
  const std::size_t side = config.per_side;
  const std::size_t k = side * side;
  std::vector<double> prior = config.prior;
  normalize_prior(prior, k);

  OptimalGeoIndMechanism mechanism;
  mechanism.approximate_ = true;
  mechanism.config_ = {config.per_side, config.cell_spacing_m, config.epsilon,
                       prior};
  mechanism.centers_ = grid_centers(side, config.cell_spacing_m);
  mechanism.channel_.assign(k, std::vector<double>(k, 0.0));

  ApproximateBuildReport local_report;
  ApproximateBuildReport& rep = report != nullptr ? *report : local_report;
  rep = ApproximateBuildReport{};
  rep.cells = k;
  rep.intra_window_epsilon = config.epsilon;

  const std::vector<Window> windows =
      make_windows(side, config.window_side, config.window_overlap);
  rep.windows = windows.size();

  // Same-shape windows share constraints: cell spacing is uniform, so a
  // window's LP depends only on its (height, width). The resident solver
  // then turns every later same-shape window into a warm phase-2 restart
  // (or a pure reuse when the local prior matches too).
  std::map<std::pair<std::size_t, std::size_t>, ShapeEntry> shapes;
  double solve_seconds = 0.0;

  for (const Window& window : windows) {
    const std::size_t h = window.height();
    const std::size_t w = window.width();
    const std::size_t kw = h * w;
    ShapeEntry& entry = shapes[{h, w}];
    if (entry.local_centers.empty()) {
      // First window of this shape: build the spanner and constraints.
      entry.local_centers.reserve(kw);
      for (std::size_t r = 0; r < h; ++r) {
        for (std::size_t c = 0; c < w; ++c) {
          entry.local_centers.push_back(
              {static_cast<double>(c) * config.cell_spacing_m,
               static_cast<double>(r) * config.cell_spacing_m});
        }
      }
      entry.spanner = Spanner::build(entry.local_centers,
                                     {.target_dilation =
                                          config.spanner_dilation});
      entry.directed_edges.reserve(2 * entry.spanner->edges().size());
      for (const SpannerEdge& e : entry.spanner->edges()) {
        entry.directed_edges.emplace_back(e.a, e.b);
        entry.directed_edges.emplace_back(e.b, e.a);
      }
      // Deflate by the *certified* dilation (<= target): chaining the
      // edge constraints along spanner paths then yields the full
      // epsilon between every cell pair inside the window.
      const double edge_epsilon = config.epsilon / entry.spanner->dilation();
      entry.problem = build_geo_ind_lp_sparse(
          entry.local_centers, std::vector<double>(kw, 1.0 / kw),
          entry.directed_edges, edge_epsilon);
    }
    rep.dilation = std::max(rep.dilation, entry.spanner->dilation());

    // Restrict the global prior to the window and renormalize; a zero-mass
    // window (prior concentrated elsewhere) falls back to uniform.
    std::vector<double> local_prior(kw, 0.0);
    double mass = 0.0;
    for (std::size_t r = 0; r < h; ++r) {
      for (std::size_t c = 0; c < w; ++c) {
        const std::size_t g = (window.row0 + r) * side + (window.col0 + c);
        local_prior[r * w + c] = prior[g];
        mass += prior[g];
      }
    }
    if (mass > 0.0) {
      for (double& p : local_prior) p /= mass;
    } else {
      local_prior.assign(kw, 1.0 / static_cast<double>(kw));
    }

    std::vector<double> objective(kw * kw);
    for (std::size_t i = 0; i < kw; ++i) {
      for (std::size_t j = 0; j < kw; ++j) {
        objective[i * kw + j] =
            local_prior[i] *
            geo::distance(entry.local_centers[i], entry.local_centers[j]);
      }
    }

    if (objective == entry.last_objective) {
      ++rep.window_reuse_hits;  // identical prior: channel carries over
    } else {
      util::Timer solve_timer;
      opt::LpSolution solution;
      if (!entry.solver.has_value()) {
        entry.problem.objective = objective;
        entry.solver.emplace(entry.problem, config.simplex);
        solution = entry.solver->solve();
        ++rep.window_solves_cold;
      } else {
        solution = entry.solver->resolve(objective);
        ++rep.window_solves_warm;
      }
      solve_seconds += solve_timer.elapsed_seconds();
      if (solution.status != opt::LpStatus::kOptimal) {
        throw std::runtime_error(
            "approximate optimal mechanism window LP did not reach "
            "optimality");
      }
      rep.lp_variables += kw * kw;
      rep.lp_constraints +=
          entry.problem.eq_rhs.size() + entry.problem.ub_rhs.size();
      rep.solve_stats.phase1_iterations += solution.stats.phase1_iterations;
      rep.solve_stats.phase2_iterations += solution.stats.phase2_iterations;
      rep.solve_stats.pivots += solution.stats.pivots;

      entry.last_channel.assign(kw, std::vector<double>(kw, 0.0));
      for (std::size_t i = 0; i < kw; ++i) {
        for (std::size_t j = 0; j < kw; ++j) {
          entry.last_channel[i][j] = solution.x[i * kw + j];
        }
        clean_row(entry.last_channel[i]);
      }
      entry.last_objective = std::move(objective);
    }

    // Stitch: cells in the window's core take their channel row from this
    // window's solution (support restricted to the window's cells).
    for (std::size_t r = window.core_row0; r < window.core_row1; ++r) {
      for (std::size_t c = window.core_col0; c < window.core_col1; ++c) {
        const std::size_t g = r * side + c;
        const std::size_t l = (r - window.row0) * w + (c - window.col0);
        std::vector<double>& row = mechanism.channel_[g];
        const std::vector<double>& local_row = entry.last_channel[l];
        for (std::size_t lr = 0; lr < h; ++lr) {
          for (std::size_t lc = 0; lc < w; ++lc) {
            row[(window.row0 + lr) * side + (window.col0 + lc)] =
                local_row[lr * w + lc];
          }
        }
      }
    }
  }

  // Cross-seam smoothing: the LP certifies geo-IND inside each window but
  // rows of adjacent windows can disagree arbitrarily at the seam. Mixing
  // in a uniform floor bounds every density ratio by (1-g+g/k)/(g/k), which
  // the audit below converts into a measured boundary epsilon.
  if (windows.size() > 1 && config.boundary_smoothing > 0.0) {
    const double g = config.boundary_smoothing;
    const double floor = g / static_cast<double>(k);
    for (std::vector<double>& row : mechanism.channel_) {
      for (double& p : row) p = (1.0 - g) * p + floor;
    }
  }

  // Prior-weighted expected quality loss of the final (stitched, smoothed)
  // channel, measured over the *global* distances.
  double quality_loss = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    if (prior[i] == 0.0) continue;
    double row_loss = 0.0;
    const std::vector<double>& row = mechanism.channel_[i];
    for (std::size_t j = 0; j < k; ++j) {
      if (row[j] > 0.0) {
        row_loss +=
            row[j] * geo::distance(mechanism.centers_[i], mechanism.centers_[j]);
      }
    }
    quality_loss += prior[i] * row_loss;
  }
  mechanism.quality_loss_ = quality_loss;
  mechanism.build_dilation_ = rep.dilation;
  rep.quality_loss = quality_loss;

  // Boundary audit: the effective geo-IND budget between 8-neighbor cells
  // on the final channel (the honest cross-seam guarantee).
  double boundary_epsilon = 0.0;
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      const std::size_t i = row * side + col;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          const int nr = static_cast<int>(row) + dr;
          const int nc = static_cast<int>(col) + dc;
          if (nr < 0 || nc < 0 || nr >= static_cast<int>(side) ||
              nc >= static_cast<int>(side)) {
            continue;
          }
          const std::size_t i2 = static_cast<std::size_t>(nr) * side +
                                 static_cast<std::size_t>(nc);
          double max_ratio = 0.0;
          for (std::size_t j = 0; j < k; ++j) {
            const double num = mechanism.channel_[i][j];
            const double den = mechanism.channel_[i2][j];
            if (den <= 0.0) {
              if (num > 1e-15) {
                max_ratio = std::numeric_limits<double>::infinity();
                break;
              }
              continue;
            }
            max_ratio = std::max(max_ratio, num / den);
          }
          if (max_ratio > 1.0) {
            const double d =
                geo::distance(mechanism.centers_[i], mechanism.centers_[i2]);
            boundary_epsilon =
                std::max(boundary_epsilon, std::log(max_ratio) / d);
          }
        }
      }
    }
  }
  rep.boundary_epsilon = boundary_epsilon;

  rep.solve_seconds = solve_seconds;
  rep.construct_seconds = construct_timer.elapsed_seconds();

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("opt.mechanism_builds").add(1);
  registry.counter("opt.windows_stitched").add(rep.windows);
  registry.counter("opt.window_solves_cold").add(rep.window_solves_cold);
  registry.counter("opt.window_solves_warm").add(rep.window_solves_warm);
  registry.counter("opt.window_reuse_hits").add(rep.window_reuse_hits);
  registry.histogram("opt.construct_us").record(rep.construct_seconds * 1e6);

  return mechanism;
}

std::size_t OptimalGeoIndMechanism::nearest_cell(geo::Point p) const {
  std::size_t best = 0;
  double best_d = geo::distance_squared(p, centers_[0]);
  for (std::size_t i = 1; i < centers_.size(); ++i) {
    const double d = geo::distance_squared(p, centers_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::vector<geo::Point> OptimalGeoIndMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  const std::vector<double>& row = channel_[nearest_cell(real_location)];
  double u = engine.uniform();
  std::size_t j = row.size() - 1;
  for (std::size_t c = 0; c < row.size(); ++c) {
    u -= row[c];
    if (u <= 0.0) {
      j = c;
      break;
    }
  }
  return {centers_[j]};
}

std::string OptimalGeoIndMechanism::name() const {
  if (approximate_) {
    return "approx-optimal-geo-ind(k=" + std::to_string(centers_.size()) +
           ",eps=" + util::format_double(config_.epsilon, 5) +
           "/m,delta=" + util::format_double(build_dilation_, 3) + ")";
  }
  return "optimal-geo-ind(k=" + std::to_string(centers_.size()) +
         ",eps=" + util::format_double(config_.epsilon, 5) + "/m)";
}

double OptimalGeoIndMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  // From the central cell, find the smallest radius covering 1 - alpha of
  // the output mass.
  const std::size_t center = nearest_cell({0.0, 0.0});
  const std::vector<double>& row = channel_[center];
  std::vector<std::pair<double, double>> by_distance;  // (distance, prob)
  by_distance.reserve(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    by_distance.emplace_back(
        geo::distance(centers_[center], centers_[j]), row[j]);
  }
  std::sort(by_distance.begin(), by_distance.end());
  double mass = 0.0;
  for (const auto& [d, p] : by_distance) {
    mass += p;
    if (mass >= 1.0 - alpha) return d;
  }
  return by_distance.back().first;
}

const std::vector<double>& OptimalGeoIndMechanism::channel_row(
    std::size_t i) const {
  util::require(i < channel_.size(), "channel row out of range");
  return channel_[i];
}

geo::Point OptimalGeoIndMechanism::cell_center(std::size_t i) const {
  util::require(i < centers_.size(), "cell index out of range");
  return centers_[i];
}

double OptimalGeoIndMechanism::max_constraint_violation() const {
  double worst = -1e300;
  for (std::size_t i = 0; i < channel_.size(); ++i) {
    for (std::size_t i2 = 0; i2 < channel_.size(); ++i2) {
      if (i == i2) continue;
      const double bound = std::exp(
          config_.epsilon * geo::distance(centers_[i], centers_[i2]));
      for (std::size_t j = 0; j < channel_.size(); ++j) {
        worst = std::max(worst, channel_[i][j] - bound * channel_[i2][j]);
      }
    }
  }
  return worst;
}

}  // namespace privlocad::lppm
