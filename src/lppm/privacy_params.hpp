// Privacy parameters and noise calibration.
//
// Two geo-indistinguishability notions coexist in the paper:
//
//  * epsilon-geo-IND (Definition 1, Andres et al.): the per-report notion
//    the planar Laplace mechanism satisfies. Users express it as a pair
//    (l, r) -- privacy level l within radius r -- with epsilon = l / r.
//
//  * (r, epsilon, delta, n)-geo-IND (Definition 3): the bounded, n-output
//    notion Edge-PrivLocAd's n-fold Gaussian mechanism satisfies. For all
//    r-neighbouring locations p0, p1 and output sets Q of size n:
//      Pr[LPPM(p0) = Q] <= e^eps * Pr[LPPM(p1) = Q] + delta.
//
// Calibration (paper Lemma 1 and Theorem 2):
//   1-fold: sigma = (r / eps) * sqrt(ln(1/delta^2) + eps)
//   n-fold: sigma = sqrt(n) * (r / eps) * sqrt(ln(1/delta^2) + eps)
// The n-fold scaling follows from the sufficient-statistic argument: the
// sample mean of the n outputs is N(p, sigma^2/n) and must itself satisfy
// the 1-fold bound.
#pragma once

#include <cstddef>

namespace privlocad::lppm {

/// Per-report geo-IND requirement (l, r), epsilon = l / r in 1/meters.
struct GeoIndParams {
  double level;      ///< privacy level l (dimensionless, e.g. ln 4)
  double radius_m;   ///< protection radius r in meters

  /// epsilon = l / r, the Definition-1 privacy parameter in 1/m.
  double epsilon() const { return level / radius_m; }
};

/// Bounded multi-output requirement of Definition 3.
struct BoundedGeoIndParams {
  double radius_m = 500.0;  ///< r: neighbouring distance in meters
  double epsilon = 1.0;     ///< eps: privacy budget (dimensionless)
  double delta = 0.01;      ///< delta: failure probability
  std::size_t n = 10;       ///< number of simultaneous outputs

  /// Throws InvalidArgument unless all fields are in-domain
  /// (r > 0, eps > 0, 0 < delta < 1, n >= 1).
  void validate() const;
};

/// Lemma 1 calibration: the sigma making a single Gaussian release
/// (r, eps, delta, 1)-geo-IND.
double one_fold_sigma(double radius_m, double epsilon, double delta);

/// Theorem 2 calibration: the per-output sigma making an n-output Gaussian
/// release (r, eps, delta, n)-geo-IND. Equals sqrt(n) * one_fold_sigma.
double n_fold_sigma(const BoundedGeoIndParams& params);

/// Sigma under the plain-composition baseline: each of the n outputs is
/// calibrated individually to (r, eps/n, delta/n, 1)-geo-IND, which the
/// basic composition theorem then lifts to (r, eps, delta, n) in total.
double composition_sigma(const BoundedGeoIndParams& params);

}  // namespace privlocad::lppm
