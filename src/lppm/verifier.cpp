#include "lppm/verifier.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

/// Draws `samples` first outputs and projects them onto the x axis
/// (the p0 -> p1 displacement direction).
std::vector<double> sample_projections(rng::Engine& engine,
                                       const Mechanism& mechanism,
                                       geo::Point input,
                                       std::size_t samples) {
  std::vector<double> xs;
  xs.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    xs.push_back(mechanism.obfuscate(engine, input).front().x);
  }
  return xs;
}

}  // namespace

VerifierReport verify_geo_ind(rng::Engine& engine,
                              const Mechanism& mechanism,
                              geo::Point base_location,
                              const VerifierConfig& config) {
  util::require_positive(config.radius_m, "verifier radius");
  util::require_positive(config.epsilon, "verifier epsilon");
  util::require(config.delta >= 0.0 && config.delta < 1.0,
                "verifier delta must be in [0, 1)");
  util::require(config.samples >= 100, "verifier needs >= 100 samples");
  util::require(config.bins >= 2, "verifier needs >= 2 bins");

  const geo::Point p0 = base_location;
  const geo::Point p1 = base_location + geo::Point{config.radius_m, 0.0};

  const std::vector<double> xs0 =
      sample_projections(engine, mechanism, p0, config.samples);
  const std::vector<double> xs1 =
      sample_projections(engine, mechanism, p1, config.samples);

  const auto [lo_it, hi_it] = std::minmax_element(xs0.begin(), xs0.end());
  double lo = *lo_it, hi = *hi_it;
  for (const double x : xs1) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double width = (hi - lo) / static_cast<double>(config.bins);
  util::require(width > 0.0, "mechanism outputs are degenerate");

  // Bin masses.
  std::vector<double> mass0(config.bins, 0.0), mass1(config.bins, 0.0);
  const double unit = 1.0 / static_cast<double>(config.samples);
  auto bin_of = [&](double x) {
    return std::min(config.bins - 1,
                    static_cast<std::size_t>((x - lo) / width));
  };
  for (const double x : xs0) mass0[bin_of(x)] += unit;
  for (const double x : xs1) mass1[bin_of(x)] += unit;

  // Test sets: every single bin plus every prefix/suffix union (half-
  // lines), in both privacy-loss directions.
  const double e_eps = std::exp(config.epsilon);
  const double budget = config.delta + config.estimation_slack;
  VerifierReport report;

  auto test_set = [&](double a, double b) {
    report.worst_excess =
        std::max({report.worst_excess, a - (e_eps * b + budget),
                  b - (e_eps * a + budget)});
    report.sets_tested += 2;
  };

  double prefix0 = 0.0, prefix1 = 0.0;
  for (std::size_t b = 0; b < config.bins; ++b) {
    test_set(mass0[b], mass1[b]);
    prefix0 += mass0[b];
    prefix1 += mass1[b];
    test_set(prefix0, prefix1);                    // prefix half-line
    test_set(1.0 - prefix0, 1.0 - prefix1);        // suffix half-line
  }

  report.consistent = report.worst_excess <= 0.0;
  // Clamp the reported excess at zero from below for readability.
  report.worst_excess = std::max(report.worst_excess, 0.0);
  return report;
}

}  // namespace privlocad::lppm
