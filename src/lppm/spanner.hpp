// Certified delta-spanners over location cells.
//
// Following *Trading Optimality for Performance in Location Privacy*
// (Chatzikokolakis, Elsalamouny, Palamidessi -- PAPERS.md), the optimal
// geo-IND LP does not need a ratio constraint for every cell pair: if a
// graph G over the cells has dilation <= delta (every pair is connected
// by a path of length <= delta times its Euclidean distance), then
// enforcing the constraints only on G's edges with the budget deflated to
// epsilon / delta implies every pairwise constraint at the full epsilon
// by chaining along the path. Constraint count drops from O(k^2) pairs to
// O(|E|) edges.
//
// Construction is the classic greedy spanner -- scan candidate pairs by
// increasing length, add an edge whenever the current graph distance
// exceeds delta times the Euclidean distance -- followed by a
// certification pass (all-pairs shortest paths) that measures the true
// dilation and adds direct edges for any violating pair until the bound
// holds. The certificate makes the bound unconditional: dilation() is a
// measured property of the returned graph, not a promise of the
// heuristic, so callers can safely deflate their privacy budget by it.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::lppm {

struct SpannerConfig {
  /// Target dilation delta (> 1). Smaller keeps more utility in the
  /// deflated LP but needs more edges (more LP constraints).
  double target_dilation = 1.5;

  /// Greedy candidate pairs are limited to Euclidean length at most this
  /// factor times the minimum inter-node distance (0 = consider all
  /// pairs). Long pairs are almost always already spanned through chains
  /// of short edges, so pruning them cuts construction from O(k^2)
  /// Dijkstras to O(k) without affecting the certified bound -- the
  /// certification pass repairs any pair the heuristic missed.
  double candidate_radius_factor = 3.5;
};

struct SpannerEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double length = 0.0;  ///< Euclidean distance between the endpoints
};

class Spanner {
 public:
  /// Builds a certified delta-spanner over `nodes` (>= 2 distinct
  /// points). Throws util::InvalidArgument on bad config, duplicate
  /// nodes, or an empty node set.
  static Spanner build(const std::vector<geo::Point>& nodes,
                       const SpannerConfig& config = {});

  /// Undirected edges, each listed once with a < b.
  const std::vector<SpannerEdge>& edges() const { return edges_; }

  /// Certified dilation: the measured maximum over all node pairs of
  /// graph distance / Euclidean distance. Always <= the configured
  /// target (the build repairs violations with direct edges).
  double dilation() const { return dilation_; }

  double target_dilation() const { return target_dilation_; }
  std::size_t node_count() const { return node_count_; }

 private:
  Spanner() = default;

  std::vector<SpannerEdge> edges_;
  double dilation_ = 1.0;
  double target_dilation_ = 1.0;
  std::size_t node_count_ = 0;
};

}  // namespace privlocad::lppm
