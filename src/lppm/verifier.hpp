// Empirical geo-indistinguishability verifier.
//
// A DP-tester for location mechanisms: estimates, by sampling, whether a
// mechanism's output distributions for two r-neighbouring inputs respect
//     Pr[M(p0) in S] <= e^eps * Pr[M(p1) in S] + delta
// over a family of test sets S (grid cells and their unions along the
// p0->p1 axis, where violations concentrate). A sampling verifier can
// only ever REFUTE a privacy claim (statistically) -- it cannot prove it
// -- but it reliably catches calibration bugs: a sigma off by 2x, a
// mechanism adding noise to only one coordinate, a forgotten sqrt(n).
// Used by the test suite against every mechanism in the library, with a
// deliberately broken mechanism as the negative control.
#pragma once

#include "lppm/mechanism.hpp"

namespace privlocad::lppm {

struct VerifierConfig {
  /// Neighbouring distance r: p1 = p0 + (r, 0).
  double radius_m = 500.0;

  /// The claim to test.
  double epsilon = 1.0;
  double delta = 0.01;

  /// Samples drawn from each input's output distribution.
  std::size_t samples = 20000;

  /// Output-space discretization along the p0->p1 axis (1-D projection:
  /// the worst-case sets for location-scale mechanisms are half-planes
  /// orthogonal to the input displacement).
  std::size_t bins = 64;

  /// Statistical slack added to delta to absorb sampling noise
  /// (~ a few / sqrt(samples)).
  double estimation_slack = 0.02;
};

struct VerifierReport {
  bool consistent = true;   ///< no test set refuted the claim
  double worst_excess = 0.0;  ///< max Pr0(S) - (e^eps Pr1(S) + delta), <= slack when consistent
  std::size_t sets_tested = 0;
};

/// Tests the (r, eps, delta)-geo-IND claim for `mechanism` around
/// `base_location`. Multi-output mechanisms are tested on their FIRST
/// output's marginal (the per-release view an observer gets).
VerifierReport verify_geo_ind(rng::Engine& engine,
                              const Mechanism& mechanism,
                              geo::Point base_location,
                              const VerifierConfig& config = {});

}  // namespace privlocad::lppm
