// The two baseline mechanisms of the paper's evaluation (Section VII-A).
//
// 1. Naive post-processing: obfuscate once with the 1-fold (Lemma 1)
//    Gaussian, then uniformly sample n locations in a disk around that
//    single obfuscated point. Post-processing preserves privacy, but all n
//    outputs inherit the full displacement of the single Gaussian draw, so
//    the whole candidate set can land far from the true location.
//
// 2. Plain DP composition: release n independent Gaussian outputs, each
//    calibrated to (r, eps/n, delta/n, 1)-geo-IND so basic composition
//    yields (r, eps, delta, n) overall. The per-output sigma then grows
//    roughly linearly in n (vs. sqrt(n) under the sufficient-statistic
//    analysis), which is why the paper finds this baseline's utilization
//    rate collapses as n grows.
#pragma once

#include "lppm/mechanism.hpp"
#include "lppm/privacy_params.hpp"

namespace privlocad::lppm {

class NaivePostProcessingMechanism final : public Mechanism {
 public:
  /// `scatter_radius_m` is the disk radius for the uniform re-sampling
  /// around the single obfuscated point. The paper samples "in a certain
  /// radius"; we default it to the geo-IND radius r (configurable for the
  /// ablation bench).
  NaivePostProcessingMechanism(BoundedGeoIndParams params,
                               double scatter_radius_m);

  /// Convenience: scatter radius defaults to params.radius_m.
  explicit NaivePostProcessingMechanism(BoundedGeoIndParams params);

  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real_location) const override;

  std::size_t output_count() const override { return params_.n; }
  std::string name() const override;

  /// Tail radius of the anchor displacement plus the maximal scatter:
  /// a conservative bound on one output's displacement.
  double tail_radius(double alpha) const override;

  double sigma() const { return sigma_; }
  double scatter_radius() const { return scatter_radius_; }

 private:
  BoundedGeoIndParams params_;
  double sigma_;           // Lemma-1 sigma of the single anchor draw
  double scatter_radius_;  // uniform re-sampling disk radius
};

class PlainCompositionMechanism final : public Mechanism {
 public:
  explicit PlainCompositionMechanism(BoundedGeoIndParams params);

  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real_location) const override;

  /// Batched release, same stream as obfuscate().
  void obfuscate_into(rng::Engine& engine, geo::Point real_location,
                      std::vector<geo::Point>& out) const override;

  std::size_t output_count() const override { return params_.n; }
  std::string name() const override;
  double tail_radius(double alpha) const override;

  /// The inflated per-output sigma under (eps/n, delta/n) calibration.
  double sigma() const { return sigma_; }

 private:
  BoundedGeoIndParams params_;
  double sigma_;
};

}  // namespace privlocad::lppm
