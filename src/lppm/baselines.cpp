#include "lppm/baselines.hpp"

#include <cmath>

#include "rng/samplers.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {

NaivePostProcessingMechanism::NaivePostProcessingMechanism(
    BoundedGeoIndParams params, double scatter_radius_m)
    : params_(params),
      sigma_(one_fold_sigma(params.radius_m, params.epsilon, params.delta)),
      scatter_radius_(scatter_radius_m) {
  params.validate();
  util::require_non_negative(scatter_radius_m, "scatter radius");
}

NaivePostProcessingMechanism::NaivePostProcessingMechanism(
    BoundedGeoIndParams params)
    : NaivePostProcessingMechanism(params, params.radius_m) {}

std::vector<geo::Point> NaivePostProcessingMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  // One private anchor draw; everything after is privacy-free
  // post-processing (it never touches real_location again).
  const geo::Point anchor =
      real_location + rng::gaussian_noise(engine, sigma_);
  std::vector<geo::Point> outputs;
  outputs.reserve(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    outputs.push_back(anchor + rng::uniform_in_disk(engine, scatter_radius_));
  }
  return outputs;
}

std::string NaivePostProcessingMechanism::name() const {
  return "naive-post-processing(n=" + std::to_string(params_.n) +
         ",eps=" + util::format_double(params_.epsilon, 2) +
         ",scatter=" + util::format_double(scatter_radius_, 0) + "m)";
}

double NaivePostProcessingMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  // Anchor Rayleigh tail plus the deterministic scatter bound.
  return sigma_ * std::sqrt(-2.0 * std::log(alpha)) + scatter_radius_;
}

PlainCompositionMechanism::PlainCompositionMechanism(
    BoundedGeoIndParams params)
    : params_(params), sigma_(composition_sigma(params)) {}

std::vector<geo::Point> PlainCompositionMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  std::vector<geo::Point> outputs;
  obfuscate_into(engine, real_location, outputs);
  return outputs;
}

void PlainCompositionMechanism::obfuscate_into(
    rng::Engine& engine, geo::Point real_location,
    std::vector<geo::Point>& out) const {
  out.resize(params_.n);
  rng::fill_gaussian_noise_2d(engine, sigma_, out, real_location);
}

std::string PlainCompositionMechanism::name() const {
  return "plain-composition(n=" + std::to_string(params_.n) +
         ",eps=" + util::format_double(params_.epsilon, 2) + ")";
}

double PlainCompositionMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  return sigma_ * std::sqrt(-2.0 * std::log(alpha));
}

}  // namespace privlocad::lppm
