// Optimal geo-IND mechanism (Bordenabe, Chatzikokolakis, Palamidessi --
// CCS 2014), the related-work comparator the paper positions against.
//
// On a discrete grid of k cells, the mechanism is the k x k stochastic
// channel X minimizing the prior-weighted expected quality loss
//     sum_i pi_i sum_j X_ij d(i, j)
// subject to the geo-IND constraints
//     X_ij <= e^{eps d(i, i')} X_i'j        for all i, i', j.
// Enforcing all O(k^2) pairs explodes the LP, so (following the paper's
// spanner idea) constraints are generated only for 8-neighbor grid edges
// with the budget deflated by the octile dilation factor 1/cos(pi/8):
// chaining edge constraints along a grid path then implies every pairwise
// constraint at the full epsilon. The constructor verifies the resulting
// channel against ALL pairs and reports the worst violation.
//
// This mechanism is one-time (per-release) like the planar Laplace; the
// ablation bench compares their quality loss at equal epsilon, reproducing
// the related work's "optimal beats Laplace under an informative prior".
#pragma once

#include "lppm/mechanism.hpp"
#include "opt/simplex.hpp"

namespace privlocad::lppm {

struct OptimalMechanismConfig {
  /// Grid is per_side x per_side cells; k = per_side^2.
  std::size_t per_side = 3;

  /// Distance between adjacent cell centers, meters.
  double cell_spacing_m = 250.0;

  /// geo-IND epsilon in 1/meters (e.g. l / r).
  double epsilon = std::log(4.0) / 200.0;

  /// Prior over cells (size k); empty means uniform.
  std::vector<double> prior;
};

class OptimalGeoIndMechanism final : public Mechanism {
 public:
  /// Builds and solves the LP; throws std::runtime_error if the solver
  /// fails (the problem is always feasible -- the identity-free uniform
  /// channel satisfies every constraint -- so failure means a bug).
  explicit OptimalGeoIndMechanism(OptimalMechanismConfig config);

  /// Snaps the real location to the nearest grid cell and samples an
  /// output cell from that row of the optimal channel.
  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real_location) const override;

  std::size_t output_count() const override { return 1; }
  std::string name() const override;

  /// Radius covering 1 - alpha of the output mass from a central cell.
  double tail_radius(double alpha) const override;

  /// The LP objective: prior-weighted expected distance truth -> output.
  double expected_quality_loss() const { return quality_loss_; }

  /// Channel row for cell `i` (selection probabilities over cells).
  const std::vector<double>& channel_row(std::size_t i) const;

  /// Center coordinates of cell `i`.
  geo::Point cell_center(std::size_t i) const;

  std::size_t cell_count() const { return centers_.size(); }

  /// max over ALL cell pairs (i, i') and outputs j of
  /// X_ij - e^{eps d(i,i')} X_i'j; <= tolerance when the spanner trick
  /// worked (verified in tests).
  double max_constraint_violation() const;

 private:
  std::size_t nearest_cell(geo::Point p) const;

  OptimalMechanismConfig config_;
  std::vector<geo::Point> centers_;
  std::vector<std::vector<double>> channel_;  // k rows of k probabilities
  double quality_loss_ = 0.0;
};

}  // namespace privlocad::lppm
