// Optimal geo-IND mechanism (Bordenabe, Chatzikokolakis, Palamidessi --
// CCS 2014), the related-work comparator the paper positions against.
//
// On a discrete grid of k cells, the mechanism is the k x k stochastic
// channel X minimizing the prior-weighted expected quality loss
//     sum_i pi_i sum_j X_ij d(i, j)
// subject to the geo-IND constraints
//     X_ij <= e^{eps d(i, i')} X_i'j        for all i, i', j.
// Enforcing all O(k^2) pairs explodes the LP, so (following the
// spanner idea of Chatzikokolakis et al.) constraints are generated only
// for graph edges with the budget deflated by the graph's dilation:
// chaining edge constraints along a path then implies every pairwise
// constraint at the full epsilon.
//
// Two construction paths share the LP assembly:
//  - The exact constructor: 8-neighbor edges (octile dilation), dense
//    two-phase simplex. The reference -- O(k^2) variables in a dense
//    tableau keeps it to tiny grids (<= ~4x4 in practice).
//  - build_approximate(): per-window greedy delta-spanners with a
//    *certified* dilation (lppm/spanner.hpp), sparse CSR constraints
//    solved by the revised simplex, and -- past one window -- an
//    overlapping sub-grid decomposition whose windows are stitched into
//    the global channel. Windows of the same shape share one resident
//    solver: identical constraints mean later windows warm-start from
//    the previous optimal basis (prior changes only the objective), and
//    windows with identical local priors reuse the channel outright.
//    This is what puts the optimal baseline on 1000+ cell grids in
//    seconds; the cost is that geo-IND is certified *within* a window
//    while across seams the guarantee is only the measured/smoothed
//    bound recorded in the build report (see docs/API.md).
//
// This mechanism is one-time (per-release) like the planar Laplace; the
// ablation bench compares their quality loss at equal epsilon.
#pragma once

#include "lppm/mechanism.hpp"
#include "lppm/spanner.hpp"
#include "opt/revised_simplex.hpp"
#include "opt/simplex.hpp"
#include "opt/sparse.hpp"

namespace privlocad::lppm {

struct OptimalMechanismConfig {
  /// Grid is per_side x per_side cells; k = per_side^2.
  std::size_t per_side = 3;

  /// Distance between adjacent cell centers, meters.
  double cell_spacing_m = 250.0;

  /// geo-IND epsilon in 1/meters (e.g. l / r).
  double epsilon = std::log(4.0) / 200.0;

  /// Prior over cells (size k); empty means uniform.
  std::vector<double> prior;
};

/// Configuration of the scalable approximate construction.
struct ApproximateOptimalConfig {
  std::size_t per_side = 32;
  double cell_spacing_m = 250.0;
  double epsilon = std::log(4.0) / 200.0;
  std::vector<double> prior;  ///< size k; empty means uniform

  /// Target dilation for the per-window spanners (> 1). The certified
  /// (measured) dilation deflates epsilon, so smaller targets cost more
  /// LP constraints but waste less budget.
  double spanner_dilation = 1.5;

  /// Decomposition window side in cells. Grids with per_side <=
  /// window_side solve as a single seamless window. The revised simplex
  /// carries a dense basis inverse of (window_cells * (1 + spanner
  /// degree))^2 doubles, so windows are deliberately small.
  std::size_t window_side = 4;

  /// Cells of overlap between adjacent windows; each cell's channel row
  /// comes from the window it is most interior to. Must satisfy
  /// 2 * window_overlap < window_side.
  std::size_t window_overlap = 1;

  /// Mass floor mixed into every stitched row ((1 - g) X + g U over all
  /// cells) when the grid decomposes into > 1 window, so cross-seam
  /// density ratios stay finite. 0 disables; must be < 1.
  double boundary_smoothing = 1e-4;

  /// Solver options for the window LPs.
  opt::SimplexOptions simplex{.max_iterations = 200000,
                              .tolerance = 1e-9,
                              .degeneracy_perturbation = 1e-8};
};

/// What build_approximate() measured while constructing the channel.
struct ApproximateBuildReport {
  /// Max certified spanner dilation across windows; epsilon was deflated
  /// by (at most) this factor, and the recorded utility yardstick is
  /// quality_loss <= dilation * exact quality loss (the continuous-plane
  /// scaling argument; pinned empirically by ApproximateOptimalTest).
  double dilation = 1.0;

  /// Prior-weighted expected distance of the stitched channel.
  double quality_loss = 0.0;

  /// Full epsilon certified between cells served by one window. Across
  /// seams see boundary_epsilon.
  double intra_window_epsilon = 0.0;

  /// Measured max over adjacent cell pairs and outputs of
  /// ln(X_ij / X_i'j) / d(i, i') on the final (smoothed) channel --
  /// the effective geo-IND budget across window seams. Equals
  /// intra_window_epsilon (up to solver tolerance) when the build was a
  /// single window; +inf if smoothing is disabled on a decomposed grid.
  double boundary_epsilon = 0.0;

  std::size_t cells = 0;
  std::size_t windows = 0;              ///< windows stitched
  std::size_t window_solves_cold = 0;   ///< full two-phase solves
  std::size_t window_solves_warm = 0;   ///< warm restarts (new prior)
  std::size_t window_reuse_hits = 0;    ///< identical prior, no solve
  std::size_t lp_variables = 0;         ///< summed over solved windows
  std::size_t lp_constraints = 0;       ///< summed over solved windows
  opt::SolveStats solve_stats;          ///< summed over solved windows

  double construct_seconds = 0.0;  ///< total build wall time
  double solve_seconds = 0.0;      ///< part spent inside the simplex
};

class OptimalGeoIndMechanism final : public Mechanism {
 public:
  /// Builds and solves the LP; throws std::runtime_error if the solver
  /// fails (the problem is always feasible -- the identity-free uniform
  /// channel satisfies every constraint -- so failure means a bug).
  explicit OptimalGeoIndMechanism(OptimalMechanismConfig config);

  /// Scalable construction: certified per-window spanners + sparse
  /// revised simplex + overlapping-window decomposition (header comment).
  /// Fills `report` (optional) with the measured bounds and costs.
  static OptimalGeoIndMechanism build_approximate(
      const ApproximateOptimalConfig& config,
      ApproximateBuildReport* report = nullptr);

  /// Snaps the real location to the nearest grid cell and samples an
  /// output cell from that row of the optimal channel.
  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real_location) const override;

  std::size_t output_count() const override { return 1; }
  std::string name() const override;

  /// Radius covering 1 - alpha of the output mass from a central cell.
  double tail_radius(double alpha) const override;

  /// The LP objective: prior-weighted expected distance truth -> output.
  double expected_quality_loss() const { return quality_loss_; }

  /// Channel row for cell `i` (selection probabilities over cells).
  const std::vector<double>& channel_row(std::size_t i) const;

  /// Center coordinates of cell `i`.
  geo::Point cell_center(std::size_t i) const;

  std::size_t cell_count() const { return centers_.size(); }

  /// True for channels produced by build_approximate().
  bool approximate() const { return approximate_; }

  /// max over ALL cell pairs (i, i') and outputs j of
  /// X_ij - e^{eps d(i,i')} X_i'j; <= tolerance when the spanner trick
  /// worked (verified in tests). For decomposed approximate builds this
  /// can be positive across seams -- the build report's boundary_epsilon
  /// is the honest cross-seam guarantee.
  double max_constraint_violation() const;

 private:
  OptimalGeoIndMechanism() = default;  // build_approximate assembles

  std::size_t nearest_cell(geo::Point p) const;

  OptimalMechanismConfig config_;
  std::vector<geo::Point> centers_;
  std::vector<std::vector<double>> channel_;  // k rows of k probabilities
  double quality_loss_ = 0.0;
  bool approximate_ = false;
  double build_dilation_ = 1.0;  // certified spanner dilation (approx)
};

/// Shared LP assembly for the geo-IND channel problem: k row-stochastic
/// equalities plus one `X_ij <= e^{edge_epsilon d(i,i')} X_i'j` row per
/// directed edge and output. Exposed so the solvers can be checked
/// against each other on identical problems (tests/opt_test.cpp).
opt::LpProblem build_geo_ind_lp_dense(
    const std::vector<geo::Point>& centers, const std::vector<double>& prior,
    const std::vector<std::pair<std::size_t, std::size_t>>& directed_edges,
    double edge_epsilon);

opt::SparseLpProblem build_geo_ind_lp_sparse(
    const std::vector<geo::Point>& centers, const std::vector<double>& prior,
    const std::vector<std::pair<std::size_t, std::size_t>>& directed_edges,
    double edge_epsilon);

}  // namespace privlocad::lppm
