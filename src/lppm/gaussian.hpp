// The paper's n-fold Gaussian mechanism (Definition 7 + Algorithm 3).
//
// Given a real location p, releases n points p + X_1, ..., p + X_n with
// X_i i.i.d. polar Gaussian of per-axis standard deviation
//   sigma = (sqrt(n) * r / eps) * sqrt(ln(1/delta^2) + eps)        (Thm. 2)
// so that the whole set satisfies (r, eps, delta, n)-geo-IND. The privacy
// argument rests on the sample mean being a sufficient statistic: it is
// distributed N(p, sigma^2/n) and therefore meets the Lemma-1 single-output
// bound; Theorem 1 then transfers the guarantee to the full output set.
//
// The special case n = 1 is the plain bounded Gaussian mechanism of
// Lemma 1 (Zhou et al., IoT-J 2019), used as the building block of the
// naive post-processing baseline.
#pragma once

#include "lppm/mechanism.hpp"
#include "lppm/privacy_params.hpp"

namespace privlocad::lppm {

class NFoldGaussianMechanism final : public Mechanism {
 public:
  explicit NFoldGaussianMechanism(BoundedGeoIndParams params);

  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real_location) const override;

  /// One batched sampler pass for the whole n-fold release (the
  /// obfuscation-table hot path); same stream as obfuscate().
  void obfuscate_into(rng::Engine& engine, geo::Point real_location,
                      std::vector<geo::Point>& out) const override;

  std::size_t output_count() const override { return params_.n; }
  std::string name() const override;

  /// Tail radius of ONE output's displacement (Rayleigh with this sigma):
  /// r_alpha = sigma * sqrt(-2 ln alpha).
  double tail_radius(double alpha) const override;

  /// The Theorem-2 calibrated per-output sigma.
  double sigma() const { return sigma_; }

  /// Standard deviation of the POSTERIOR of the real location given the n
  /// outputs: the sample mean is the sufficient statistic distributed
  /// N(p, sigma^2/n), so the posterior sharpness is sigma/sqrt(n). This is
  /// the sigma the output-selection density (paper Eq. 17) must use; note
  /// it equals the 1-fold Lemma-1 sigma for every n.
  double posterior_sigma() const;

  const BoundedGeoIndParams& params() const { return params_; }

 private:
  BoundedGeoIndParams params_;
  double sigma_;
};

}  // namespace privlocad::lppm
