// Discretized + truncated planar Laplace (Andres et al. 2013, Section 5
// "practical considerations").
//
// Real deployments cannot report arbitrary-precision coordinates: outputs
// are snapped to a finite grid (GPS APIs quantize) and clamped to a valid
// region (a city's bounding box). Both steps change the mechanism:
//  * discretization to a grid of spacing s costs additional privacy; the
//    original paper shows the discretized mechanism satisfies
//    (eps' = eps + delta_discr)-geo-IND where the correction depends on
//    s and the truncation radius (we expose the paper's first-order
//    correction via `effective_epsilon`).
//  * truncation (clamping to a box) is post-processing via a deterministic
//    map and costs nothing.
// The continuous PlanarLaplaceMechanism remains the reference; this
// variant is what an integrator should actually ship.
#pragma once

#include "geo/bounding_box.hpp"
#include "lppm/mechanism.hpp"
#include "lppm/privacy_params.hpp"

namespace privlocad::lppm {

class DiscretePlanarLaplaceMechanism final : public Mechanism {
 public:
  /// `grid_spacing_m` is the output quantum s (> 0); `region` is the
  /// truncation box the outputs are clamped into.
  DiscretePlanarLaplaceMechanism(GeoIndParams params, double grid_spacing_m,
                                 geo::BoundingBox region);

  std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                    geo::Point real_location) const override;

  /// Single-point release: continuous planar Laplace, snapped to the
  /// grid, clamped to the region.
  geo::Point obfuscate_one(rng::Engine& engine, geo::Point real) const;

  std::size_t output_count() const override { return 1; }
  std::string name() const override;
  double tail_radius(double alpha) const override;

  /// The nominal epsilon = l / r the noise was calibrated for.
  double nominal_epsilon() const { return epsilon_; }

  /// First-order corrected epsilon after discretization (Andres et al.,
  /// Thm. 5.4 flavour): eps' = eps + s * eps * (1 + o(1)) / r_max-ish;
  /// we use the conservative bound eps' = eps * (1 + s / step_scale)
  /// with step_scale the grid spacing's worst-case density ratio over one
  /// cell: eps' = eps + eps * s. Exposed so integrators can budget for it.
  double effective_epsilon() const;

  double grid_spacing() const { return grid_spacing_; }
  const geo::BoundingBox& region() const { return region_; }

 private:
  GeoIndParams params_;
  double epsilon_;
  double grid_spacing_;
  geo::BoundingBox region_;
};

}  // namespace privlocad::lppm
