#include "lppm/gaussian.hpp"

#include <cmath>

#include "rng/samplers.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {

NFoldGaussianMechanism::NFoldGaussianMechanism(BoundedGeoIndParams params)
    : params_(params), sigma_(n_fold_sigma(params)) {}

std::vector<geo::Point> NFoldGaussianMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  std::vector<geo::Point> outputs;
  outputs.reserve(params_.n);
  for (std::size_t i = 0; i < params_.n; ++i) {
    outputs.push_back(real_location + rng::gaussian_noise(engine, sigma_));
  }
  return outputs;
}

std::string NFoldGaussianMechanism::name() const {
  return std::to_string(params_.n) +
         "-fold-gaussian(eps=" + util::format_double(params_.epsilon, 2) +
         ",r=" + util::format_double(params_.radius_m, 0) +
         "m,delta=" + util::format_double(params_.delta, 3) + ")";
}

double NFoldGaussianMechanism::posterior_sigma() const {
  return sigma_ / std::sqrt(static_cast<double>(params_.n));
}

double NFoldGaussianMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  // Rayleigh tail: Pr[R > r] = exp(-r^2 / (2 sigma^2)) = alpha.
  return sigma_ * std::sqrt(-2.0 * std::log(alpha));
}

}  // namespace privlocad::lppm
