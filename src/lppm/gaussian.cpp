#include "lppm/gaussian.hpp"

#include <cmath>

#include "rng/samplers.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {

NFoldGaussianMechanism::NFoldGaussianMechanism(BoundedGeoIndParams params)
    : params_(params), sigma_(n_fold_sigma(params)) {}

std::vector<geo::Point> NFoldGaussianMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  std::vector<geo::Point> outputs;
  obfuscate_into(engine, real_location, outputs);
  return outputs;
}

void NFoldGaussianMechanism::obfuscate_into(
    rng::Engine& engine, geo::Point real_location,
    std::vector<geo::Point>& out) const {
  // The whole n-fold release is one batched sampler pass (Algorithm 3's
  // n i.i.d. polar-Gaussian outputs, drawn as 2n paired variates).
  out.resize(params_.n);
  rng::fill_gaussian_noise_2d(engine, sigma_, out, real_location);
}

std::string NFoldGaussianMechanism::name() const {
  return std::to_string(params_.n) +
         "-fold-gaussian(eps=" + util::format_double(params_.epsilon, 2) +
         ",r=" + util::format_double(params_.radius_m, 0) +
         "m,delta=" + util::format_double(params_.delta, 3) + ")";
}

double NFoldGaussianMechanism::posterior_sigma() const {
  return sigma_ / std::sqrt(static_cast<double>(params_.n));
}

double NFoldGaussianMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  // Rayleigh tail: Pr[R > r] = exp(-r^2 / (2 sigma^2)) = alpha.
  return sigma_ * std::sqrt(-2.0 * std::log(alpha));
}

}  // namespace privlocad::lppm
