#include "lppm/discrete_laplace.hpp"

#include <cmath>
#include <numbers>

#include "rng/samplers.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {

DiscretePlanarLaplaceMechanism::DiscretePlanarLaplaceMechanism(
    GeoIndParams params, double grid_spacing_m, geo::BoundingBox region)
    : params_(params),
      epsilon_(params.epsilon()),
      grid_spacing_(grid_spacing_m),
      region_(region) {
  util::require_positive(params.level, "geo-IND level l");
  util::require_positive(params.radius_m, "geo-IND radius r");
  util::require_positive(grid_spacing_m, "grid spacing");
  util::require(grid_spacing_m < params.radius_m,
                "grid spacing must be finer than the protection radius");
}

geo::Point DiscretePlanarLaplaceMechanism::obfuscate_one(
    rng::Engine& engine, geo::Point real) const {
  const geo::Point continuous =
      real + rng::planar_laplace_noise(engine, epsilon_);
  // Snap to the grid (round-to-nearest), then clamp into the region; both
  // are deterministic maps of the released value.
  const geo::Point snapped{
      std::round(continuous.x / grid_spacing_) * grid_spacing_,
      std::round(continuous.y / grid_spacing_) * grid_spacing_};
  return region_.clamp(snapped);
}

std::vector<geo::Point> DiscretePlanarLaplaceMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  return {obfuscate_one(engine, real_location)};
}

std::string DiscretePlanarLaplaceMechanism::name() const {
  return "discrete-planar-laplace(l=" +
         util::format_double(params_.level, 3) +
         ",r=" + util::format_double(params_.radius_m, 0) +
         "m,s=" + util::format_double(grid_spacing_, 0) + "m)";
}

double DiscretePlanarLaplaceMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  // Continuous tail plus the worst-case half-diagonal snap displacement.
  return rng::planar_laplace_radius_quantile(1.0 - alpha, epsilon_) +
         grid_spacing_ * std::numbers::sqrt2 / 2.0;
}

double DiscretePlanarLaplaceMechanism::effective_epsilon() const {
  // Conservative first-order correction: within one grid cell the
  // continuous density can vary by up to exp(eps * s * sqrt(2)), so the
  // discretized outputs satisfy geo-IND at
  //   eps' = eps * (1 + s * sqrt(2) / (1 / eps)) = eps + eps^2 s sqrt(2).
  return epsilon_ +
         epsilon_ * epsilon_ * grid_spacing_ * std::numbers::sqrt2;
}

}  // namespace privlocad::lppm
