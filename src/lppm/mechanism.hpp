// Abstract LPPM interface.
//
// Every location privacy-preserving mechanism in this library maps one real
// location to a set of obfuscated locations (size 1 for the one-time
// mechanisms, n for the permanent multi-output mechanisms). The caller
// supplies the engine so trials stay deterministic and so one mechanism
// object can be shared across users/threads without hidden state.
#pragma once

#include <string>
#include <vector>

#include "geo/point.hpp"
#include "rng/engine.hpp"

namespace privlocad::lppm {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Generates the mechanism's obfuscated output set for `real_location`.
  /// The returned vector's size equals output_count().
  virtual std::vector<geo::Point> obfuscate(rng::Engine& engine,
                                            geo::Point real_location) const = 0;

  /// Writes the output set into `out` (resized to output_count()),
  /// reusing its capacity. This is the allocation-free path the
  /// obfuscation-table build uses; the Gaussian mechanisms override it
  /// with one batched sampler pass. Draws the same stream as obfuscate().
  virtual void obfuscate_into(rng::Engine& engine, geo::Point real_location,
                              std::vector<geo::Point>& out) const {
    out = obfuscate(engine, real_location);
  }

  /// Number of locations one obfuscate() call releases.
  virtual std::size_t output_count() const = 0;

  /// Human-readable identifier used in bench output.
  virtual std::string name() const = 0;

  /// Radius r_alpha with Pr[dist(noise) > r_alpha] <= alpha (paper Eq. 4).
  /// Used by the de-obfuscation attack to size its trimming radius, and by
  /// the utility module for worst-case displacement bounds.
  virtual double tail_radius(double alpha) const = 0;
};

}  // namespace privlocad::lppm
