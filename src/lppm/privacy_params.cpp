#include "lppm/privacy_params.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::lppm {

void BoundedGeoIndParams::validate() const {
  util::require_positive(radius_m, "geo-IND radius r");
  util::require_positive(epsilon, "geo-IND epsilon");
  util::require_unit_open(delta, "geo-IND delta");
  util::require(n >= 1, "geo-IND output count n must be >= 1");
}

double one_fold_sigma(double radius_m, double epsilon, double delta) {
  util::require_positive(radius_m, "geo-IND radius r");
  util::require_positive(epsilon, "geo-IND epsilon");
  util::require_unit_open(delta, "geo-IND delta");
  // Lemma 1: sigma = (r / eps) * sqrt(ln(1 / delta^2) + eps).
  return radius_m / epsilon * std::sqrt(std::log(1.0 / (delta * delta)) +
                                        epsilon);
}

double n_fold_sigma(const BoundedGeoIndParams& p) {
  p.validate();
  return std::sqrt(static_cast<double>(p.n)) *
         one_fold_sigma(p.radius_m, p.epsilon, p.delta);
}

double composition_sigma(const BoundedGeoIndParams& p) {
  p.validate();
  const double n = static_cast<double>(p.n);
  return one_fold_sigma(p.radius_m, p.epsilon / n, p.delta / n);
}

}  // namespace privlocad::lppm
