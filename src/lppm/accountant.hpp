// Privacy accountant: tracks cumulative (epsilon, delta) spend per user.
//
// The longitudinal attack exists because one-time geo-IND releases compose:
// by the basic composition theorem, k releases at (eps, delta) each cost
// (k*eps, k*delta) in total, and the advanced composition theorem (Dwork &
// Roth, Thm. 3.20) still grows without bound as sqrt(k). This module makes
// that decay measurable: the edge device (or an auditor) can register every
// release and read off the victim's remaining protection level -- the
// quantitative version of the paper's Section III argument. Permanent
// releases (the n-fold obfuscation table) are registered ONCE; replaying a
// recorded output is post-processing and costs nothing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace privlocad::lppm {

/// One privacy charge: a mechanism invocation at (epsilon, delta).
struct PrivacyCharge {
  double epsilon;
  double delta;
};

/// Cumulative privacy cost under two composition analyses.
struct PrivacySpend {
  /// Basic composition: sum of epsilons, sum of deltas.
  double basic_epsilon = 0.0;
  double basic_delta = 0.0;

  /// Advanced composition at slack delta': for k releases of eps each,
  /// eps_total = eps * sqrt(2k ln(1/delta')) + k * eps * (e^eps - 1).
  /// Only meaningful for homogeneous charges; heterogeneous charges are
  /// folded via their epsilon root-mean-square (a standard upper bound).
  double advanced_epsilon = 0.0;
  double advanced_delta = 0.0;  ///< sum of deltas + the slack delta'

  std::size_t releases = 0;
};

class PrivacyAccountant {
 public:
  /// `advanced_slack` is the delta' the advanced composition analysis may
  /// additionally burn; must be in (0, 1).
  explicit PrivacyAccountant(double advanced_slack = 1e-6);

  /// Registers one release for `user_id`.
  void record(std::uint64_t user_id, PrivacyCharge charge);

  /// Registers a release for every user in a batch (e.g. a window rebuild).
  void record_all(const std::vector<std::uint64_t>& user_ids,
                  PrivacyCharge charge);

  /// Current spend for a user; all-zero spend for unknown users.
  PrivacySpend spend_for(std::uint64_t user_id) const;

  /// True when the user's basic-composition epsilon exceeds `budget_eps`.
  /// The paper's one-time geo-IND users blow any fixed budget linearly in
  /// their check-in count; Edge-PrivLocAd users never do after the table
  /// is frozen.
  bool exhausted(std::uint64_t user_id, double budget_eps) const;

  std::size_t tracked_users() const { return ledgers_.size(); }

 private:
  struct Ledger {
    double eps_sum = 0.0;
    double eps_sq_sum = 0.0;  // for the heterogeneous advanced bound
    double delta_sum = 0.0;
    std::size_t releases = 0;
  };

  double advanced_slack_;
  std::unordered_map<std::uint64_t, Ledger> ledgers_;
};

}  // namespace privlocad::lppm
