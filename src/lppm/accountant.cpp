#include "lppm/accountant.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::lppm {

PrivacyAccountant::PrivacyAccountant(double advanced_slack)
    : advanced_slack_(advanced_slack) {
  util::require_unit_open(advanced_slack, "advanced composition slack");
}

void PrivacyAccountant::record(std::uint64_t user_id, PrivacyCharge charge) {
  util::require_positive(charge.epsilon, "charge epsilon");
  util::require(charge.delta >= 0.0 && charge.delta < 1.0,
                "charge delta must be in [0, 1)");
  Ledger& ledger = ledgers_[user_id];
  ledger.eps_sum += charge.epsilon;
  ledger.eps_sq_sum += charge.epsilon * charge.epsilon;
  ledger.delta_sum += charge.delta;
  ++ledger.releases;
}

void PrivacyAccountant::record_all(const std::vector<std::uint64_t>& user_ids,
                                   PrivacyCharge charge) {
  for (const std::uint64_t id : user_ids) record(id, charge);
}

PrivacySpend PrivacyAccountant::spend_for(std::uint64_t user_id) const {
  const auto it = ledgers_.find(user_id);
  if (it == ledgers_.end()) return {};
  const Ledger& ledger = it->second;

  PrivacySpend spend;
  spend.releases = ledger.releases;
  spend.basic_epsilon = ledger.eps_sum;
  spend.basic_delta = ledger.delta_sum;

  // Advanced composition (heterogeneous form): for charges eps_i,
  //   eps_total = sqrt(2 ln(1/delta') * sum eps_i^2)
  //             + sum eps_i * (e^{eps_i} - 1)
  // We upper-bound the second term with eps_rms for the exponent, which is
  // exact in the homogeneous case the benches use.
  const double k = static_cast<double>(ledger.releases);
  if (k > 0) {
    const double eps_rms = std::sqrt(ledger.eps_sq_sum / k);
    spend.advanced_epsilon =
        std::sqrt(2.0 * std::log(1.0 / advanced_slack_) *
                  ledger.eps_sq_sum) +
        ledger.eps_sum * (std::exp(eps_rms) - 1.0);
    spend.advanced_delta = ledger.delta_sum + advanced_slack_;
  }
  return spend;
}

bool PrivacyAccountant::exhausted(std::uint64_t user_id,
                                  double budget_eps) const {
  util::require_positive(budget_eps, "privacy budget");
  return spend_for(user_id).basic_epsilon > budget_eps;
}

}  // namespace privlocad::lppm
