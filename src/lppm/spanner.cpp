#include "lppm/spanner.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <utility>

#include "util/validation.hpp"

namespace privlocad::lppm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Adjacency list mirror of the edge set, kept incrementally during the
/// greedy scan so each candidate test runs Dijkstra on the current graph.
struct Graph {
  explicit Graph(std::size_t n) : adjacency(n) {}

  void add_edge(std::uint32_t a, std::uint32_t b, double length) {
    adjacency[a].push_back({b, length});
    adjacency[b].push_back({a, length});
  }

  struct Arc {
    std::uint32_t to;
    double length;
  };
  std::vector<std::vector<Arc>> adjacency;
};

/// Dijkstra from `source`, stopping early once `target` is settled or
/// every frontier distance exceeds `bound`. Returns dist(source, target)
/// or +inf. `dist` is caller-owned scratch (resized and reset here).
double bounded_distance(const Graph& graph, std::uint32_t source,
                        std::uint32_t target, double bound,
                        std::vector<double>& dist) {
  dist.assign(graph.adjacency.size(), kInf);
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == target) return d;
    if (d > bound) return kInf;
    for (const Graph::Arc& arc : graph.adjacency[u]) {
      const double nd = d + arc.length;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        queue.push({nd, arc.to});
      }
    }
  }
  return dist[target];
}

/// Full single-source shortest paths (no early exit), for certification.
void all_distances(const Graph& graph, std::uint32_t source,
                   std::vector<double>& dist) {
  dist.assign(graph.adjacency.size(), kInf);
  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.push({0.0, source});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    for (const Graph::Arc& arc : graph.adjacency[u]) {
      const double nd = d + arc.length;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        queue.push({nd, arc.to});
      }
    }
  }
}

}  // namespace

Spanner Spanner::build(const std::vector<geo::Point>& nodes,
                       const SpannerConfig& config) {
  util::require(nodes.size() >= 2, "spanner needs at least 2 nodes, got " +
                                       std::to_string(nodes.size()));
  util::require(config.target_dilation > 1.0,
                "spanner target dilation must exceed 1");
  util::require_non_negative(config.candidate_radius_factor,
                             "spanner candidate radius factor");
  const std::size_t n = nodes.size();
  util::require(n <= std::numeric_limits<std::uint32_t>::max(),
                "spanner node count overflows 32-bit indices");

  // Pairwise distances double as the duplicate check: a zero-length pair
  // has no finite dilation.
  double min_distance = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = geo::distance(nodes[i], nodes[j]);
      util::require(d > 0.0, "spanner nodes " + std::to_string(i) + " and " +
                                 std::to_string(j) + " coincide");
      min_distance = std::min(min_distance, d);
    }
  }

  const double candidate_radius =
      config.candidate_radius_factor == 0.0
          ? kInf
          : config.candidate_radius_factor * min_distance;

  struct Candidate {
    double length;
    std::uint32_t a;
    std::uint32_t b;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = geo::distance(nodes[i], nodes[j]);
      if (d <= candidate_radius) {
        candidates.push_back({d, static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j)});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.length != y.length) return x.length < y.length;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });

  Spanner spanner;
  spanner.target_dilation_ = config.target_dilation;
  spanner.node_count_ = n;
  Graph graph(n);
  std::vector<double> dist;
  for (const Candidate& c : candidates) {
    const double bound = config.target_dilation * c.length;
    if (bounded_distance(graph, c.a, c.b, bound, dist) > bound) {
      graph.add_edge(c.a, c.b, c.length);
      spanner.edges_.push_back({c.a, c.b, c.length});
    }
  }

  // Certification-and-repair: measure the true dilation over ALL pairs
  // (the greedy pass only saw candidates within the radius) and patch any
  // violation with a direct edge. A direct edge drops that pair's ratio
  // to 1, so one extra pass always certifies.
  for (int pass = 0; pass < 2; ++pass) {
    double worst = 1.0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> violations;
    for (std::uint32_t u = 0; u < n; ++u) {
      all_distances(graph, u, dist);
      for (std::uint32_t v = u + 1; v < n; ++v) {
        const double euclid = geo::distance(nodes[u], nodes[v]);
        const double ratio = dist[v] / euclid;
        if (ratio > config.target_dilation) {
          violations.emplace_back(u, v);
        } else {
          worst = std::max(worst, ratio);
        }
      }
    }
    if (violations.empty()) {
      spanner.dilation_ = worst;
      return spanner;
    }
    for (const auto& [u, v] : violations) {
      const double d = geo::distance(nodes[u], nodes[v]);
      graph.add_edge(u, v, d);
      spanner.edges_.push_back({u, v, d});
    }
  }
  // Unreachable: the repair pass leaves no violations.
  spanner.dilation_ = config.target_dilation;
  return spanner;
}

}  // namespace privlocad::lppm
