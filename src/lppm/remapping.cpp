#include "lppm/remapping.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::lppm {

BayesianRemapper::BayesianRemapper(std::vector<PriorPoint> prior)
    : prior_(std::move(prior)) {
  util::require(!prior_.empty(), "remapper prior must be non-empty");
  double total = 0.0;
  for (const PriorPoint& p : prior_) {
    util::require(p.weight >= 0.0, "prior weights must be non-negative");
    total += p.weight;
  }
  util::require(total > 0.0, "prior weights must not all be zero");
}

template <typename LogDensity>
geo::Point BayesianRemapper::remap(LogDensity&& log_density) const {
  // Work in log space and shift by the max exponent: priors over a metro
  // area produce exponents of -1e3 and below, which underflow otherwise.
  std::vector<double> log_weight(prior_.size());
  double max_log = -1e300;
  for (std::size_t i = 0; i < prior_.size(); ++i) {
    log_weight[i] = prior_[i].weight > 0.0
                        ? std::log(prior_[i].weight) +
                              log_density(prior_[i].location)
                        : -1e300;
    max_log = std::max(max_log, log_weight[i]);
  }

  geo::Point weighted_sum{};
  double total = 0.0;
  for (std::size_t i = 0; i < prior_.size(); ++i) {
    const double w = std::exp(log_weight[i] - max_log);
    weighted_sum = weighted_sum + prior_[i].location * w;
    total += w;
  }
  return weighted_sum / total;
}

geo::Point BayesianRemapper::remap_laplace(geo::Point reported,
                                           double epsilon) const {
  util::require_positive(epsilon, "remap epsilon");
  return remap([&](geo::Point p) {
    return -epsilon * geo::distance(reported, p);
  });
}

geo::Point BayesianRemapper::remap_gaussian(geo::Point reported,
                                            double sigma) const {
  util::require_positive(sigma, "remap sigma");
  const double inv_two_sigma2 = 1.0 / (2.0 * sigma * sigma);
  return remap([&](geo::Point p) {
    return -geo::distance_squared(reported, p) * inv_two_sigma2;
  });
}

std::vector<PriorPoint> uniform_grid_prior(const geo::BoundingBox& box,
                                           std::size_t per_side) {
  util::require(per_side >= 1, "grid prior needs at least one cell");
  std::vector<PriorPoint> prior;
  prior.reserve(per_side * per_side);
  const double dx = box.width() / static_cast<double>(per_side);
  const double dy = box.height() / static_cast<double>(per_side);
  for (std::size_t i = 0; i < per_side; ++i) {
    for (std::size_t j = 0; j < per_side; ++j) {
      prior.push_back(
          {{box.min_corner().x + (static_cast<double>(i) + 0.5) * dx,
            box.min_corner().y + (static_cast<double>(j) + 0.5) * dy},
           1.0});
    }
  }
  return prior;
}

}  // namespace privlocad::lppm
