#include "lppm/planar_laplace.hpp"

#include "rng/samplers.hpp"
#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::lppm {

PlanarLaplaceMechanism::PlanarLaplaceMechanism(GeoIndParams params)
    : params_(params), epsilon_(params.epsilon()) {
  util::require_positive(params.level, "geo-IND level l");
  util::require_positive(params.radius_m, "geo-IND radius r");
}

std::vector<geo::Point> PlanarLaplaceMechanism::obfuscate(
    rng::Engine& engine, geo::Point real_location) const {
  return {obfuscate_one(engine, real_location)};
}

geo::Point PlanarLaplaceMechanism::obfuscate_one(rng::Engine& engine,
                                                 geo::Point real) const {
  return real + rng::planar_laplace_noise(engine, epsilon_);
}

std::string PlanarLaplaceMechanism::name() const {
  return "planar-laplace(l=" + util::format_double(params_.level, 3) +
         ",r=" + util::format_double(params_.radius_m, 0) + "m)";
}

double PlanarLaplaceMechanism::tail_radius(double alpha) const {
  util::require_unit_open(alpha, "tail probability alpha");
  // Pr[R > r_alpha] = alpha  <=>  C(r_alpha) = 1 - alpha.
  return rng::planar_laplace_radius_quantile(1.0 - alpha, epsilon_);
}

}  // namespace privlocad::lppm
