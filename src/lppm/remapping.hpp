// Bayesian posterior remapping (Chatzikokolakis et al., PETS 2017 -- the
// "efficient utility improvement" line the paper's related work cites).
//
// A reported location z = p + noise can be improved for FREE: given a
// public prior over where people actually are (a POI grid, a population
// density map), replace z by the posterior mean E[p | z]. This is pure
// post-processing -- it reads only the released z and public data -- so it
// costs no privacy under any DP-like notion, yet it can cut the expected
// error substantially when the prior is informative. Edge-PrivLocAd's
// nomadic path (one-time planar Laplace) composes naturally with this
// remapper; the ablation bench quantifies the gain.
#pragma once

#include <vector>

#include "geo/bounding_box.hpp"
#include "geo/point.hpp"

namespace privlocad::lppm {

/// One support point of the discrete prior.
struct PriorPoint {
  geo::Point location;
  double weight;  ///< relative mass, need not be normalized
};

class BayesianRemapper {
 public:
  /// `prior` must be non-empty with non-negative weights summing > 0.
  explicit BayesianRemapper(std::vector<PriorPoint> prior);

  /// Posterior-mean remap assuming planar-Laplace noise with parameter
  /// `epsilon` (density proportional to exp(-eps * |z - p|)).
  geo::Point remap_laplace(geo::Point reported, double epsilon) const;

  /// Posterior-mean remap assuming polar-Gaussian noise with per-axis
  /// standard deviation `sigma`.
  geo::Point remap_gaussian(geo::Point reported, double sigma) const;

  std::size_t support_size() const { return prior_.size(); }

 private:
  template <typename LogDensity>
  geo::Point remap(LogDensity&& log_density) const;

  std::vector<PriorPoint> prior_;
};

/// Uniform grid prior over a bounding box: `per_side`^2 equally weighted
/// support points at cell centers. The uninformative baseline.
std::vector<PriorPoint> uniform_grid_prior(const geo::BoundingBox& box,
                                           std::size_t per_side);

}  // namespace privlocad::lppm
