#include "adnet/bid_log.hpp"

namespace privlocad::adnet {

void BidLog::record(std::uint64_t user_id, geo::Point reported_location,
                    std::int64_t time) {
  by_user_[user_id].push_back({reported_location, time});
  ++total_;
}

const std::vector<LoggedRequest>& BidLog::requests_for(
    std::uint64_t user_id) const {
  static const std::vector<LoggedRequest> kEmpty;
  const auto it = by_user_.find(user_id);
  return it == by_user_.end() ? kEmpty : it->second;
}

std::vector<geo::Point> BidLog::positions_for(std::uint64_t user_id) const {
  const auto& requests = requests_for(user_id);
  std::vector<geo::Point> positions;
  positions.reserve(requests.size());
  for (const LoggedRequest& r : requests) {
    positions.push_back(r.reported_location);
  }
  return positions;
}

}  // namespace privlocad::adnet
