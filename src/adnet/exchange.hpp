// Real-time-bidding exchange (paper Sections I and III-A).
//
// The modern ad path is not one network but an exchange fanning each bid
// request out to multiple demand-side platforms (DSPs), collecting bids
// within a deadline, and running a second-price auction. The paper's
// longitudinal attacker sits exactly here: "any advertisers or third-party
// traffic verification companies can observe the location updating from
// the billions of ad bidding logs per day" -- i.e. EVERY DSP sees every
// request's reported location, winner or not. This module models that
// topology so the attack benches can play an observer at any seat.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adnet/ad_network.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "rng/engine.hpp"
#include "util/status.hpp"

namespace privlocad::adnet {

/// A demand-side platform: holds its advertisers and answers bid requests.
/// Each DSP keeps its own bid log -- it observes every request it is asked
/// to bid on, which is every request the exchange sees.
class Dsp {
 public:
  Dsp(std::string name, std::vector<Advertiser> advertisers);

  /// Returns this DSP's best matching ad for the request (highest bid
  /// among covering campaigns), or nullopt when nothing matches. Always
  /// records the request in the DSP's log first.
  std::optional<Ad> bid(const AdRequest& request);

  const std::string& name() const { return name_; }
  const BidLog& bid_log() const { return network_.bid_log(); }

 private:
  std::string name_;
  AdNetwork network_;
};

/// Outcome of one exchange auction.
struct AuctionResult {
  bool filled = false;
  Ad winner;                 ///< valid when filled
  double clearing_price = 0.0;  ///< second price (or reserve)
  std::size_t bids = 0;      ///< DSPs that returned a bid
};

class Exchange {
 public:
  /// `reserve_price_cpm`: bids below it are rejected; the clearing price
  /// never falls below it.
  explicit Exchange(double reserve_price_cpm = 0.1);

  /// Registers a DSP (takes ownership).
  void add_dsp(std::unique_ptr<Dsp> dsp);

  /// Fans the request out to every DSP, runs the second-price auction.
  AuctionResult run_auction(const AdRequest& request);

  /// Fault-aware auction: consults the injector's `exchange` site before
  /// running, retrying transient faults under `policy` (backoff jitter
  /// from an internal deterministic engine). Returns the auction result,
  /// or the final non-ok Status once retries are exhausted / the fault is
  /// not transient. `faults == nullptr` selects the process-global
  /// injector; with injection disabled this is run_auction plus one
  /// branch. Never throws on the fault path -- precondition violations
  /// (no DSPs) still throw like run_auction.
  util::Result<AuctionResult> try_run_auction(
      const AdRequest& request, const fault::RetryPolicy& policy = {},
      fault::FaultInjector* faults = nullptr);

  std::size_t dsp_count() const { return dsps_.size(); }
  const Dsp& dsp(std::size_t index) const;

  /// Total auctions run / filled (fill rate telemetry).
  std::size_t auctions() const { return auctions_; }
  std::size_t filled() const { return filled_; }
  double total_revenue_cpm() const { return revenue_; }

 private:
  double reserve_price_;
  std::vector<std::unique_ptr<Dsp>> dsps_;
  std::size_t auctions_ = 0;
  std::size_t filled_ = 0;
  double revenue_ = 0.0;
  /// Drives backoff jitter in try_run_auction; fixed seed keeps the
  /// retry schedule reproducible and independent of the serving RNGs.
  rng::Engine backoff_engine_{0x0BACC0FFULL};
};

}  // namespace privlocad::adnet
