// Bid-request log: what the ad ecosystem's observers see.
//
// The paper's attack model (Section III-A) assumes any advertiser or
// third-party verification company can observe location updates in the ad
// bidding logs, keyed by stable user IDs. This type is that log: a
// per-user, time-ordered record of every reported location.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.hpp"

namespace privlocad::adnet {

struct LoggedRequest {
  geo::Point reported_location;
  std::int64_t time = 0;
};

class BidLog {
 public:
  void record(std::uint64_t user_id, geo::Point reported_location,
              std::int64_t time);

  /// All requests observed for one user, in arrival order. Returns an
  /// empty vector for unknown users.
  const std::vector<LoggedRequest>& requests_for(std::uint64_t user_id) const;

  /// Just the reported positions for one user (attack input shape).
  std::vector<geo::Point> positions_for(std::uint64_t user_id) const;

  std::size_t total_requests() const { return total_; }
  std::size_t user_count() const { return by_user_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<LoggedRequest>> by_user_;
  std::size_t total_ = 0;
};

}  // namespace privlocad::adnet
