#include "adnet/ad_network.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::adnet {
namespace {

constexpr std::int64_t kSecondsPerDay = 86400;

}  // namespace

std::size_t AdNetwork::ImpressionKeyHash::operator()(
    const ImpressionKey& k) const {
  // SplitMix-style mix of the three fields.
  std::uint64_t h = k.user * 0x9E3779B97F4A7C15ULL;
  h ^= k.advertiser + 0xBF58476D1CE4E5B9ULL + (h << 6) + (h >> 2);
  h ^= static_cast<std::uint64_t>(k.day) + 0x94D049BB133111EBULL + (h << 6) +
       (h >> 2);
  return static_cast<std::size_t>(h);
}

AdNetwork::AdNetwork(std::vector<Advertiser> advertisers,
                     std::size_t max_ads_per_request,
                     FrequencyCap frequency_cap)
    : advertisers_(std::move(advertisers)),
      max_ads_per_request_(max_ads_per_request),
      frequency_cap_(frequency_cap) {
  util::require(max_ads_per_request_ > 0,
                "max_ads_per_request must be >= 1");
  for (const Advertiser& a : advertisers_) {
    if (a.targeting == TargetingType::kRadius) {
      util::require_positive(a.targeting_radius_m, "advertiser radius");
    } else if (a.targeting == TargetingType::kArea) {
      util::require(a.area.has_value(),
                    "area-targeting campaign needs a polygon");
    }
  }
  build_spatial_index();
}

void AdNetwork::build_spatial_index() {
  // Radius classes: [0, 2^k * base] with base = 250 m. A campaign of
  // radius r lands in the smallest class whose max_radius >= r, so a
  // class query at max_radius can only miss campaigns that could not
  // cover the point anyway.
  //
  // Fat campaigns (radius above kScanRadiusThreshold) cover a large share
  // of any city-scale map: grid pruning rejects almost nothing for them
  // while paying hash/indirection costs, so they go to the linear scan
  // list instead (the matching bench documents the crossover).
  constexpr double kBaseRadius = 250.0;
  constexpr double kScanRadiusThreshold = 8000.0;

  std::unordered_map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < advertisers_.size(); ++i) {
    const Advertiser& a = advertisers_[i];
    if (a.targeting != TargetingType::kRadius ||
        a.targeting_radius_m > kScanRadiusThreshold) {
      scan_indices_.push_back(i);
      continue;
    }
    const int cls = std::max(
        0, static_cast<int>(
               std::ceil(std::log2(a.targeting_radius_m / kBaseRadius))));
    by_class[cls].push_back(i);
  }

  for (auto& [cls, indices] : by_class) {
    RadiusClass radius_class;
    radius_class.max_radius = kBaseRadius * std::exp2(cls);
    std::vector<geo::Point> points;
    points.reserve(indices.size());
    for (const std::size_t i : indices) {
      points.push_back(advertisers_[i].business_location);
    }
    radius_class.advertiser_indices = std::move(indices);
    radius_class.index = std::make_unique<geo::GridIndex>(
        std::move(points), radius_class.max_radius);
    radius_classes_.push_back(std::move(radius_class));
  }
}

std::vector<Ad> AdNetwork::match(geo::Point reported_location,
                                 const std::string& category) const {
  std::vector<Ad> matched;
  auto consider = [&](const Advertiser& a, bool check_distance) {
    if (!category.empty() && a.category != category) return;
    bool covered = false;
    switch (a.targeting) {
      case TargetingType::kRadius:
        covered = !check_distance ||
                  geo::distance_squared(a.business_location,
                                        reported_location) <=
                      a.targeting_radius_m * a.targeting_radius_m;
        break;
      case TargetingType::kArea:
        covered = a.area.has_value() && a.area->contains(reported_location);
        break;
      case TargetingType::kCountry:
        // Single-country simulator: a country campaign reaches everyone.
        covered = true;
        break;
    }
    if (covered) {
      matched.push_back({a.id, a.business_location, a.category, a.bid_cpm});
    }
  };

  // Radius campaigns via the per-class grids...
  for (const RadiusClass& radius_class : radius_classes_) {
    radius_class.index->for_each_within(
        reported_location, radius_class.max_radius,
        [&](std::size_t local, double) {
          consider(advertisers_[radius_class.advertiser_indices[local]],
                   /*check_distance=*/true);
        });
  }
  // ...fat-radius, area, and country campaigns by scan (the radius branch
  // still needs its exact distance check; area/country ignore the flag).
  for (const std::size_t i : scan_indices_) {
    consider(advertisers_[i], /*check_distance=*/true);
  }

  const auto by_bid = [](const Ad& x, const Ad& y) {
    if (x.bid_cpm != y.bid_cpm) return x.bid_cpm > y.bid_cpm;
    return x.advertiser_id < y.advertiser_id;
  };
  // Only the top max_ads_per_request_ leave the auction; a partial sort
  // keeps the hot path O(n log k) instead of O(n log n) when thousands of
  // campaigns match a dense downtown request.
  if (matched.size() > max_ads_per_request_) {
    std::partial_sort(matched.begin(),
                      matched.begin() +
                          static_cast<std::ptrdiff_t>(max_ads_per_request_),
                      matched.end(), by_bid);
    matched.resize(max_ads_per_request_);
  } else {
    std::sort(matched.begin(), matched.end(), by_bid);
  }
  return matched;
}

std::size_t AdNetwork::impressions(std::uint64_t user_id,
                                   std::uint64_t advertiser_id,
                                   std::int64_t time) const {
  const auto it = impressions_.find(
      {user_id, advertiser_id, time / kSecondsPerDay});
  return it == impressions_.end() ? 0 : it->second;
}

std::vector<Ad> AdNetwork::handle_request(const AdRequest& request) {
  bid_log_.record(request.user_id, request.reported_location, request.time);
  std::vector<Ad> matched = match(request.reported_location,
                                  request.category);

  if (frequency_cap_.max_impressions_per_day > 0) {
    const std::int64_t day = request.time / kSecondsPerDay;
    std::erase_if(matched, [&](const Ad& ad) {
      const auto it = impressions_.find(
          {request.user_id, ad.advertiser_id, day});
      return it != impressions_.end() &&
             it->second >= frequency_cap_.max_impressions_per_day;
    });
    for (const Ad& ad : matched) {
      ++impressions_[{request.user_id, ad.advertiser_id, day}];
    }
  }
  return matched;
}

}  // namespace privlocad::adnet
