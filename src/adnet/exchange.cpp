#include "adnet/exchange.hpp"

#include <algorithm>

#include "util/validation.hpp"

namespace privlocad::adnet {

Dsp::Dsp(std::string name, std::vector<Advertiser> advertisers)
    : name_(std::move(name)),
      network_(std::move(advertisers), /*max_ads_per_request=*/1) {
  util::require(!name_.empty(), "DSP needs a name");
}

std::optional<Ad> Dsp::bid(const AdRequest& request) {
  // handle_request logs the request (the observation channel) and returns
  // at most one ad -- the DSP's best bid.
  std::vector<Ad> best = network_.handle_request(request);
  if (best.empty()) return std::nullopt;
  return best.front();
}

Exchange::Exchange(double reserve_price_cpm)
    : reserve_price_(reserve_price_cpm) {
  util::require_non_negative(reserve_price_cpm, "reserve price");
}

void Exchange::add_dsp(std::unique_ptr<Dsp> dsp) {
  util::require(dsp != nullptr, "cannot add a null DSP");
  dsps_.push_back(std::move(dsp));
}

const Dsp& Exchange::dsp(std::size_t index) const {
  util::require(index < dsps_.size(), "DSP index out of range");
  return *dsps_[index];
}

AuctionResult Exchange::run_auction(const AdRequest& request) {
  util::require(!dsps_.empty(), "exchange has no DSPs");
  ++auctions_;

  // Collect bids above the reserve from every DSP (all of them see the
  // request -- that is the point).
  std::vector<Ad> bids;
  for (const auto& dsp : dsps_) {
    if (std::optional<Ad> ad = dsp->bid(request)) {
      if (ad->bid_cpm >= reserve_price_) bids.push_back(std::move(*ad));
    }
  }

  AuctionResult result;
  result.bids = bids.size();
  if (bids.empty()) return result;

  std::sort(bids.begin(), bids.end(), [](const Ad& a, const Ad& b) {
    if (a.bid_cpm != b.bid_cpm) return a.bid_cpm > b.bid_cpm;
    return a.advertiser_id < b.advertiser_id;
  });

  result.filled = true;
  result.winner = bids.front();
  // Second price: the runner-up's bid, floored at the reserve.
  result.clearing_price =
      bids.size() > 1 ? std::max(bids[1].bid_cpm, reserve_price_)
                      : reserve_price_;
  revenue_ += result.clearing_price;
  ++filled_;
  return result;
}

util::Result<AuctionResult> Exchange::try_run_auction(
    const AdRequest& request, const fault::RetryPolicy& policy,
    fault::FaultInjector* faults) {
  fault::FaultInjector& injector =
      faults != nullptr ? *faults : fault::FaultInjector::global();
  if (injector.enabled()) {
    const util::Status reachable = fault::retry_with_backoff(
        policy, backoff_engine_,
        [&injector] { return injector.check(fault::Site::kExchange); });
    if (!reachable.ok()) return reachable;
  }
  return run_auction(request);
}

}  // namespace privlocad::adnet
