// Advertisers and radius-targeting campaigns (paper Section II-A).
//
// An advertiser pins a business location and a targeting radius; the ad
// network matches users whose (reported) location falls within that radius.
// Table I of the paper surveys the radius ranges four major platforms
// allow; those presets are reproduced here and drive the campaign
// generator used by the examples and integration tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/point.hpp"
#include "geo/polygon.hpp"
#include "rng/engine.hpp"

namespace privlocad::adnet {

/// The paper's three geo-targeting categories (Section II-A).
enum class TargetingType {
  kRadius,   ///< circle around the business location (the privacy-critical one)
  kArea,     ///< a city/district polygon
  kCountry,  ///< whole-country; in this single-country simulator: match-all
};

/// One advertising campaign. Radius targeting is the default and the
/// paper's focus; area and country targeting are supported so the
/// simulator covers the full Table-of-three from Section II-A.
struct Advertiser {
  std::uint64_t id = 0;
  geo::Point business_location;
  double targeting_radius_m = 5000.0;
  std::string category;      ///< business type, e.g. "restaurant"
  double bid_cpm = 1.0;      ///< bid price per mille, for auction ordering

  TargetingType targeting = TargetingType::kRadius;
  /// Target region for kArea campaigns; must be set for that type.
  std::optional<geo::Polygon> area;
};

/// A platform's allowed targeting-radius range (paper Table I).
struct PlatformPreset {
  std::string platform;
  double min_radius_m;
  double max_radius_m;
};

/// The four platforms the paper surveys: Google (5-65 km),
/// Microsoft (1-800 km), Facebook (1.6-80 km), Tencent (0.5-25 km).
const std::vector<PlatformPreset>& table1_presets();

/// Clamps a requested radius into what `preset` allows.
double clamp_radius(const PlatformPreset& preset, double requested_m);

/// Generates `count` synthetic campaigns with businesses uniform in a
/// square of half-extent `area_half_extent_m` and radii log-uniform within
/// the preset's range (clamped to `max_radius_cap_m` when positive --
/// city-scale simulations don't want 800 km campaigns).
std::vector<Advertiser> generate_campaigns(rng::Engine& engine,
                                           const PlatformPreset& preset,
                                           std::size_t count,
                                           double area_half_extent_m,
                                           double max_radius_cap_m = 25000.0);

}  // namespace privlocad::adnet
