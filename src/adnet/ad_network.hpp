// The honest-but-curious ad network (paper Fig. 1).
//
// Receives ad requests carrying a (reported) user location, matches every
// campaign whose targeting circle covers that location, and returns the
// matched ads ordered by bid. It also appends every request to a bid log
// -- the very observation channel the longitudinal attacker exploits.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "adnet/advertiser.hpp"
#include "adnet/bid_log.hpp"
#include "geo/grid_index.hpp"
#include "geo/point.hpp"

namespace privlocad::adnet {

/// One ad returned to a requester.
struct Ad {
  std::uint64_t advertiser_id = 0;
  geo::Point business_location;
  std::string category;
  double bid_cpm = 0.0;
};

/// An incoming request from a user/edge device. `category` restricts the
/// match to one business type (paper Fig. 1's "Business Type" attribute);
/// empty means any.
struct AdRequest {
  std::uint64_t user_id = 0;
  geo::Point reported_location;
  std::int64_t time = 0;
  std::string category;
};

/// Serving-frequency policy (paper Fig. 1's "Serving Frequency"): at most
/// `max_impressions_per_day` deliveries of one advertiser's ad to one user
/// per UTC day. Zero disables capping.
struct FrequencyCap {
  std::size_t max_impressions_per_day = 0;
};

class AdNetwork {
 public:
  /// `max_ads_per_request` caps the response size (highest bids win).
  ///
  /// Matching of radius campaigns uses a spatial index: campaigns are
  /// bucketed into power-of-two radius classes, each with a uniform grid
  /// over business locations, so a request only inspects campaigns whose
  /// class could possibly cover it. Area/country campaigns are scanned
  /// linearly (there are few). Results are identical to a full scan
  /// (`adnet_test` and the matching bench check this).
  explicit AdNetwork(std::vector<Advertiser> advertisers,
                     std::size_t max_ads_per_request = 10,
                     FrequencyCap frequency_cap = {});

  /// Matches campaigns targeting the reported location (and category, if
  /// set), applies the frequency cap, records the impressions, and logs
  /// the request into the (attacker-visible) bid log.
  std::vector<Ad> handle_request(const AdRequest& request);

  /// Pure matching without logging, capping, or impression recording.
  /// `category` empty means any business type.
  std::vector<Ad> match(geo::Point reported_location,
                        const std::string& category = {}) const;

  /// The longitudinal attacker's observation channel.
  const BidLog& bid_log() const { return bid_log_; }

  /// Impressions served to `user_id` from `advertiser_id` on the UTC day
  /// containing `time`.
  std::size_t impressions(std::uint64_t user_id, std::uint64_t advertiser_id,
                          std::int64_t time) const;

  std::size_t advertiser_count() const { return advertisers_.size(); }

 private:
  /// (user, advertiser, day) -> impressions served.
  struct ImpressionKey {
    std::uint64_t user;
    std::uint64_t advertiser;
    std::int64_t day;
    bool operator==(const ImpressionKey&) const = default;
  };
  struct ImpressionKeyHash {
    std::size_t operator()(const ImpressionKey& k) const;
  };

  /// Radius campaigns bucketed by ceil-power-of-two radius; one grid per
  /// class lets a query touch only plausibly-covering campaigns.
  struct RadiusClass {
    double max_radius = 0.0;
    std::vector<std::size_t> advertiser_indices;
    std::unique_ptr<geo::GridIndex> index;
  };

  void build_spatial_index();

  std::vector<Advertiser> advertisers_;
  std::size_t max_ads_per_request_;
  FrequencyCap frequency_cap_;
  BidLog bid_log_;
  std::unordered_map<ImpressionKey, std::size_t, ImpressionKeyHash>
      impressions_;
  std::vector<RadiusClass> radius_classes_;
  std::vector<std::size_t> scan_indices_;  // area/country campaigns
};

}  // namespace privlocad::adnet
