#include "adnet/advertiser.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::adnet {

const std::vector<PlatformPreset>& table1_presets() {
  // Paper Table I. Mile-based entries converted at 1609.344 m/mile.
  static const std::vector<PlatformPreset> kPresets{
      {"Google", 5000.0, 65000.0},
      {"Microsoft", 1000.0, 800000.0},
      {"Facebook", 1609.344, 80467.2},
      {"Tencent", 500.0, 25000.0},
  };
  return kPresets;
}

double clamp_radius(const PlatformPreset& preset, double requested_m) {
  util::require_positive(requested_m, "requested targeting radius");
  return std::clamp(requested_m, preset.min_radius_m, preset.max_radius_m);
}

std::vector<Advertiser> generate_campaigns(rng::Engine& engine,
                                           const PlatformPreset& preset,
                                           std::size_t count,
                                           double area_half_extent_m,
                                           double max_radius_cap_m) {
  util::require_positive(area_half_extent_m, "campaign area half extent");
  static const std::vector<std::string> kCategories{
      "restaurant", "retail", "fitness", "entertainment", "services"};

  const double hi_radius =
      max_radius_cap_m > 0.0
          ? std::min(preset.max_radius_m, max_radius_cap_m)
          : preset.max_radius_m;
  const double lo_radius = std::min(preset.min_radius_m, hi_radius);

  std::vector<Advertiser> campaigns;
  campaigns.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Advertiser a;
    a.id = i;
    a.business_location = {
        engine.uniform_in(-area_half_extent_m, area_half_extent_m),
        engine.uniform_in(-area_half_extent_m, area_half_extent_m)};
    // Log-uniform radius inside the platform's allowed range: most
    // campaigns are neighbourhood-scale, a few are city-wide.
    a.targeting_radius_m =
        lo_radius < hi_radius
            ? std::exp(engine.uniform_in(std::log(lo_radius),
                                         std::log(hi_radius)))
            : lo_radius;
    a.category = kCategories[engine.uniform_index(kCategories.size())];
    a.bid_cpm = 0.5 + engine.uniform() * 4.5;
    campaigns.push_back(std::move(a));
  }
  return campaigns;
}

}  // namespace privlocad::adnet
