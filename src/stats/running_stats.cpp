#include "stats/running_stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::stats {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  util::require(count_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  util::require(count_ > 1, "variance needs at least two observations");
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  util::require(count_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  util::require(count_ > 0, "max of empty RunningStats");
  return max_;
}

}  // namespace privlocad::stats
