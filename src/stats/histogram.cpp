#include "stats/histogram.hpp"

#include <cmath>

#include "util/strings.hpp"
#include "util/validation.hpp"

namespace privlocad::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  // Validate BEFORE deriving width_: a member-initializer division would
  // run ahead of these checks (bins == 0 divides by zero, lo/hi NaN
  // poisons every later bin computation).
  util::require(bins > 0, "histogram needs at least one bin");
  util::require_finite(lo, "histogram lo");
  util::require_finite(hi, "histogram hi");
  util::require(lo < hi, "histogram range must have lo < hi");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  ++total_;
  if (!std::isfinite(value)) {
    // Casting a NaN/Inf offset to size_t below would be UB; tally the
    // observation instead of silently mis-binning or crashing.
    ++invalid_;
    return;
  }
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((value - lo_) / width_);
  ++counts_[std::min(bin, counts_.size() - 1)];
}

std::uint64_t Histogram::count_in_bin(std::size_t bin) const {
  util::require(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_lower_edge(std::size_t bin) const {
  util::require(bin < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::fraction_in_bin(std::size_t bin) const {
  util::require(total_ > 0, "fraction of empty histogram");
  return static_cast<double>(count_in_bin(bin)) /
         static_cast<double>(total_);
}

std::string Histogram::to_string(int value_digits) const {
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    out += util::format_double(bin_lower_edge(b), value_digits);
    out += ": ";
    out += util::format_double(total_ > 0 ? fraction_in_bin(b) : 0.0, 4);
    out += '\n';
  }
  return out;
}

}  // namespace privlocad::stats
