// Location entropy (paper Eq. 3).
//
// Entropy = sum_i (f_i / sum) * log(sum / f_i), computed over the frequency
// column of a location profile. The paper uses it (Fig. 3) to show that
// 88.8% of users have entropy < 2, i.e. their activity concentrates on a
// few top locations. We use the natural logarithm, matching the paper's
// threshold semantics.
#pragma once

#include <cstdint>
#include <vector>

namespace privlocad::stats {

/// Shannon entropy (nats) of a frequency vector. Zero frequencies are
/// ignored; throws InvalidArgument if the vector is empty or sums to zero.
double location_entropy(const std::vector<std::uint64_t>& frequencies);

/// Overload for already-normalized probabilities (must sum to ~1).
double entropy_of_distribution(const std::vector<double>& probabilities);

}  // namespace privlocad::stats
