// Monte-Carlo estimation harness.
//
// The paper's utility numbers (Figs. 7-9) are Monte-Carlo estimates over
// 100,000 trials per parameter combination. This harness centralizes the
// trial loop so every bench gets the same seeding discipline (one split
// sub-stream per trial), plus standard-error reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/running_stats.hpp"

namespace privlocad::stats {

/// Result of a Monte-Carlo run: the summary plus (optionally) the raw
/// trial values when quantiles are required.
struct MonteCarloResult {
  RunningStats summary;
  std::vector<double> samples;  // empty unless keep_samples was set

  /// Standard error of the mean; requires >= 2 trials.
  double standard_error() const;
};

struct MonteCarloOptions {
  std::uint64_t trials = 100000;  ///< the paper's default trial count
  std::uint64_t seed = 42;
  bool keep_samples = false;  ///< store raw values (needed for quantiles)
};

/// Runs `trial(stream_id)` for stream_id = 0..trials-1 and aggregates the
/// returned values. The callable receives the trial index so it can split
/// a deterministic sub-stream from a parent rng::Engine.
MonteCarloResult run_monte_carlo(
    const MonteCarloOptions& options,
    const std::function<double(std::uint64_t)>& trial);

}  // namespace privlocad::stats
