#include "stats/quantiles.hpp"

#include <algorithm>
#include <cmath>

#include "util/validation.hpp"

namespace privlocad::stats {

double quantile(std::vector<double> samples, double q) {
  util::require(!samples.empty(), "quantile of empty sample set");
  util::require(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();

  const double h = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = h - std::floor(h);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

double lower_bound_at_confidence(std::vector<double> samples, double alpha) {
  util::require_unit_open(alpha, "confidence level alpha");
  return quantile(std::move(samples), 1.0 - alpha);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  util::require(!sorted_.empty(), "EmpiricalCdf needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

}  // namespace privlocad::stats
