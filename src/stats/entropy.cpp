#include "stats/entropy.hpp"

#include <cmath>
#include <numeric>

#include "util/validation.hpp"

namespace privlocad::stats {

double location_entropy(const std::vector<std::uint64_t>& frequencies) {
  util::require(!frequencies.empty(), "entropy of empty frequency vector");
  const std::uint64_t sum =
      std::accumulate(frequencies.begin(), frequencies.end(),
                      std::uint64_t{0});
  util::require(sum > 0, "entropy of all-zero frequency vector");

  const double total = static_cast<double>(sum);
  double entropy = 0.0;
  for (const std::uint64_t f : frequencies) {
    if (f == 0) continue;
    const double p = static_cast<double>(f) / total;
    entropy -= p * std::log(p);
  }
  return entropy;
}

double entropy_of_distribution(const std::vector<double>& probabilities) {
  util::require(!probabilities.empty(), "entropy of empty distribution");
  double total = 0.0;
  double entropy = 0.0;
  for (const double p : probabilities) {
    util::require(p >= 0.0, "probabilities must be non-negative");
    total += p;
    if (p > 0.0) entropy -= p * std::log(p);
  }
  util::require(std::abs(total - 1.0) < 1e-6,
                "probabilities must sum to 1");
  return entropy;
}

}  // namespace privlocad::stats
