// Streaming mean/variance/min/max accumulator (Welford's algorithm).
//
// Used wherever the benches aggregate 100k Monte-Carlo trials without
// storing them: numerically stable regardless of trial count or magnitude.
#pragma once

#include <cstddef>

namespace privlocad::stats {

class RunningStats {
 public:
  /// Folds one observation into the summary.
  void add(double value);

  /// Merges another accumulator (parallel reduction), Chan et al. update.
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }

  /// Mean of observations; requires count() > 0.
  double mean() const;

  /// Unbiased sample variance; requires count() > 1.
  double variance() const;

  /// Square root of variance(); requires count() > 1.
  double stddev() const;

  /// Smallest observation; requires count() > 0.
  double min() const;

  /// Largest observation; requires count() > 0.
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace privlocad::stats
