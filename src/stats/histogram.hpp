// Fixed-width histogram used by the bench harness to print the utilization
// rate distributions of paper Fig. 7 as text series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace privlocad::stats {

/// Histogram over [lo, hi) with `bins` equal-width buckets plus underflow
/// and overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t count_in_bin(std::size_t bin) const;
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  /// Non-finite (NaN/Inf) observations; counted in total() but never
  /// binned.
  std::uint64_t invalid() const { return invalid_; }
  std::uint64_t total() const { return total_; }

  /// Left edge of bin `bin`.
  double bin_lower_edge(std::size_t bin) const;

  /// Fraction of all observations (including under/overflow) in bin `bin`.
  double fraction_in_bin(std::size_t bin) const;

  /// Renders "edge: fraction" lines, one per bin; used by the benches.
  std::string to_string(int value_digits = 3) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t invalid_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace privlocad::stats
