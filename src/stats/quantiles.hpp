// Empirical quantiles and CDFs over stored samples.
//
// The paper reports the "minimal utilization rate" as the lower bound v
// with Pr(UR >= v) = alpha (Eq. 24), i.e. the (1 - alpha) empirical
// quantile of the UR trials. This header provides that plus the empirical
// CDF used by distribution tests.
#pragma once

#include <algorithm>
#include <vector>

namespace privlocad::stats {

/// Empirical quantile with linear interpolation (type-7, the R default).
/// `q` in [0, 1]; `samples` must be non-empty (it is copied and sorted).
double quantile(std::vector<double> samples, double q);

/// Lower bound v such that a fraction `alpha` of samples is >= v, i.e. the
/// (1 - alpha) quantile. Matches the paper's Pr(UR >= v) = alpha.
double lower_bound_at_confidence(std::vector<double> samples, double alpha);

/// Empirical CDF: fraction of samples <= x. O(log n) per query after an
/// O(n log n) build.
class EmpiricalCdf {
 public:
  /// `samples` must be non-empty.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  double operator()(double x) const;

  /// Kolmogorov-Smirnov statistic against a reference CDF callable.
  template <typename Cdf>
  double ks_statistic(Cdf&& reference) const {
    double worst = 0.0;
    const double n = static_cast<double>(sorted_.size());
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
      const double ref = reference(sorted_[i]);
      const double hi = (static_cast<double>(i) + 1.0) / n - ref;
      const double lo = ref - static_cast<double>(i) / n;
      worst = std::max({worst, hi, lo});
    }
    return worst;
  }

  const std::vector<double>& sorted_samples() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace privlocad::stats
