#include "stats/monte_carlo.hpp"

#include <cmath>

#include "util/validation.hpp"

namespace privlocad::stats {

double MonteCarloResult::standard_error() const {
  return summary.stddev() /
         std::sqrt(static_cast<double>(summary.count()));
}

MonteCarloResult run_monte_carlo(
    const MonteCarloOptions& options,
    const std::function<double(std::uint64_t)>& trial) {
  util::require(options.trials > 0, "Monte Carlo needs at least one trial");
  MonteCarloResult result;
  if (options.keep_samples) result.samples.reserve(options.trials);
  for (std::uint64_t t = 0; t < options.trials; ++t) {
    const double value = trial(t);
    result.summary.add(value);
    if (options.keep_samples) result.samples.push_back(value);
  }
  return result;
}

}  // namespace privlocad::stats
