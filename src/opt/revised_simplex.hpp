// Revised two-phase simplex over sparse (CSR) constraints.
//
// The dense tableau solver (opt/simplex.hpp) carries the full m x n
// tableau through every pivot: O(m*n) memory and O(m*n) work per
// iteration, which is what keeps the optimal geo-IND mechanism stuck at
// tiny grids. The revised method keeps only the m x m basis inverse and
// reconstructs tableau columns on demand from the sparse constraint
// matrix, so with the geo-IND LP's 2-nonzero ratio rows an iteration
// costs O(m^2) for the inverse update plus O(nnz) for pricing -- orders
// of magnitude less than the dense sweep once n >> m nonzero density.
//
// Two entry points:
//  - solve_sparse(): one-shot, mirrors opt::solve() semantics (statuses,
//    rhs normalization, degeneracy perturbation, Dantzig pricing with a
//    Bland anti-cycling fallback).
//  - RevisedSimplex: a resident solver that keeps the factorized basis
//    between calls, so resolve(new_objective) warm-starts phase 2 from
//    the previous optimal basis. The approximate optimal mechanism leans
//    on this: decomposition windows of the same shape share constraints
//    and differ only in the prior-weighted objective, so every window
//    after the first costs a handful of pivots instead of a cold solve.
#pragma once

#include <cstddef>
#include <vector>

#include "opt/simplex.hpp"
#include "opt/sparse.hpp"

namespace privlocad::opt {

class RevisedSimplex {
 public:
  /// Copies the problem into internal column-major sparse form. Throws
  /// util::InvalidArgument on dimensional inconsistency (validate()).
  explicit RevisedSimplex(const SparseLpProblem& problem,
                          SimplexOptions options = {});

  /// Cold two-phase solve from the all-slack/artificial basis.
  LpSolution solve();

  /// Re-solves after replacing the objective, keeping the constraints.
  /// Requires a prior solve() whose phase 1 succeeded (any status except
  /// kInfeasible); the retained basis is still feasible for the unchanged
  /// constraints, so only phase 2 runs. `objective` must have one entry
  /// per structural variable.
  LpSolution resolve(const std::vector<double>& objective);

  /// Cumulative iteration counts across every solve()/resolve() call.
  const SolveStats& stats() const { return stats_; }

  std::size_t rows() const { return m_; }
  std::size_t structural_columns() const { return n_; }

 private:
  // Column-major view of one constraint column (structural, slack, or
  // artificial) as (row, value) pairs.
  struct ColumnRef {
    const std::uint32_t* rows;
    const double* values;
    std::size_t count;
  };

  ColumnRef column(std::size_t j) const;
  void compute_duals(const std::vector<double>& cost);
  void ftran(std::size_t j, std::vector<double>& w) const;
  void apply_pivot(std::size_t leaving_row, std::size_t entering_col,
                   const std::vector<double>& w);
  LpStatus run_phase(const std::vector<double>& cost,
                     std::size_t entering_limit, std::size_t* iterations);
  void drive_out_artificials();
  LpSolution extract(const std::vector<double>& objective) const;

  SimplexOptions options_;
  std::size_t n_ = 0;      // structural variables
  std::size_t m_eq_ = 0;
  std::size_t m_ub_ = 0;
  std::size_t m_ = 0;      // total constraint rows
  std::size_t art_base_ = 0;
  std::size_t total_cols_ = 0;
  std::vector<double> objective_;        // current phase-2 objective

  // Structural columns in CSC form (rhs-sign normalization applied).
  std::vector<std::size_t> col_start_;
  std::vector<std::uint32_t> col_row_;
  std::vector<double> col_value_;

  std::vector<double> slack_sign_;       // per ub row, +-1 after flip
  std::vector<std::uint32_t> slack_row_; // constraint row of each slack
  std::vector<std::uint32_t> art_row_;   // constraint row of each artificial
  std::vector<double> art_value_;        // all 1.0 (column() views)
  std::vector<double> b_;                // normalized rhs (with perturbation)

  // Factorized state: column-major dense basis inverse, current basis,
  // and the basic-variable values.
  std::vector<double> binv_;             // m_ * m_, column-major
  std::vector<std::size_t> basis_;
  std::vector<char> in_basis_;
  std::vector<double> x_basic_;
  std::vector<double> duals_;            // scratch: y = c_B B^-1
  std::vector<double> cost_basic_;       // scratch: c_B
  std::vector<double> scratch_w_;        // scratch: B^-1 A_j

  bool phase1_done_ = false;
  std::size_t drive_out_pivots_ = 0;
  SolveStats stats_;
};

/// One-shot convenience wrapper; `stats` (optional) receives the
/// iteration counts of this solve.
LpSolution solve_sparse(const SparseLpProblem& problem,
                        const SimplexOptions& options = {},
                        SolveStats* stats = nullptr);

}  // namespace privlocad::opt
