#include "opt/simplex.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "util/validation.hpp"

namespace privlocad::opt {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void LpProblem::validate() const {
  util::require(!objective.empty(), "LP needs at least one variable");
  const std::size_t n = objective.size();
  util::require(eq_lhs.rows() == eq_rhs.size(),
                "A_eq has " + std::to_string(eq_lhs.rows()) +
                    " rows but b_eq has " + std::to_string(eq_rhs.size()) +
                    " entries");
  util::require(ub_lhs.rows() == ub_rhs.size(),
                "A_ub has " + std::to_string(ub_lhs.rows()) +
                    " rows but b_ub has " + std::to_string(ub_rhs.size()) +
                    " entries");
  util::require(eq_lhs.rows() == 0 || eq_lhs.cols() == n,
                "A_eq has " + std::to_string(eq_lhs.cols()) +
                    " columns but the LP has " + std::to_string(n) +
                    " variables");
  util::require(ub_lhs.rows() == 0 || ub_lhs.cols() == n,
                "A_ub has " + std::to_string(ub_lhs.cols()) +
                    " columns but the LP has " + std::to_string(n) +
                    " variables");
}

namespace detail {

// Shared by the dense and revised solvers: publish one solve's iteration
// counts and wall time as opt.* metrics (satisfies the LP observability
// contract in docs/API.md).
void record_solve_metrics(const SolveStats& stats, double seconds) {
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("opt.solves").add(1);
  registry.counter("opt.pivots").add(stats.pivots);
  registry.counter("opt.phase1_iterations").add(stats.phase1_iterations);
  registry.counter("opt.phase2_iterations").add(stats.phase2_iterations);
  registry.histogram("opt.solve_us").record(seconds * 1e6);
}

}  // namespace detail

namespace {

/// Dense tableau: `rows` constraint rows + 1 cost row; `cols` structural
/// columns + 1 rhs column. basis_[i] is the column basic in row i.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), t_(rows + 1, cols + 1), basis_(rows, 0) {}

  double& at(std::size_t r, std::size_t c) { return t_.at(r, c); }
  double at(std::size_t r, std::size_t c) const { return t_.at(r, c); }
  double& cost(std::size_t c) { return t_.at(rows_, c); }
  double cost(std::size_t c) const { return t_.at(rows_, c); }
  double& rhs(std::size_t r) { return t_.at(r, cols_); }
  double rhs(std::size_t r) const { return t_.at(r, cols_); }
  double& cost_rhs() { return t_.at(rows_, cols_); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::vector<std::size_t>& basis() { return basis_; }
  const std::vector<std::size_t>& basis() const { return basis_; }

  /// Gauss-Jordan pivot on (row, col), cost row included.
  void pivot(std::size_t row, std::size_t col) {
    const double pivot_value = t_.at(row, col);
    for (std::size_t c = 0; c <= cols_; ++c) {
      t_.at(row, c) /= pivot_value;
    }
    for (std::size_t r = 0; r <= rows_; ++r) {
      if (r == row) continue;
      const double factor = t_.at(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c <= cols_; ++c) {
        t_.at(r, c) -= factor * t_.at(row, c);
      }
    }
    basis_[row] = col;
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  Matrix t_;
  std::vector<std::size_t> basis_;
};

/// One simplex phase. Pricing: Dantzig (most negative reduced cost) for
/// speed, falling back to Bland's rule after a stretch of degenerate
/// pivots so cycling cannot occur (Bland guarantees termination).
LpStatus run_phase(Tableau& tableau, const std::vector<bool>& allowed,
                   const SimplexOptions& options, std::size_t* iterations) {
  constexpr std::size_t kStallThreshold = 64;
  std::size_t degenerate_streak = 0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const bool use_bland = degenerate_streak >= kStallThreshold;

    // Entering column.
    std::size_t entering = tableau.cols();
    double most_negative = -options.tolerance;
    for (std::size_t c = 0; c < tableau.cols(); ++c) {
      if (!allowed[c]) continue;
      const double cost = tableau.cost(c);
      if (cost < most_negative) {
        entering = c;
        if (use_bland) break;  // Bland: first eligible index
        most_negative = cost;  // Dantzig: steepest
      }
    }
    if (entering == tableau.cols()) return LpStatus::kOptimal;

    // Leaving row: minimum ratio; ties by smallest basis index.
    std::size_t leaving = tableau.rows();
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < tableau.rows(); ++r) {
      const double a = tableau.at(r, entering);
      if (a <= options.tolerance) continue;
      const double ratio = tableau.rhs(r) / a;
      if (ratio < best_ratio - options.tolerance ||
          (std::abs(ratio - best_ratio) <= options.tolerance &&
           leaving < tableau.rows() &&
           tableau.basis()[r] < tableau.basis()[leaving])) {
        best_ratio = ratio;
        leaving = r;
      }
    }
    if (leaving == tableau.rows()) return LpStatus::kUnbounded;

    degenerate_streak =
        best_ratio <= options.tolerance ? degenerate_streak + 1 : 0;
    ++*iterations;
    tableau.pivot(leaving, entering);
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

LpSolution solve(const LpProblem& problem, const SimplexOptions& options) {
  problem.validate();
  const util::Timer timer;
  SolveStats stats;
  std::size_t drive_out_pivots = 0;
  const auto finish = [&](LpSolution solution) {
    stats.pivots = stats.phase1_iterations + stats.phase2_iterations +
                   drive_out_pivots;
    solution.stats = stats;
    detail::record_solve_metrics(stats, timer.elapsed_seconds());
    return solution;
  };
  const std::size_t n = problem.objective.size();
  const std::size_t m_eq = problem.eq_lhs.rows();
  const std::size_t m_ub = problem.ub_lhs.rows();
  const std::size_t m = m_eq + m_ub;

  // Column layout: [x: 0..n) [slack: n..n+m_ub) [artificial: ...].
  // Every row gets rhs >= 0 by negation; rows without a natural +1 basis
  // column (equalities and flipped inequalities) get an artificial.
  std::vector<int> art_col_of_row(m, -1);
  std::size_t art_count = 0;
  std::vector<bool> row_flipped(m, false);

  for (std::size_t r = 0; r < m_eq; ++r) {
    if (problem.eq_rhs[r] < 0.0) row_flipped[r] = true;
    art_col_of_row[r] = static_cast<int>(art_count++);
  }
  for (std::size_t r = 0; r < m_ub; ++r) {
    const std::size_t row = m_eq + r;
    if (problem.ub_rhs[r] < 0.0) {
      row_flipped[row] = true;
      art_col_of_row[row] = static_cast<int>(art_count++);
    }
  }

  const std::size_t slack_base = n;
  const std::size_t art_base = n + m_ub;
  const std::size_t total_cols = n + m_ub + art_count;

  Tableau tableau(m, total_cols);

  for (std::size_t r = 0; r < m_eq; ++r) {
    const double sign = row_flipped[r] ? -1.0 : 1.0;
    for (std::size_t c = 0; c < n; ++c) {
      tableau.at(r, c) = sign * problem.eq_lhs.at(r, c);
    }
    tableau.rhs(r) = sign * problem.eq_rhs[r];
  }
  for (std::size_t r = 0; r < m_ub; ++r) {
    const std::size_t row = m_eq + r;
    const double sign = row_flipped[row] ? -1.0 : 1.0;
    for (std::size_t c = 0; c < n; ++c) {
      tableau.at(row, c) = sign * problem.ub_lhs.at(r, c);
    }
    tableau.at(row, slack_base + r) = sign;  // slack (or surplus if flipped)
    tableau.rhs(row) =
        sign * (problem.ub_rhs[r] +
                options.degeneracy_perturbation * static_cast<double>(r + 1));
  }

  // Initial basis: artificials where assigned, otherwise the row's slack.
  for (std::size_t r = 0; r < m; ++r) {
    if (art_col_of_row[r] >= 0) {
      const std::size_t col =
          art_base + static_cast<std::size_t>(art_col_of_row[r]);
      tableau.at(r, col) = 1.0;
      tableau.basis()[r] = col;
    } else {
      tableau.basis()[r] = slack_base + (r - m_eq);
    }
  }

  // ---------------- phase 1: minimize the sum of artificials ------------
  if (art_count > 0) {
    // Phase-1 objective: c = 1 on artificial columns, 0 elsewhere. The
    // reduced-cost row is c - sum of the artificial-basic rows, which
    // leaves exactly 0 on the (basic) artificial columns as required.
    for (std::size_t c = art_base; c < total_cols; ++c) {
      tableau.cost(c) = 1.0;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (art_col_of_row[r] < 0) continue;
      for (std::size_t c = 0; c <= total_cols; ++c) {
        tableau.at(m, c) -= tableau.at(r, c);
      }
    }
    std::vector<bool> allowed(total_cols, true);
    const LpStatus phase1 =
        run_phase(tableau, allowed, options, &stats.phase1_iterations);
    if (phase1 != LpStatus::kOptimal) {
      return finish({phase1 == LpStatus::kUnbounded ? LpStatus::kInfeasible
                                                    : phase1,
                     {},
                     0.0,
                     {}});
    }
    if (-tableau.cost_rhs() > 1e-6) {
      return finish({LpStatus::kInfeasible, {}, 0.0, {}});
    }
    // Drive surviving artificial basics out where possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (tableau.basis()[r] < art_base) continue;
      for (std::size_t c = 0; c < art_base; ++c) {
        if (std::abs(tableau.at(r, c)) > options.tolerance) {
          tableau.pivot(r, c);
          ++drive_out_pivots;
          break;
        }
      }
    }
  }

  // ---------------- phase 2: the real objective -------------------------
  // Reset the cost row to c, then eliminate the basic columns.
  for (std::size_t c = 0; c <= total_cols; ++c) tableau.cost(c) = 0.0;
  for (std::size_t c = 0; c < n; ++c) tableau.cost(c) = problem.objective[c];
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t basic = tableau.basis()[r];
    const double c_b = basic < n ? problem.objective[basic] : 0.0;
    if (c_b == 0.0) continue;
    for (std::size_t c = 0; c <= total_cols; ++c) {
      tableau.cost(c) -= c_b * tableau.at(r, c);
    }
  }

  std::vector<bool> allowed(total_cols, true);
  for (std::size_t c = art_base; c < total_cols; ++c) allowed[c] = false;
  const LpStatus phase2 =
      run_phase(tableau, allowed, options, &stats.phase2_iterations);
  if (phase2 != LpStatus::kOptimal) return finish({phase2, {}, 0.0, {}});

  LpSolution solution;
  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (tableau.basis()[r] < n) {
      solution.x[tableau.basis()[r]] = tableau.rhs(r);
    }
  }
  solution.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    solution.objective += problem.objective[c] * solution.x[c];
  }
  return finish(std::move(solution));
}

}  // namespace privlocad::opt
